"""CI smoke: one ``repro serve`` process, one WS client, one poller.

Starts the server on an ephemeral port against a pre-generated
capture, waits for the first poll over plain HTTP, reads one pushed
snapshot envelope over WebSocket, asserts a non-empty history query,
then shuts the server down with SIGINT and requires a clean exit
within the timeout.

Usage: python .github/scripts/serve_smoke.py <capture.pcap>
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import subprocess
import sys

from repro.serve.wire import (TEST_MASK_KEY, client_handshake,
                              close_frame, read_frame)

SHUTDOWN_TIMEOUT_S = 30


def start_server(capture: str) -> tuple[subprocess.Popen, str, int]:
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve", capture,
         "--demux", "--port", "0", "--interval", "0.2",
         "--history", "/tmp/serve-smoke-fleet.db"],
        stdout=subprocess.PIPE, text=True)
    assert process.stdout is not None
    line = process.stdout.readline()
    match = re.search(r"http://([0-9.]+):([0-9]+)", line)
    assert match, f"no listening line, got {line!r}"
    return process, match.group(1), int(match.group(2))


async def http_get(host: str, port: int,
                   path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write((f"GET {path} HTTP/1.1\r\n"
                  f"Host: {host}:{port}\r\n\r\n").encode("latin-1"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _sep, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


async def drive(host: str, port: int) -> None:
    # The HTTP poller: /fleet turns 200 once the first poll lands.
    status, body = 0, b""
    for _attempt in range(300):
        status, body = await http_get(host, port, "/fleet")
        if status == 200:
            break
        await asyncio.sleep(0.1)
    assert status == 200, f"/fleet never turned 200 (last {status})"
    envelope = json.loads(body)
    snapshot = envelope["snapshot"]
    assert snapshot["schema"] == 2, snapshot
    assert snapshot["packets"] > 0, snapshot

    # The WebSocket client: one pushed envelope frame.
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(client_handshake(host, port))
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    assert b" 101 " in head.split(b"\r\n", 1)[0], head
    frame = await asyncio.wait_for(read_frame(reader), timeout=30)
    assert frame is not None
    pushed = json.loads(frame[1].decode("utf-8"))
    assert pushed["snapshot"]["schema"] == 2, pushed
    assert pushed["seq"] >= 1, pushed
    writer.write(close_frame(mask_key=TEST_MASK_KEY))
    await writer.drain()
    writer.close()
    await writer.wait_closed()

    # A non-empty history window for a served link.
    status, body = await http_get(host, port, "/links")
    links = json.loads(body)["links"]
    assert links, "no links discovered"
    status, body = await http_get(host, port,
                                  f"/links/{links[0]}/history")
    assert status == 200, (status, body)
    history = json.loads(body)
    assert history["count"] >= 1, history
    print(f"serve smoke ok: {snapshot['packets']} packets, "
          f"{len(links)} links, {history['count']} history poll(s)")


def main() -> int:
    process, host, port = start_server(sys.argv[1])
    try:
        asyncio.run(drive(host, port))
    finally:
        process.send_signal(signal.SIGINT)
        code = process.wait(timeout=SHUTDOWN_TIMEOUT_S)
    assert code == 0, f"server exited with {code}"
    assert process.stdout is not None
    tail = process.stdout.read()
    assert "served" in tail, f"no shutdown summary, got {tail!r}"
    print(f"clean shutdown: {tail.strip()!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
