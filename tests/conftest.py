"""Shared fixtures: tiny synthetic captures reused across test modules.

Generating a capture is the expensive part of the pipeline, so the Y1
and Y2 captures (at a very small time scale) are session-scoped; all
analysis tests share them.
"""

from __future__ import annotations

import pytest

from repro.analysis import extract_apdus
from repro.datasets import CaptureConfig, generate_capture

#: Time scale for the shared test captures: 2% of the real durations
#: (Y1 windows of ~115 s, Y2 windows of ~72 s).
TEST_SCALE = 0.02


@pytest.fixture(scope="session")
def y1_capture():
    return generate_capture(1, CaptureConfig(time_scale=TEST_SCALE))


@pytest.fixture(scope="session")
def y2_capture():
    return generate_capture(2, CaptureConfig(time_scale=TEST_SCALE))


@pytest.fixture(scope="session")
def y1_extraction(y1_capture):
    return extract_apdus(y1_capture)


@pytest.fixture(scope="session")
def y2_extraction(y2_capture):
    return extract_apdus(y2_capture)
