"""Content-addressed capture cache: correctness and invalidation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import extract_apdus
from repro.datasets import CaptureConfig, generate_capture
from repro.perf import (STATS, cache_dir, cached_generate, capture_key,
                        clear_cache, code_digest, list_entries)
from repro.perf.cache import CachedCapture, load, store

#: Tiny but non-trivial: a few outstations, background traffic on.
_CONFIG = CaptureConfig(time_scale=0.002, max_outstations=4)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    STATS.reset()
    yield


class TestKeying:
    def test_key_depends_on_config(self):
        base = capture_key(1, _CONFIG)
        assert capture_key(1, replace(_CONFIG, seed=105)) != base
        assert capture_key(1, replace(_CONFIG, time_scale=0.004)) != base
        assert capture_key(1, replace(_CONFIG, workers=1)) != base

    def test_key_depends_on_year(self):
        assert capture_key(1, _CONFIG) != capture_key(2, _CONFIG)

    def test_key_is_stable(self):
        assert capture_key(1, _CONFIG) == capture_key(1, _CONFIG)

    def test_code_digest_is_hex(self):
        digest = code_digest()
        assert len(digest) == 64
        int(digest, 16)


class TestRoundTrip:
    def test_miss_then_hit(self):
        first = cached_generate(1, _CONFIG)
        assert (STATS.hits, STATS.misses) == (0, 1)
        second = cached_generate(1, _CONFIG)
        assert (STATS.hits, STATS.misses) == (1, 1)
        assert isinstance(second, CachedCapture)
        assert len(second.packets) == len(first.packets)

    def test_hit_is_bit_identical(self):
        fresh = cached_generate(1, _CONFIG)
        cached = cached_generate(1, _CONFIG)
        for mine, theirs in zip(fresh.packets, cached.packets):
            assert mine.time_us == theirs.time_us  # exact integer ticks
            assert mine.encode() == theirs.encode()
        assert fresh.host_names() == cached.host_names()

    def test_hit_preserves_analysis(self):
        fresh = extract_apdus(cached_generate(1, _CONFIG).packets)
        cached = extract_apdus(cached_generate(1, _CONFIG).packets)
        assert len(cached.events) == len(fresh.events)
        assert [e.token for e in cached.events] \
            == [e.token for e in fresh.events]

    def test_incomplete_entry_is_a_miss(self):
        cached_generate(2, _CONFIG)
        key = capture_key(2, _CONFIG)
        (cache_dir() / f"{key}.names.json").unlink()
        assert load(key, 2) is None
        cached_generate(2, _CONFIG)
        assert STATS.misses == 2

    def test_hit_needs_no_timestamp_sidecar(self):
        """Format 2 regression: the integer-microsecond timebase makes
        the pcap round trip exact, so no ``.times.bin`` sidecar is
        written and a hit works without one."""
        fresh = cached_generate(2, _CONFIG)
        key = capture_key(2, _CONFIG)
        assert not (cache_dir() / f"{key}.times.bin").exists()
        cached = cached_generate(2, _CONFIG)
        assert STATS.hits == 1
        assert [p.time_us for p in cached.packets] \
            == [p.time_us for p in fresh.packets]

    def test_clear_sweeps_legacy_sidecar(self):
        cached_generate(2, _CONFIG)
        key = capture_key(2, _CONFIG)
        legacy = cache_dir() / f"{key}.times.bin"
        legacy.write_bytes(b"stale format-1 sidecar")
        assert clear_cache() == 1
        assert not legacy.exists()

    def test_store_load_explicit(self):
        capture = generate_capture(2, _CONFIG)
        key = store(2, _CONFIG, capture)
        loaded = load(key, 2)
        assert loaded is not None
        assert len(loaded.packets) == len(capture.packets)


class TestManagement:
    def test_list_and_clear(self):
        assert list_entries() == []
        cached_generate(1, _CONFIG)
        cached_generate(2, _CONFIG)
        entries = list_entries()
        assert {meta["year"] for meta in entries} == {1, 2}
        assert all(meta["packets"] > 0 for meta in entries)
        assert clear_cache() == 2
        assert list_entries() == []
        assert clear_cache() == 0

    def test_cli_ls_and_clear(self):
        import io

        from repro.cli import main
        cached_generate(1, _CONFIG)
        out = io.StringIO()
        assert main(["cache", "ls"], out=out) == 0
        listing = out.getvalue()
        assert "year=1" in listing
        assert str(cache_dir()) in listing
        out = io.StringIO()
        assert main(["cache", "clear"], out=out) == 0
        assert "removed 1" in out.getvalue()
        out = io.StringIO()
        assert main(["cache", "ls"], out=out) == 0
        assert "(empty)" in out.getvalue()
