"""Bandwidth and timing analysis tests."""

import math

import pytest

from repro.analysis.bandwidth import (detect_period, inter_arrival_stats,
                                      throughput, timing_profiles)
from repro.analysis.apdu_stream import ApduEvent
from repro.iec104.apci import SFrame


def event(t, size=60):
    return ApduEvent(time_us=round(t * 1_000_000), src="A", dst="B",
                     apdu=SFrame(recv_seq=0), wire_bytes=size)


class TestThroughput:
    def test_constant_rate(self):
        events = [event(float(t), size=100) for t in range(100)]
        series = throughput(events, bin_size=10.0)
        assert series.mean_rate == pytest.approx(100.0, rel=0.15)
        assert len(series.bytes_per_bin) == 10

    def test_burst_shows_in_peak(self):
        events = [event(float(t)) for t in range(0, 100, 10)]
        events += [event(50.0 + i / 100, size=1000) for i in range(20)]
        series = throughput(events, bin_size=10.0)
        assert series.peak_rate > 3 * series.mean_rate

    def test_empty(self):
        series = throughput([])
        assert series.mean_rate == 0.0 and series.peak_rate == 0.0

    def test_bin_size_validation(self):
        with pytest.raises(ValueError):
            throughput([event(0.0)], bin_size=0.0)

    def test_times_are_bin_centers(self):
        events = [event(0.0), event(19.9)]
        series = throughput(events, bin_size=10.0)
        assert series.times[0] == pytest.approx(5.0)


class TestInterArrival:
    def test_periodic_traffic_low_cv(self):
        events = [event(float(t) * 2.0) for t in range(50)]
        stats = inter_arrival_stats(events)
        assert stats.mean == pytest.approx(2.0)
        assert stats.cv < 0.01
        assert stats.is_machine_paced

    def test_bursty_traffic_high_cv(self):
        times = []
        t = 0.0
        for burst in range(10):
            for i in range(5):
                times.append(t + i * 0.01)
            t += 100.0
        stats = inter_arrival_stats([event(x) for x in times])
        assert stats.cv > 1.0
        assert not stats.is_machine_paced

    def test_percentiles_ordered(self):
        events = [event(float(t ** 1.5)) for t in range(30)]
        stats = inter_arrival_stats(events)
        assert stats.median <= stats.p95

    def test_single_event(self):
        stats = inter_arrival_stats([event(1.0)])
        assert stats.count == 1 and stats.mean == 0.0


class TestDetectPeriod:
    def test_finds_known_period(self):
        timestamps = [float(t) for t in range(0, 600, 30)]
        result = detect_period(timestamps, bin_size=1.0,
                               max_period=120.0)
        assert result.is_periodic
        assert result.period == pytest.approx(30.0, abs=2.0)

    def test_random_times_not_periodic(self):
        import random
        rng = random.Random(5)
        timestamps = sorted(rng.uniform(0, 600) for _ in range(60))
        result = detect_period(timestamps, bin_size=1.0,
                               max_period=120.0)
        assert result.strength < 0.6

    def test_too_few_events(self):
        assert detect_period([1.0, 2.0], bin_size=1.0,
                             max_period=10.0).period is None

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_period([1.0] * 10, bin_size=5.0, max_period=5.0)


class TestProfilesOnCapture:
    def test_keepalive_sessions_are_periodic(self, y1_extraction):
        profiles = timing_profiles(y1_extraction, min_packets=8)
        assert profiles
        by_session = {profile.session: profile for profile in profiles}
        # A healthy secondary connection ticks every ~30 s: the
        # periodicity detector must see it.
        keepalive = [profile for profile in profiles
                     if profile.session[0].startswith("C")
                     and profile.stats.mean > 20.0
                     and profile.stats.is_machine_paced]
        assert keepalive, "no machine-paced keep-alive sessions found"

    def test_rates_are_modest(self, y1_extraction):
        """SCADA sessions are tiny by IT standards (paper Hypothesis 1:
        stable, low-bandwidth machine traffic)."""
        profiles = timing_profiles(y1_extraction, min_packets=8)
        assert all(profile.mean_rate_bps < 1e6 for profile in profiles)
