"""APDU extraction front-end tests: per-packet vs reassembled modes."""

import random

import pytest

from repro.analysis.sources import PacketCapture
from repro.analysis.apdu_stream import (extract_apdus, is_iec104,
                                        tokenize, u_function_counts,
                                        has_interrogation,
                                        observed_type_ids)
from repro.iec104.constants import TypeID
from repro.netstack.addresses import IPv4Address, MacAddress
from repro.netstack.packet import CapturedPacket
from repro.netstack.tcp import PSH_ACK, TCPSegment
from repro.simnet.capture import CaptureTap
from repro.simnet.clock import Simulator
from repro.simnet.tcpsim import RetransmissionModel, SimConnection, SimHost


def make_conn(retransmission=None, seed=1):
    client = SimHost(name="C1", ip=IPv4Address(0x0A000001),
                     mac=MacAddress(0x020000000001))
    server = SimHost(name="O1", ip=IPv4Address(0x0A010001),
                     mac=MacAddress(0x020000000002))
    tap = CaptureTap()
    conn = SimConnection(Simulator(), tap, client, server, 2404,
                         rng=random.Random(seed),
                         retransmission=retransmission)
    names = {client.ip: "C1", server.ip: "O1"}
    return conn, tap, names


def u_frame_bytes():
    from repro.iec104.apci import UFrame
    from repro.iec104.constants import UFunction
    return UFrame(UFunction.TESTFR_ACT).encode()


class TestFiltering:
    def test_is_iec104_by_port(self):
        segment = TCPSegment(src_port=5000, dst_port=2404, seq=0)
        packet = CapturedPacket.build(
            0, MacAddress(1), MacAddress(2), IPv4Address(1),
            IPv4Address(2), segment)
        assert is_iec104(packet)

    def test_other_ports_ignored(self):
        """ICCP/C37.118-like traffic must be filtered out."""
        segment = TCPSegment(src_port=5000, dst_port=102,  # ICCP port
                             seq=0, flags=PSH_ACK,
                             payload=b"not iec104 at all")
        packet = CapturedPacket.build(
            0, MacAddress(1), MacAddress(2), IPv4Address(1),
            IPv4Address(2), segment)
        extraction = extract_apdus([packet])
        assert extraction.events == []
        assert extraction.failures == []

    def test_unknown_hosts_named_by_address(self):
        conn, tap, _ = make_conn()
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=u_frame_bytes())
        extraction = extract_apdus(PacketCapture(tap.packets))
        assert extraction.events[0].src.startswith("10.0.0.1:")


class TestRetransmissionModes:
    def make_capture_with_retransmissions(self):
        conn, tap, names = make_conn(
            RetransmissionModel(probability=1.0), seed=2)
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=u_frame_bytes())
        return tap, names

    def test_per_packet_duplicates_tokens(self):
        """The paper's repeated-U16 observation: per-packet parsing
        sees retransmitted APDUs twice."""
        tap, names = self.make_capture_with_retransmissions()
        extraction = extract_apdus(PacketCapture(tap.packets, names),
                                   per_packet=True)
        assert tokenize(extraction.events) == ["U16", "U16"]

    def test_reassembled_deduplicates(self):
        tap, names = self.make_capture_with_retransmissions()
        extraction = extract_apdus(PacketCapture(tap.packets, names),
                                   per_packet=False)
        assert tokenize(extraction.events) == ["U16"]
        assert extraction.retransmissions == 1


class TestGrouping:
    def make_extraction(self):
        conn, tap, names = make_conn()
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=u_frame_bytes())
        from repro.iec104.apci import UFrame
        from repro.iec104.constants import UFunction
        conn.send(1_100_000, from_client=False,
                  payload=UFrame(UFunction.TESTFR_CON).encode())
        return extract_apdus(PacketCapture(tap.packets, names))

    def test_sessions_are_directional(self):
        extraction = self.make_extraction()
        sessions = extraction.by_session()
        assert ("C1", "O1") in sessions and ("O1", "C1") in sessions

    def test_connections_merge_directions(self):
        extraction = self.make_extraction()
        connections = extraction.by_connection()
        assert list(connections) == [("C1", "O1")]
        assert len(connections[("C1", "O1")]) == 2

    def test_connection_puts_server_first(self):
        extraction = self.make_extraction()
        (connection,) = extraction.by_connection()
        assert connection[0] == "C1"

    def test_u_function_counts(self):
        extraction = self.make_extraction()
        counts = u_function_counts(extraction.events)
        assert counts == {"U16": 1, "U32": 1}

    def test_has_interrogation(self):
        assert not has_interrogation(
            tokenize(self.make_extraction().events))
        assert has_interrogation(["U1", "I100"])

    def test_tokenize_time_ordered(self):
        extraction = self.make_extraction()
        assert tokenize(extraction.events) == ["U16", "U32"]

    def test_groupings_are_memoized(self):
        extraction = self.make_extraction()
        assert extraction.by_session() is extraction.by_session()
        assert extraction.by_connection() is extraction.by_connection()

    def test_memo_invalidated_on_append(self):
        extraction = self.make_extraction()
        first = extraction.by_session()
        extraction.events.append(extraction.events[0])
        second = extraction.by_session()
        assert second is not first
        assert len(second[("C1", "O1")]) == 2
        assert len(extraction.by_connection()[("C1", "O1")]) == 3


class TestObservedTypeIds:
    def test_counts(self):
        from repro.iec104.apci import IFrame
        from repro.iec104.asdu import measurement
        from repro.iec104.information_elements import ShortFloat
        conn, tap, names = make_conn()
        conn.establish(0)
        asdu = measurement(TypeID.M_ME_NC_1, 2001, ShortFloat(value=1.0))
        conn.send(1_000_000, from_client=False,
                  payload=IFrame(asdu=asdu).encode())
        extraction = extract_apdus(PacketCapture(tap.packets, names))
        assert observed_type_ids(extraction) \
            == {TypeID.M_ME_NC_1: 1}


class TestCauseDistribution:
    def test_counts_by_cause(self):
        from repro.analysis.apdu_stream import cause_distribution
        from repro.iec104.apci import IFrame
        from repro.iec104.asdu import measurement
        from repro.iec104.constants import Cause
        from repro.iec104.information_elements import ShortFloat
        conn, tap, names = make_conn()
        conn.establish(0)
        for index, cause in enumerate((Cause.SPONTANEOUS,
                                       Cause.SPONTANEOUS,
                                       Cause.PERIODIC)):
            asdu = measurement(TypeID.M_ME_NC_1, 2001,
                               ShortFloat(value=1.0), cause=cause)
            conn.send((1 + index) * 1_000_000, from_client=False,
                      payload=IFrame(asdu=asdu,
                                     send_seq=index).encode())
        extraction = extract_apdus(PacketCapture(tap.packets, names))
        counts = cause_distribution(extraction)
        assert counts[Cause.SPONTANEOUS] == 2
        assert counts[Cause.PERIODIC] == 1

    def test_capture_dominated_by_spontaneous(self, y1_extraction):
        from repro.analysis.apdu_stream import cause_distribution
        from repro.iec104.constants import Cause
        counts = cause_distribution(y1_extraction)
        total = sum(counts.values())
        # Spontaneous and periodic reporting carry the bulk of ASDUs;
        # activation/confirmation pairs are a thin control-plane layer.
        reporting = counts.get(Cause.SPONTANEOUS, 0) \
            + counts.get(Cause.PERIODIC, 0)
        assert reporting / total > 0.7
        assert counts.get(Cause.SPONTANEOUS, 0) \
            > counts.get(Cause.PERIODIC, 0)
