"""Connection timeline reconstruction tests."""

import pytest

from repro.analysis.timeline import (TimelineEvent, build_timelines,
                                     rejected_backup_timelines,
                                     switchover_timelines)


@pytest.fixture(scope="module")
def timelines(y1_capture, y1_extraction):
    return build_timelines(y1_capture, y1_extraction)


class TestReconstruction:
    def test_covers_all_connections(self, timelines, y1_extraction):
        connections = set(y1_extraction.by_connection())
        assert connections <= set(timelines)

    def test_persistent_primary_has_no_syn(self, timelines):
        """Long-lived links connected before the capture: first data
        appears without any TCP establishment."""
        timeline = timelines[("C1", "O1")]
        assert timeline.events(TimelineEvent.FIRST_DATA)
        assert not timeline.events(TimelineEvent.TCP_SYN)

    def test_type4_connects_then_interrogates(self, timelines):
        timeline = timelines[("C1", "O27")]
        syn = timeline.events(TimelineEvent.TCP_SYN)
        start = timeline.events(TimelineEvent.STARTDT)
        interrogation = timeline.events(TimelineEvent.INTERROGATION)
        data = timeline.events(TimelineEvent.FIRST_DATA)
        assert syn and start and interrogation and data
        assert syn[0].time_us < start[0].time_us \
            < interrogation[0].time_us
        assert interrogation[0].time_us <= data[0].time_us

    def test_events_sorted(self, timelines):
        for timeline in timelines.values():
            times = [entry.time_us for entry in timeline.entries]
            assert times == sorted(times)

    def test_render(self, timelines):
        text = timelines[("C1", "O27")].render(limit=5)
        assert "C1-O27" in text
        assert "t=" in text


class TestRejectPattern:
    def test_fig9_connections_detected(self, timelines):
        rejected = rejected_backup_timelines(timelines)
        pairs = {timeline.connection for timeline in rejected}
        assert ("C1", "O5") in pairs
        assert ("C2", "O24") in pairs
        # Working connections are never flagged.
        assert ("C1", "O1") not in pairs

    def test_reject_timeline_shape(self, timelines):
        timeline = timelines[("C1", "O5")]
        syns = timeline.events(TimelineEvent.TCP_SYN)
        rsts = timeline.events(TimelineEvent.TCP_RST)
        assert len(syns) >= 3
        assert len(rsts) >= 3
        # Every reset is attributed to the outstation.
        assert all("O5" in entry.detail for entry in rsts)


class TestSwitchoverPattern:
    def test_fig16_promotions_detected(self, timelines):
        promoted = switchover_timelines(timelines)
        outstations = {timeline.connection[1] for timeline in promoted}
        assert outstations <= {"O20", "O29"}
        assert outstations  # at least one observed

    def test_promotion_ordering(self, timelines):
        promoted = switchover_timelines(timelines)
        timeline = promoted[0]
        switchover = timeline.events(TimelineEvent.SWITCHOVER)[0]
        data = [entry for entry
                in timeline.events(TimelineEvent.FIRST_DATA)
                if entry.time_us > switchover.time_us]
        interrogations = [
            entry for entry
            in timeline.events(TimelineEvent.INTERROGATION)
            if entry.time_us >= switchover.time_us]
        assert interrogations, "promotion must interrogate"
