"""The five-hypothesis evaluation must mirror the paper's verdicts."""

import pytest

from repro.analysis.hypotheses import (Verdict, evaluate_all,
                                       evaluate_h1_stability,
                                       evaluate_h2_compliance,
                                       evaluate_h3_flows,
                                       evaluate_h4_clusters,
                                       evaluate_h5_physical)


@pytest.fixture(scope="module")
def results(y1_capture, y1_extraction, y2_extraction):
    return {result.hypothesis: result
            for result in evaluate_all(y1_capture, y1_extraction,
                                       y2_extraction)}


class TestVerdictsMatchPaper:
    def test_h1_mixed(self, results):
        """Paper: 'the answer ... is not clear' — most of the network
        changed, but servers and a quarter of RTUs held."""
        assert results["H1"].verdict is Verdict.MIXED

    def test_h2_rejected(self, results):
        """Paper: 'in direct contradiction with Hypothesis 2'."""
        assert results["H2"].verdict is Verdict.REJECTED
        assert "O37" in results["H2"].evidence

    def test_h3_rejected(self, results):
        """Paper: 99.8% of flows lasted less than one second."""
        assert results["H3"].verdict is Verdict.REJECTED

    def test_h4_supported(self, results):
        """Paper: 'Our results satisfy Hypothesis 4'."""
        assert results["H4"].verdict is Verdict.SUPPORTED
        assert results["H4"].metric > 0.5

    def test_h5_supported(self, results):
        assert results["H5"].verdict is Verdict.SUPPORTED
        assert "Freq" in results["H5"].evidence

    def test_renders_readably(self, results):
        text = str(results["H2"])
        assert "H2" in text and "rejected" in text


class TestEdgeCases:
    def test_h1_identical_capture_is_supported(self, y1_extraction):
        result = evaluate_h1_stability(y1_extraction, y1_extraction)
        assert result.verdict is Verdict.SUPPORTED
        assert result.metric == pytest.approx(1.0)

    def test_h4_too_few_sessions(self, y1_extraction):
        from repro.analysis.apdu_stream import StreamExtraction
        tiny = StreamExtraction(events=y1_extraction.events[:3],
                                parser=y1_extraction.parser)
        result = evaluate_h4_clusters(tiny)
        assert result.verdict is Verdict.MIXED

    def test_h2_clean_traffic_supported(self, y1_capture):
        clean = [packet for packet in y1_capture.packets
                 if packet.ip.src != y1_capture.network["O37"].ip
                 and packet.ip.src != y1_capture.network["O28"].ip]
        from repro.analysis import PacketCapture
        result = evaluate_h2_compliance(
            PacketCapture(clean, y1_capture.host_names()))
        assert result.verdict is Verdict.SUPPORTED
