"""Unit tests for physical DPI helpers: symbol inference, variance."""

import pytest

from repro.analysis.physical import (PointKey, PointSeries,
                                     TypeIDDistribution)
from repro.iec104.constants import TypeID


def series(type_id, values, station="O1", ioa=2001):
    result = PointSeries(key=PointKey(station=station, ioa=ioa,
                                      type_id=type_id))
    for index, value in enumerate(values):
        result.append(float(index), value)
    return result


class TestSymbolInference:
    def test_frequency(self):
        data = [59.98, 60.01, 60.0, 59.99, 60.02] * 4
        assert series(TypeID.M_ME_TF_1, data).inferred_symbol() == "Freq"

    def test_voltage(self):
        data = [129.5, 130.2, 130.0, 129.8] * 4
        assert series(TypeID.M_ME_NC_1, data).inferred_symbol() == "U"

    def test_status_from_type(self):
        assert series(TypeID.M_DP_NA_1, [0, 0, 2, 2]).inferred_symbol() \
            == "Status"

    def test_status_from_small_ints(self):
        assert series(TypeID.M_ME_NC_1, [0, 1, 2, 1]).inferred_symbol() \
            == "Status"

    def test_reactive_power_changes_sign(self):
        data = [-5.0, 3.0, -2.0, 4.0, -1.0]
        assert series(TypeID.M_ME_NC_1, data).inferred_symbol() == "Q"

    def test_active_power(self):
        data = [150.0, 180.0, 210.0, 260.0, 200.0]
        assert series(TypeID.M_ME_NC_1, data).inferred_symbol() == "P"

    def test_current(self):
        data = [0.9, 1.1, 1.4, 1.2]
        assert series(TypeID.M_ME_NC_1, data).inferred_symbol() == "I"

    def test_setpoint(self):
        assert series(TypeID.C_SE_NC_1, [100.0, 90.0]).inferred_symbol() \
            == "AGC-SP"

    def test_bitstring_unmapped(self):
        assert series(TypeID.M_BO_NA_1, [17.0, 19.0]).inferred_symbol() \
            == "-"

    def test_empty(self):
        assert series(TypeID.M_ME_NC_1, []).inferred_symbol() == "-"


class TestNormalizedVariance:
    def test_constant_is_zero(self):
        assert series(TypeID.M_ME_NC_1, [5.0] * 10
                      ).normalized_variance() == 0.0

    def test_scale_invariant(self):
        small = series(TypeID.M_ME_NC_1, [1.0, 2.0, 1.0, 2.0])
        large = series(TypeID.M_ME_NC_1, [100.0, 200.0, 100.0, 200.0])
        assert small.normalized_variance() == pytest.approx(
            large.normalized_variance())

    def test_step_change_ranks_high(self):
        quiet = series(TypeID.M_ME_NC_1, [100.0, 100.1, 99.9] * 5)
        event = series(TypeID.M_ME_NC_1, [0.0] * 5 + [120.0] * 5)
        assert event.normalized_variance() > quiet.normalized_variance()

    def test_short_series_zero(self):
        assert series(TypeID.M_ME_NC_1, [1.0]).normalized_variance() \
            == 0.0


class TestTypeIDDistribution:
    def test_rows_sorted_by_count(self):
        distribution = TypeIDDistribution(counts={
            TypeID.M_ME_TF_1: 650, TypeID.M_ME_NC_1: 320,
            TypeID.M_ME_NA_1: 27})
        rows = distribution.rows()
        assert [row[0] for row in rows] == ["I36", "I13", "I9"]
        assert rows[0][2] == pytest.approx(65.19, abs=0.01)

    def test_top_two_share(self):
        distribution = TypeIDDistribution(counts={
            TypeID.M_ME_TF_1: 65, TypeID.M_ME_NC_1: 32,
            TypeID.M_ME_NA_1: 3})
        assert distribution.top_two_share() == pytest.approx(97.0)

    def test_empty(self):
        distribution = TypeIDDistribution(counts={})
        assert distribution.total == 0
        assert distribution.top_two_share() == 0.0
        assert distribution.percentage(TypeID.M_ME_TF_1) == 0.0
