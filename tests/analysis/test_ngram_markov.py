"""N-gram language model and Markov chain tests (§6.3.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.markov import (ChainCluster, MarkovChain,
                                   classify_chain)
from repro.analysis.ngram import (NgramModel, TOKEN_DESCRIPTIONS,
                                  is_valid_token)


class TestTokenGrammar:
    @pytest.mark.parametrize("token", ["S", "U1", "U16", "U32", "I13",
                                       "I36", "I100", "I127"])
    def test_valid(self, token):
        assert is_valid_token(token)

    @pytest.mark.parametrize("token", ["X", "I", "I0", "I128", "U3x",
                                       "i13", ""])
    def test_invalid(self, token):
        assert not is_valid_token(token)

    def test_table4_catalog(self):
        assert set(TOKEN_DESCRIPTIONS) == {"S", "U1", "U2", "U4", "U8",
                                           "U16", "U32"}


class TestNgramModel:
    def test_mle_bigram_probabilities(self):
        """Paper Eq. 2 on a known corpus."""
        model = NgramModel(order=2).fit([["I13", "I13", "S", "I13"]])
        # C(I13 I13) = 1, C(I13) as context appears 3 times total
        # (I13->I13, I13->S, I13-></s>).
        assert model.probability("I13", ["I13"]) == pytest.approx(1 / 3)
        assert model.probability("S", ["I13"]) == pytest.approx(1 / 3)
        assert model.probability("I36", ["I13"]) == 0.0

    def test_chain_rule_log_probability(self):
        model = NgramModel(order=2).fit([["U16", "U32"]] * 5)
        log_prob = model.sequence_log_probability(["U16", "U32"])
        assert log_prob == pytest.approx(0.0)  # deterministic corpus

    def test_unseen_sequence_minus_inf(self):
        model = NgramModel(order=2).fit([["U16", "U32"]])
        assert math.isinf(
            model.sequence_log_probability(["U16", "U16"]))

    def test_smoothing_avoids_zero(self):
        model = NgramModel(order=2, smoothing_k=0.5)
        model.fit([["U16", "U32"]])
        assert model.probability("U16", ["U16"]) > 0.0

    def test_unigram_model(self):
        model = NgramModel(order=1).fit([["S", "S", "I13"]])
        # 4 events including </s>.
        assert model.probability("S") == pytest.approx(2 / 4)

    def test_trigram_context(self):
        model = NgramModel(order=3).fit(
            [["U1", "U2", "I100", "I13", "I13"]])
        assert model.probability("I100", ["U1", "U2"]) == 1.0

    def test_perplexity_lower_for_matching_model(self):
        regular = [["I13", "S"] * 10 for _ in range(5)]
        model = NgramModel(order=2, smoothing_k=0.01).fit(regular)
        match = model.perplexity([["I13", "S"] * 5])
        mismatch = model.perplexity([["S", "I13"] * 5])
        assert match < mismatch

    def test_invalid_token_rejected(self):
        with pytest.raises(ValueError):
            NgramModel().fit([["NOT_A_TOKEN"]])

    def test_order_validation(self):
        with pytest.raises(ValueError):
            NgramModel(order=0)

    @given(st.lists(st.sampled_from(["S", "I13", "I36", "U16", "U32"]),
                    min_size=1, max_size=30))
    def test_outgoing_probabilities_sum_to_one(self, sequence):
        model = NgramModel(order=2).fit([sequence])
        for context_token in set(sequence):
            total = sum(model.probability(token, [context_token])
                        for token in model.vocabulary)
            assert total == pytest.approx(1.0)


class TestMarkovChain:
    def test_primary_pattern(self):
        """Paper Fig. 12 left: I36 acknowledged by S."""
        tokens = ["I36", "I36", "S", "I36", "I36", "S"]
        chain = MarkovChain.from_tokens(tokens)
        assert chain.node_count == 2
        assert chain.probability("S", "I36") == 1.0
        assert chain.probability("I36", "I36") == pytest.approx(0.5)

    def test_secondary_pattern(self):
        """Paper Fig. 12 right: U16/U32 keep-alive loop."""
        chain = MarkovChain.from_tokens(["U16", "U32"] * 10)
        assert chain.size == (2, 2)
        assert chain.probability("U32", "U16") == 1.0

    def test_reset_backup_point_1_1(self):
        """Paper Fig. 14: repeated U16 with no U32."""
        chain = MarkovChain.from_tokens(["U16"] * 8)
        assert chain.size == (1, 1)
        assert chain.is_reset_backup
        assert classify_chain(chain) is ChainCluster.RESET_POINT

    def test_interrogation_cluster(self):
        chain = MarkovChain.from_tokens(
            ["U1", "U2", "I100", "I13", "I36", "S"])
        assert chain.has_interrogation
        assert classify_chain(chain) is ChainCluster.INTERROGATION

    def test_plain_cluster(self):
        chain = MarkovChain.from_tokens(["I36", "S"] * 4)
        assert classify_chain(chain) is ChainCluster.PLAIN

    def test_switchover_pattern(self):
        """Paper Fig. 16: keep-alives then STARTDT + interrogation."""
        chain = MarkovChain.from_tokens(
            ["U16", "U32", "U16", "U32", "U1", "U2", "I100", "I13"])
        assert chain.has_switchover

    def test_transition_probabilities_sum_to_one(self):
        chain = MarkovChain.from_tokens(
            ["I13", "I13", "S", "I13", "U16", "U32", "I13"])
        for node in chain.nodes:
            successors = chain.successors(node)
            if successors:
                assert sum(successors.values()) == pytest.approx(1.0)

    def test_empty(self):
        chain = MarkovChain.from_tokens([])
        assert chain.size == (0, 0)

    def test_single_token_has_no_edges(self):
        chain = MarkovChain.from_tokens(["S"])
        assert chain.size == (1, 0)

    def test_render(self):
        chain = MarkovChain.from_tokens(["U16", "U32"] * 3)
        text = chain.render()
        assert "U16" in text and "->" in text

    @given(st.lists(st.sampled_from(["S", "I13", "U16", "U32"]),
                    min_size=2, max_size=40))
    def test_size_invariants(self, tokens):
        chain = MarkovChain.from_tokens(tokens)
        assert chain.node_count == len(set(tokens))
        assert chain.edge_count <= chain.node_count ** 2
        assert chain.edge_count >= 1
