"""Cyber-physical whitelist IDS tests (the paper's future work)."""

import pytest

from repro.analysis.physical import PointKey
from repro.analysis.whitelist import (CombinedDetector, CyberWhitelist,
                                      PhysicalWhitelist)
from repro.grid.generator import BREAKER_CLOSED, BREAKER_OPEN
from repro.iec104.constants import TypeID

CLEAN = ["I36", "I36", "S", "I36", "I13", "S"] * 5
INDUSTROYER = ["U1", "U2", "I100"] + ["I45"] * 5 + ["I46"] * 5


class TestCyberWhitelist:
    def test_clean_sequence_passes(self):
        whitelist = CyberWhitelist(per_connection=False)
        whitelist.fit_sequence(CLEAN)
        verdict = whitelist.score(CLEAN[:10])
        assert verdict.unseen_fraction == 0.0
        assert not verdict.is_alert()

    def test_attack_sequence_flagged(self):
        whitelist = CyberWhitelist(per_connection=False)
        whitelist.fit_sequence(CLEAN)
        verdict = whitelist.score(INDUSTROYER)
        assert verdict.unseen_fraction > 0.5
        assert verdict.is_alert()
        assert "I45" in verdict.unknown_tokens

    def test_per_connection_isolation(self):
        whitelist = CyberWhitelist(per_connection=True)
        whitelist.fit_sequence(["U16", "U32"] * 5, connection="backup")
        whitelist.fit_sequence(CLEAN, connection="primary")
        # I-format traffic on the backup connection is anomalous even
        # though it is normal on the primary.
        verdict = whitelist.score(["I36", "S", "I36"],
                                  connection="backup")
        assert verdict.is_alert()
        assert not whitelist.score(["U16", "U32"],
                                   connection="backup").is_alert()

    def test_unknown_connection_alerts(self):
        whitelist = CyberWhitelist()
        whitelist.fit_sequence(CLEAN, connection="known")
        verdict = whitelist.score(["I36", "S"], connection="mystery")
        assert verdict.is_alert()

    def test_invalid_token_rejected(self):
        whitelist = CyberWhitelist()
        with pytest.raises(ValueError):
            whitelist.fit_sequence(["HACK"])

    def test_fit_from_capture(self, y1_extraction):
        whitelist = CyberWhitelist().fit(y1_extraction)
        assert len(whitelist.learned_connections) > 20
        # Re-scoring the training capture raises no alerts.
        verdicts = whitelist.score_extraction(y1_extraction)
        assert all(verdict.unseen_fraction == 0.0
                   for verdict in verdicts)


class TestPhysicalWhitelist:
    def make_fitted(self, y1_extraction):
        return PhysicalWhitelist().fit(y1_extraction)

    def test_learns_envelopes(self, y1_extraction):
        whitelist = self.make_fitted(y1_extraction)
        assert whitelist.point_count > 100

    def test_training_data_passes(self, y1_extraction):
        whitelist = self.make_fitted(y1_extraction)
        assert whitelist.check_extraction(y1_extraction) == []

    def test_out_of_envelope_value_flagged(self, y1_extraction):
        whitelist = self.make_fitted(y1_extraction)
        key = next(iter(k for k in
                        whitelist._envelopes))  # any learned point
        envelope = whitelist.envelope(key)
        violation = whitelist.check_sample(
            key, 0.0, envelope.high + 10 * (envelope.high
                                            - envelope.low + 1.0))
        assert violation is not None
        assert "envelope" in violation.reason

    def test_unknown_point_flagged(self):
        whitelist = PhysicalWhitelist()
        key = PointKey(station="OX", ioa=1, type_id=TypeID.M_ME_NC_1)
        violation = whitelist.check_sample(key, 0.0, 1.0)
        assert violation is not None
        assert "never seen" in violation.reason

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            PhysicalWhitelist(margin=-0.1)

    def test_activation_rules(self):
        anomalies = PhysicalWhitelist.check_activation(
            times=[0.0, 1.0], voltages=[130.0, 130.0],
            breakers=[BREAKER_CLOSED, BREAKER_OPEN],
            powers=[50.0, 50.0])
        assert anomalies  # power through an open breaker
        clean = PhysicalWhitelist.check_activation(
            times=[0.0, 1.0, 2.0], voltages=[0.0, 130.0, 130.0],
            breakers=[BREAKER_OPEN, BREAKER_OPEN, BREAKER_CLOSED],
            powers=[0.0, 0.0, 30.0])
        assert clean == []


class TestCombinedDetector:
    def test_clean_capture_is_quiet(self, y1_extraction):
        detector = CombinedDetector().fit(y1_extraction)
        alerts = detector.detect(y1_extraction)
        assert alerts == []

    def test_correlated_alert(self):
        from repro.analysis.whitelist import (CombinedAlert,
                                              CyberVerdict,
                                              PhysicalViolation)
        verdict = CyberVerdict(connection=("C1", "O1"), tokens=10,
                               unseen_transitions=(("I45", "I45"),) * 5,
                               unknown_tokens=("I45",))
        violation = PhysicalViolation(
            key=PointKey(station="O1", ioa=1,
                         type_id=TypeID.M_ME_NC_1),
            time=1.0, value=999.0, reason="test")
        alert = CombinedAlert(connection=("C1", "O1"), cyber=verdict,
                              physical=(violation,))
        assert alert.correlated
