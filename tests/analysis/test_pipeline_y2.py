"""Year-2 pipeline assertions (Y1 is covered in test_pipeline.py)."""

import pytest

from repro.analysis import (ConnectionChains, analyze_compliance,
                            classify_all, type_distribution,
                            type_id_distribution)
from repro.simnet.behaviors import OutstationType


class TestY2Compliance:
    def test_y2_legacy_hosts(self, y2_capture):
        """Paper §6.1: in Y2 the malformed senders are O37, O53, O58
        (O28 was removed)."""
        report = analyze_compliance(y2_capture)
        assert set(report.fully_malformed_hosts()) \
            == {"O37", "O53", "O58"}

    def test_y2_all_frames_decode(self, y2_extraction):
        assert y2_extraction.failures == []


class TestY2Markov:
    def test_y2_reset_set_shrinks(self, y1_extraction, y2_extraction):
        """The removed RTUs (O15, O28) leave the point-(1,1) set."""
        y1_reset = set(ConnectionChains.from_extraction(
            y1_extraction).reset_connections())
        y2_reset = set(ConnectionChains.from_extraction(
            y2_extraction).reset_connections())
        gone = {("C1", "O15"), ("C2", "O28")}
        assert gone & y1_reset
        assert not (gone & y2_reset)
        # The persisting misbehavers are still there.
        assert {("C1", "O5"), ("C1", "O35")} <= y2_reset


class TestY2Classification:
    def test_new_substations_classified(self, y2_extraction):
        classifications = classify_all(y2_extraction)
        for name in ("O50", "O52", "O53", "O54", "O55"):
            assert classifications[name].outstation_type \
                is OutstationType.IDEAL, name
        for name in ("O56", "O57"):
            assert classifications[name].outstation_type \
                is OutstationType.BACKUP_U_ONLY, name

    def test_o9_no_longer_rejects(self, y2_extraction):
        """O9 took over representing S8 after O15's removal."""
        classifications = classify_all(y2_extraction)
        assert classifications["O9"].outstation_type \
            is OutstationType.IDEAL

    def test_distribution_matches_ground_truth(self, y2_extraction):
        """The Y2 traffic classifier recovers the year's ground-truth
        type census exactly (Y2's additions make type 2 most common,
        unlike Y1)."""
        from collections import Counter
        from repro.datasets import roster
        distribution = type_distribution(classify_all(y2_extraction))
        truth = Counter(spec.y2_type for spec in roster(2))
        assert distribution.counts == dict(truth)


class TestY2Physical:
    def test_i36_i13_still_dominate(self, y2_extraction):
        distribution = type_id_distribution(y2_extraction)
        rows = distribution.rows()
        assert {rows[0][0], rows[1][0]} == {"I36", "I13"}
        assert distribution.top_two_share() > 85.0
