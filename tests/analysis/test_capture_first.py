"""Capture-first entrypoints and the 1.1.0 API cutover.

The analysis API's canonical input is a *capture* — anything with a
``.packets`` iterable and a ``host_names()`` mapping. These tests pin
both directions of the contract: capture objects, readers and record
iterables are accepted directly, and the legacy ``(packets,
names=...)`` pair-threading shims (removed in 1.1.0) stay removed.
"""

import io
import warnings

import pytest

from repro.analysis import (FlowAnalysis, PacketCapture, analyze_compliance,
                            as_capture, extract_apdus, extract_sessions,
                            resolve_source, tokenize)
from repro.analysis.timeline import build_timelines
from repro.netstack.pcap import PcapReader, PcapRecord, PcapWriter
from repro.simnet.capture import CaptureTap
from repro.simnet.clock import Simulator
from repro.simnet.tcpsim import SimConnection, SimHost
from repro.netstack.addresses import IPv4Address, MacAddress
from repro.iec104.apci import UFrame
from repro.iec104.constants import UFunction

import random


@pytest.fixture(scope="module")
def small_capture():
    client = SimHost(name="C1", ip=IPv4Address(0x0A000001),
                     mac=MacAddress(0x020000000001))
    server = SimHost(name="O1", ip=IPv4Address(0x0A010001),
                     mac=MacAddress(0x020000000002))
    tap = CaptureTap()
    conn = SimConnection(Simulator(), tap, client, server, 2404,
                         rng=random.Random(9))
    conn.establish(0)
    conn.send(1_000_000, from_client=True,
              payload=UFrame(UFunction.TESTFR_ACT).encode())
    conn.send(1_500_000, from_client=False,
              payload=UFrame(UFunction.TESTFR_CON).encode())
    names = {client.ip: "C1", server.ip: "O1"}
    return PacketCapture(packets=list(tap.packets), names=names)


class TestCaptureFirst:
    def test_extract_apdus_accepts_capture(self, small_capture):
        extraction = extract_apdus(small_capture)
        assert tokenize(extraction.events) == ["U16", "U32"]
        assert extraction.events[0].src == "C1"

    def test_flow_analysis_accepts_capture(self, small_capture):
        analysis = FlowAnalysis.from_packets("t", small_capture)
        assert len(analysis.flows) == 1

    def test_analyze_compliance_accepts_capture(self, small_capture):
        report = analyze_compliance(small_capture)
        assert report.fully_malformed_hosts() == []

    def test_extract_sessions_accepts_capture(self, small_capture):
        sessions = extract_sessions(small_capture, min_packets=1)
        assert sessions

    def test_build_timelines_accepts_capture(self, small_capture):
        timelines = build_timelines(small_capture,
                                    extract_apdus(small_capture))
        assert ("C1", "O1") in timelines

    def test_pcap_reader_accepted_directly(self, small_capture):
        buffer = io.BytesIO()
        PcapWriter(buffer).write_all(
            PcapRecord(time_us=p.time_us, data=p.encode())
            for p in small_capture.packets)
        buffer.seek(0)
        extraction = extract_apdus(PcapReader(buffer))
        assert tokenize(extraction.events) == ["U16", "U32"]

    def test_record_iterable_accepted(self, small_capture):
        records = [PcapRecord(time_us=p.time_us, data=p.encode())
                   for p in small_capture.packets]
        extraction = extract_apdus(records)
        assert len(extraction.events) == 2

    def test_plain_packet_iterable_accepted_unwarned(self, small_capture):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            extraction = extract_apdus(iter(small_capture.packets))
        # No name map: hosts fall back to address:port labels.
        assert extraction.events[0].src.startswith("10.")

    def test_empty_iterable(self):
        assert extract_apdus(iter([])).events == []

    def test_as_capture_is_idempotent(self, small_capture):
        assert as_capture(small_capture) is small_capture

    def test_resolve_source_returns_capture_names(self, small_capture):
        packets, names = resolve_source(small_capture)
        assert names == small_capture.host_names()


class TestCutover110:
    """The 1.1.0 API cutover: the deprecated shims are gone."""

    def test_extract_apdus_rejects_names_kwarg(self, small_capture):
        with pytest.raises(TypeError, match="names"):
            extract_apdus(small_capture.packets,
                          names=small_capture.host_names())

    def test_flow_analysis_rejects_names_kwarg(self, small_capture):
        with pytest.raises(TypeError, match="names"):
            FlowAnalysis.from_packets(
                "t", small_capture.packets,
                names=small_capture.host_names())

    def test_analyze_compliance_rejects_names_kwarg(self,
                                                    small_capture):
        with pytest.raises(TypeError, match="names"):
            analyze_compliance(small_capture.packets,
                               names=small_capture.host_names())

    def test_wrapping_in_packet_capture_attaches_names(
            self, small_capture):
        override = {address: f"X-{name}"
                    for address, name in small_capture.names.items()}
        wrapped = PacketCapture(packets=small_capture.packets,
                                names=override)
        extraction = extract_apdus(wrapped)
        assert extraction.events[0].src == "X-C1"

    def test_apdu_event_timestamp_property_removed(self,
                                                   small_capture):
        event = extract_apdus(small_capture).events[0]
        with pytest.raises(AttributeError):
            event.timestamp

    def test_captured_packet_timestamp_property_removed(
            self, small_capture):
        packet = small_capture.packets[0]
        with pytest.raises(AttributeError):
            packet.timestamp

    def test_timeline_entry_time_views_removed(self, small_capture):
        timelines = build_timelines(small_capture,
                                    extract_apdus(small_capture))
        entry = timelines[("C1", "O1")].entries[0]
        with pytest.raises(AttributeError):
            entry.timestamp
        with pytest.raises(AttributeError):
            entry.time
