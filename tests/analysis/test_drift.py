"""Day-over-day drift analysis tests."""

import pytest

from repro.analysis.apdu_stream import ApduEvent
from repro.analysis.drift import (DayProfile, SessionDrift,
                                  day_boundaries, session_drift,
                                  summarize_drift)
from repro.iec104.apci import SFrame, UFrame
from repro.iec104.constants import UFunction


def event(t, token="S"):
    apdu = SFrame() if token == "S" else UFrame(UFunction.TESTFR_ACT)
    return ApduEvent(time_us=round(t * 1_000_000), src="C1",
                     dst="O1", apdu=apdu, wire_bytes=60)


class TestDayBoundaries:
    def test_detects_gaps(self, y1_extraction):
        boundaries = day_boundaries(y1_extraction)
        # Five capture days -> four inter-day gaps.
        assert len(boundaries) == 4

    def test_no_gap_no_boundary(self):
        from repro.analysis.apdu_stream import StreamExtraction
        extraction = StreamExtraction(
            events=[event(float(t)) for t in range(100)], parser=None)
        assert day_boundaries(extraction) == []


class TestSessionDrift:
    def test_identical_days_zero_drift(self):
        record = SessionDrift(session=("C1", "O1"), days=[
            DayProfile(day=0, packets=100, rate_per_s=1.0, pct_i=0.8,
                       pct_s=0.2, pct_u=0.0),
            DayProfile(day=1, packets=100, rate_per_s=1.0, pct_i=0.8,
                       pct_s=0.2, pct_u=0.0)])
        assert record.drift == pytest.approx(0.0)

    def test_mix_change_drifts(self):
        record = SessionDrift(session=("C1", "O1"), days=[
            DayProfile(day=0, packets=100, rate_per_s=1.0, pct_i=1.0,
                       pct_s=0.0, pct_u=0.0),
            DayProfile(day=1, packets=100, rate_per_s=1.0, pct_i=0.0,
                       pct_s=0.0, pct_u=1.0)])
        assert record.drift > 1.0

    def test_intermittent_detection(self):
        record = SessionDrift(session=("C1", "O1"), days=[
            DayProfile(day=0, packets=10, rate_per_s=1.0, pct_i=1.0,
                       pct_s=0.0, pct_u=0.0),
            DayProfile(day=4, packets=10, rate_per_s=1.0, pct_i=1.0,
                       pct_s=0.0, pct_u=0.0)])
        assert record.intermittent

    def test_single_day_no_drift(self):
        record = SessionDrift(session=("C1", "O1"), days=[
            DayProfile(day=0, packets=10, rate_per_s=1.0, pct_i=1.0,
                       pct_s=0.0, pct_u=0.0)])
        assert record.drift == 0.0


class TestOnCapture:
    def test_scada_sessions_mostly_stable(self, y1_extraction):
        """Hypothesis 1 at day granularity: the bulk of sessions keep
        their behaviour across capture days."""
        drifts = session_drift(y1_extraction)
        summary = summarize_drift(drifts)
        assert summary.multi_day_sessions > 30
        assert summary.stability_fraction > 0.8

    def test_steady_primary_sessions_stable(self, y1_extraction):
        drifts = {record.session: record
                  for record in session_drift(y1_extraction)}
        # O3's always-on primary reporting stream to C1.
        primary = drifts.get(("O3", "C1"))
        assert primary is not None
        assert primary.observed_days >= 4
        assert primary.drift < 0.6

    def test_type4_sessions_span_alternating_days(self, y1_extraction):
        """A type-4 outstation talks to each server only on alternate
        days — visible as intermittency."""
        drifts = {record.session: record
                  for record in session_drift(y1_extraction)}
        session = drifts.get(("O27", "C1"))
        assert session is not None
        assert session.intermittent


class TestSummary:
    def test_empty(self):
        summary = summarize_drift([])
        assert summary.stability_fraction == 1.0

    def test_threshold(self):
        records = [SessionDrift(session=("C1", f"O{i}"), days=[
            DayProfile(day=0, packets=10, rate_per_s=1.0, pct_i=1.0,
                       pct_s=0.0, pct_u=0.0),
            DayProfile(day=1, packets=10, rate_per_s=1.0,
                       pct_i=1.0 if i else 0.0, pct_s=0.0,
                       pct_u=0.0 if i else 1.0)])
            for i in range(3)]
        summary = summarize_drift(records, threshold=0.6)
        assert summary.drifting_sessions == (("C1", "O0"),)
