"""Markov chain graph export and stationary distribution tests."""

import pytest

from repro.analysis.markov import MarkovChain


class TestNetworkxExport:
    def test_graph_structure(self):
        chain = MarkovChain.from_tokens(["U16", "U32"] * 5)
        graph = chain.to_networkx()
        assert set(graph.nodes) == {"U16", "U32"}
        assert graph.number_of_edges() == 2
        assert graph["U16"]["U32"]["probability"] == 1.0
        assert graph["U16"]["U32"]["count"] == 5

    def test_isolated_node_kept(self):
        chain = MarkovChain.from_tokens(["S"])
        graph = chain.to_networkx()
        assert list(graph.nodes) == ["S"]
        assert graph.number_of_edges() == 0

    def test_cycle_detection_via_networkx(self):
        import networkx as nx
        chain = MarkovChain.from_tokens(
            ["I36", "I36", "S", "I36", "S"])
        graph = chain.to_networkx()
        cycles = list(nx.simple_cycles(graph))
        assert any(set(cycle) == {"I36", "S"} for cycle in cycles)


class TestDotExport:
    def test_dot_contains_edges(self):
        chain = MarkovChain.from_tokens(["U1", "U2", "I100", "I13"])
        dot = chain.to_dot()
        assert dot.startswith("digraph")
        assert '"U1" -> "U2"' in dot
        assert 'label="1.00"' in dot


class TestStationaryDistribution:
    def test_keepalive_loop_is_uniform(self):
        chain = MarkovChain.from_tokens(["U16", "U32"] * 20)
        pi = chain.stationary_distribution()
        assert pi["U16"] == pytest.approx(0.5)
        assert pi["U32"] == pytest.approx(0.5)

    def test_weighted_loop(self):
        # I36 self-loops twice for every S transition.
        chain = MarkovChain.from_tokens(["I36", "I36", "I36", "S"] * 30)
        pi = chain.stationary_distribution()
        assert pi["I36"] == pytest.approx(0.75, abs=0.01)
        assert pi["S"] == pytest.approx(0.25, abs=0.01)

    def test_sums_to_one(self):
        chain = MarkovChain.from_tokens(
            ["U16", "U32", "U16", "U32", "U16"])
        pi = chain.stationary_distribution()
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_dangling_node_returns_empty(self):
        # "S" never transitions onward: no stationary distribution.
        chain = MarkovChain.from_tokens(["I36", "S"])
        assert chain.stationary_distribution() == {}

    def test_empty_chain(self):
        assert MarkovChain.from_tokens([]).stationary_distribution() \
            == {}
