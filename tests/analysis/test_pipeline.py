"""End-to-end analysis pipeline tests on the shared synthetic captures.

These are the integration tests that check every Section 6 result of
the paper at small scale: compliance (6.1), flows (6.2), sessions and
Markov chains (6.3), and physical DPI (6.4).
"""

import io

import pytest

from repro.analysis import (ChainCluster, ConnectionChains, FlowAnalysis,
                            analyze_compliance, extract_apdus,
                            extract_sessions, feature_matrix,
                            interesting_events, kmeans, fit_pca,
                            silhouette_score, symbol_table, tokenize,
                            type_id_distribution)
from repro.analysis.apdu_stream import observed_ioas
from repro.datasets import NON_COMPLIANT, Y1_RESET_CONNECTIONS
from repro.netstack.packet import CapturedPacket
from repro.netstack.pcap import PcapReader


class TestPcapRoundtrip:
    def test_capture_exports_and_reimports(self, y1_capture):
        buffer = io.BytesIO()
        count = y1_capture.to_pcap(buffer)
        assert count == len(y1_capture.packets)
        buffer.seek(0)
        packets = [CapturedPacket.decode(r.time_us, r.data)
                   for r in PcapReader(buffer)]
        assert all(p is not None for p in packets)
        # Integer-microsecond ticks survive the pcap round trip
        # exactly, so timestamps (not just tokens) must match.
        assert [p.time_us for p in packets] \
            == [p.time_us for p in y1_capture.packets]
        # The analysis of re-imported packets matches the in-memory one.
        from repro.analysis.sources import PacketCapture
        names = y1_capture.host_names()
        direct = extract_apdus(
            PacketCapture(y1_capture.packets[:2000], names))
        reread = extract_apdus(PacketCapture(packets[:2000], names))
        assert tokenize(direct.events) == tokenize(reread.events)


class TestCompliance:
    def test_every_frame_decodes_tolerantly(self, y1_extraction):
        assert not y1_extraction.failures

    def test_legacy_hosts_flagged_by_strict_parser(self, y1_capture):
        report = analyze_compliance(y1_capture)
        flagged = set(report.fully_malformed_hosts())
        expected = {name for name in NON_COMPLIANT
                    if any(plan.behavior.name == name
                           for plan in y1_capture.plans)}
        assert flagged == expected  # O37 and O28 in Y1

    def test_inferred_profiles_match_ground_truth(self, y1_capture):
        report = analyze_compliance(y1_capture)
        for host in report.non_compliant_hosts():
            assert host.inferred_profile == NON_COMPLIANT[host.host]

    def test_compliant_hosts_not_flagged(self, y1_capture):
        report = analyze_compliance(y1_capture)
        assert "O1" in report.hosts
        assert report.hosts["O1"].is_compliant
        assert report.hosts["O1"].strict_malformed == 0


class TestFlows:
    def test_short_lived_dominate(self, y1_capture):
        analysis = FlowAnalysis.from_packets("Y1", y1_capture)
        summary = analysis.summary()
        assert summary.short_fraction > 0.5
        assert summary.sub_second_fraction_of_short > 0.9

    def test_reset_pairs_found(self, y1_capture):
        analysis = FlowAnalysis.from_packets("Y1", y1_capture)
        pairs = {(p.server, p.outstation)
                 for p in analysis.rejecting_pairs()}
        # All the RST/FIN-mode pairs of the paper's list must be found
        # (ignore-mode and the slow O30 need longer captures).
        expected = {("C1", "O5"), ("C1", "O6"), ("C1", "O7"),
                    ("C1", "O8"), ("C1", "O9"), ("C1", "O35"),
                    ("C2", "O24")}
        assert expected <= pairs

    def test_histogram_covers_all_short_flows(self, y1_capture):
        analysis = FlowAnalysis.from_packets("Y1", y1_capture)
        bins = analysis.duration_histogram()
        assert sum(count for _, _, count in bins) \
            == len(analysis.short_lived_durations())


class TestSessionsAndClusters:
    def test_sessions_extracted(self, y1_extraction):
        sessions = extract_sessions(y1_extraction)
        assert len(sessions) > 50
        for session in sessions:
            assert session.pct_i + session.pct_s + session.pct_u \
                == pytest.approx(1.0)

    def test_clustering_separates_behaviours(self, y1_extraction):
        sessions = extract_sessions(y1_extraction)
        matrix = feature_matrix(sessions)
        result = kmeans(matrix, 5, seed=42)
        score = silhouette_score(matrix, result.labels)
        assert score > 0.4
        # Keep-alive-only sessions (pct_u == 1) cluster together.
        keepalive = [i for i, s in enumerate(sessions)
                     if s.pct_u == 1.0 and s.num > 4]
        labels = {result.labels[i] for i in keepalive}
        assert len(labels) <= 2

    def test_pca_projects(self, y1_extraction):
        sessions = extract_sessions(y1_extraction)
        matrix = feature_matrix(sessions)
        projection = fit_pca(matrix, 2).transform(matrix)
        assert projection.shape == (len(sessions), 2)


class TestMarkov:
    def test_reset_connections_at_point_1_1(self, y1_extraction):
        chains = ConnectionChains.from_extraction(y1_extraction)
        reset = set(chains.reset_connections())
        expected_present = {("C1", "O5"), ("C1", "O6"), ("C1", "O7"),
                            ("C1", "O8"), ("C1", "O9"), ("C2", "O24"),
                            ("C1", "O35")}
        assert expected_present <= reset
        # Reset connections must be a subset of the paper's list plus
        # the ignore-mode stations.
        allowed = {tuple(pair) for pair in Y1_RESET_CONNECTIONS}
        assert reset <= allowed

    def test_ellipse_contains_switchover_pairs(self, y1_extraction):
        chains = ConnectionChains.from_extraction(y1_extraction)
        clusters = chains.by_cluster()
        ellipse = set(clusters[ChainCluster.INTERROGATION])
        # Both switchover outstations appear with both their servers.
        assert ("C1", "O29") in ellipse and ("C2", "O29") in ellipse
        assert ("C3", "O20") in ellipse and ("C4", "O20") in ellipse

    def test_ellipse_chains_have_more_edges(self, y1_extraction):
        chains = ConnectionChains.from_extraction(y1_extraction)
        clusters = chains.by_cluster()
        def mean_edges(connections):
            sizes = [chains.chains[c].edge_count for c in connections]
            return sum(sizes) / len(sizes)
        assert (mean_edges(clusters[ChainCluster.INTERROGATION])
                > mean_edges(clusters[ChainCluster.PLAIN]))


class TestPhysical:
    def test_i36_i13_dominate(self, y1_extraction):
        distribution = type_id_distribution(y1_extraction)
        rows = distribution.rows()
        assert {rows[0][0], rows[1][0]} == {"I36", "I13"}
        assert distribution.top_two_share() > 85.0

    def test_agc_setpoints_at_four_stations(self, y1_extraction):
        table = {row.token: row for row in symbol_table(y1_extraction)}
        assert table["I50"].station_count == 4
        assert table["I50"].symbols == ("AGC-SP",)

    def test_symbols_inferred(self, y1_extraction):
        table = {row.token: row for row in symbol_table(y1_extraction)}
        for token in ("I13", "I36"):
            assert "Freq" in table[token].symbols
            assert "U" in table[token].symbols

    def test_interesting_events_exist(self, y1_extraction):
        events = interesting_events(y1_extraction, top=5)
        assert len(events) == 5
        variances = [event.normalized_variance for event in events]
        assert variances == sorted(variances, reverse=True)

    def test_observed_ioas_match_config(self, y1_capture, y1_extraction):
        """IOAs seen on the wire for an always-primary outstation must
        match its configured point list (interrogation reports all)."""
        behavior = next(plan.behavior for plan in y1_capture.plans
                        if plan.behavior.name == "O27")
        events = [e for e in y1_extraction.events
                  if "O27" in (e.src, e.dst)]
        seen = observed_ioas(events, source="O27")
        configured = {point.ioa for point in behavior.points}
        assert configured <= seen | configured
        # At minimum the interrogation burst reported every point.
        assert configured <= seen


class TestClusterRoles:
    def test_labels_cover_paper_roles(self, y1_extraction):
        from repro.analysis import extract_sessions, feature_matrix, \
            kmeans
        from repro.analysis.sessions import CLUSTER_ROLES, label_clusters
        sessions = extract_sessions(y1_extraction)
        matrix = feature_matrix(sessions)
        result = kmeans(matrix, 5, seed=104)
        roles = label_clusters(sessions, result.labels)
        assert len(roles) == 5
        assert set(roles.values()) == set(CLUSTER_ROLES)

    def test_keepalive_role_contains_backup_sessions(self,
                                                     y1_extraction):
        from repro.analysis import extract_sessions, feature_matrix, \
            kmeans
        from repro.analysis.sessions import label_clusters
        sessions = extract_sessions(y1_extraction)
        matrix = feature_matrix(sessions)
        result = kmeans(matrix, 5, seed=104)
        roles = label_clusters(sessions, result.labels)
        keepalive_cluster = next(c for c, role in roles.items()
                                 if role == "keepalive")
        members = [s for s, label in zip(sessions, result.labels)
                   if label == keepalive_cluster]
        assert members
        assert all(m.pct_u > 0.5 for m in members)

    def test_outlier_role_contains_o30_or_o22(self, y1_extraction):
        from repro.analysis import extract_sessions, feature_matrix, \
            kmeans
        from repro.analysis.sessions import label_clusters
        sessions = extract_sessions(y1_extraction)
        matrix = feature_matrix(sessions)
        result = kmeans(matrix, 5, seed=104)
        roles = label_clusters(sessions, result.labels)
        outlier_cluster = next(c for c, role in roles.items()
                               if role == "outlier-long-gaps")
        names = [s.name for s, label in zip(sessions, result.labels)
                 if label == outlier_cluster]
        assert any("O30" in name or "O22" in name for name in names)
