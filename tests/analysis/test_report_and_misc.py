"""Report rendering, compliance field diffs and flow summary rows."""

import pytest

from repro.analysis.compliance import field_diffs
from repro.analysis.flows import FlowSummary
from repro.analysis.report import (render_histogram, render_series,
                                   render_table)
from repro.iec104.profiles import (LEGACY_COT_PROFILE, LEGACY_IOA_PROFILE,
                                   STANDARD_PROFILE, LinkProfile)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "count"],
                            [["alpha", 1], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "count" in lines[1]
        # All body rows align with the header width.
        assert len(lines[3]) == len(lines[1])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])


class TestRenderHistogram:
    def test_bars_scale(self):
        text = render_histogram([(0.001, 0.01, 10), (0.01, 0.1, 5)],
                                width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert render_histogram([]) == ""


class TestRenderSeries:
    def test_shape(self):
        text = render_series([0.0, 1.0, 2.0], [1.0, 5.0, 1.0],
                             width=20, height=5, title="V")
        lines = text.splitlines()
        assert lines[0] == "V"
        assert "*" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([0.0], [1.0, 2.0])

    def test_empty(self):
        assert "(empty series)" in render_series([], [])


class TestFieldDiffs:
    def test_legacy_cot(self):
        diffs = field_diffs(LEGACY_COT_PROFILE)
        assert len(diffs) == 1
        assert diffs[0].field_name == "Cause of Transmission"
        assert diffs[0].observed_octets == 1
        assert "1 octet(s) observed vs 2" in str(diffs[0])

    def test_legacy_ioa(self):
        diffs = field_diffs(LEGACY_IOA_PROFILE)
        assert diffs[0].field_name == "Information Object Address"

    def test_standard_has_no_diffs(self):
        assert field_diffs(STANDARD_PROFILE) == []

    def test_combined(self):
        profile = LinkProfile(cot_length=1, ioa_length=2,
                              common_address_length=1)
        assert len(field_diffs(profile)) == 3


class TestFlowSummary:
    def test_rows_format(self):
        summary = FlowSummary(label="Y1", sub_second_short=31614,
                              longer_short=63, long_lived=10898)
        rows = dict(summary.rows())
        assert "31614 (99.8%)" in rows[
            "Less-than-one-second short-lived flows"]
        assert "31677 (74.4%)" in rows["Short-lived flows"]
        assert "10898 (25.6%)" in rows["Long-lived flows"]

    def test_fractions(self):
        summary = FlowSummary(label="x", sub_second_short=90,
                              longer_short=10, long_lived=100)
        assert summary.short_fraction == 0.5
        assert summary.sub_second_fraction_of_short == 0.9

    def test_empty(self):
        summary = FlowSummary(label="x", sub_second_short=0,
                              longer_short=0, long_lived=0)
        assert summary.short_fraction == 0.0
        assert summary.rows()
