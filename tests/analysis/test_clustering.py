"""K-means++, Silhouette, elbow and PCA tests on controlled data."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.clustering import (explained_variance, kmeans,
                                       per_feature_silhouette, select_k,
                                       silhouette_score)
from repro.analysis.pca import fit_pca


def blobs(centers, per=20, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    for center in centers:
        points.append(rng.normal(loc=center, scale=spread,
                                 size=(per, len(center))))
    return np.vstack(points)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        data = blobs([(0, 0), (10, 10), (0, 10)])
        result = kmeans(data, 3, seed=1)
        # All points of a blob share a label.
        for start in range(0, 60, 20):
            assert len(set(result.labels[start:start + 20])) == 1
        # The three blobs get three distinct labels.
        assert len({result.labels[0], result.labels[20],
                    result.labels[40]}) == 3

    def test_inertia_decreases_with_k(self):
        data = blobs([(0, 0), (5, 5), (9, 0)], per=15)
        inertias = [kmeans(data, k, seed=2).inertia for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_equals_n_zero_inertia(self):
        data = blobs([(0, 0)], per=4)
        result = kmeans(data, 4, seed=3)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_predict_matches_labels(self):
        data = blobs([(0, 0), (8, 8)])
        result = kmeans(data, 2, seed=4)
        assert (result.predict(data) == result.labels).all()

    def test_deterministic_for_seed(self):
        data = blobs([(0, 0), (8, 8)])
        a = kmeans(data, 2, seed=5)
        b = kmeans(data, 2, seed=5)
        assert (a.labels == b.labels).all()

    def test_invalid_k(self):
        data = blobs([(0, 0)], per=5)
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, 6)

    def test_identical_points_handled(self):
        data = np.zeros((10, 3))
        result = kmeans(data, 2, seed=6)
        assert result.inertia == pytest.approx(0.0)


class TestSilhouette:
    def test_well_separated_near_one(self):
        data = blobs([(0, 0), (100, 100)])
        labels = np.array([0] * 20 + [1] * 20)
        assert silhouette_score(data, labels) > 0.95

    def test_wrong_assignment_negative(self):
        data = blobs([(0, 0), (100, 100)], per=10)
        labels = np.array(([1] * 5 + [0] * 5) * 2)
        assert silhouette_score(data, labels) < 0.0

    def test_single_cluster_zero(self):
        data = blobs([(0, 0)])
        assert silhouette_score(data, np.zeros(20, dtype=int)) == 0.0

    def test_bounds(self):
        data = blobs([(0, 0), (3, 3), (9, 1)], per=8, spread=0.8)
        result = kmeans(data, 3, seed=7)
        score = silhouette_score(data, result.labels)
        assert -1.0 <= score <= 1.0


class TestModelSelection:
    def test_select_k_prefers_true_k(self):
        data = blobs([(0, 0), (10, 0), (0, 10), (10, 10), (5, 5)],
                     per=12, spread=0.1)
        selection = select_k(data, range(2, 8), seed=8)
        assert selection.best_by_silhouette == 5

    def test_explained_variance_increases(self):
        data = blobs([(0, 0), (10, 0), (0, 10)], per=10)
        low = explained_variance(data, kmeans(data, 2, seed=9))
        high = explained_variance(data, kmeans(data, 3, seed=9))
        assert high > low
        assert 0.0 <= low <= 1.0 and 0.0 <= high <= 1.0

    def test_elbow_at_true_k(self):
        data = blobs([(0, 0), (20, 0), (0, 20)], per=15, spread=0.1)
        selection = select_k(data, range(1, 7), seed=10)
        assert selection.elbow == 3

    def test_per_feature_silhouette_finds_informative(self):
        rng = np.random.default_rng(11)
        informative = np.concatenate([rng.normal(0, 0.05, 30),
                                      rng.normal(10, 0.05, 30)])
        noise = rng.uniform(0, 1, 60)
        matrix = np.column_stack([informative, noise])
        scores = per_feature_silhouette(matrix, ("good", "bad"), k=2,
                                        seed=12)
        assert scores["good"] > scores["bad"]

    def test_per_feature_name_mismatch(self):
        with pytest.raises(ValueError):
            per_feature_silhouette(np.zeros((5, 2)), ("only-one",))


class TestPCA:
    def test_projects_to_requested_dims(self):
        data = blobs([(0, 0, 0), (5, 5, 5)])
        result = fit_pca(data, 2)
        assert result.transform(data).shape == (40, 2)

    def test_first_component_captures_main_axis(self):
        rng = np.random.default_rng(13)
        t = rng.normal(size=200)
        data = np.column_stack([t * 10.0, t * 0.1 + rng.normal(
            scale=0.01, size=200)])
        result = fit_pca(data, 2)
        assert result.explained_variance_ratio[0] > 0.99

    def test_inverse_transform_reconstructs(self):
        data = blobs([(0, 0), (3, 1)])
        result = fit_pca(data, 2)  # full rank: lossless
        reconstructed = result.inverse_transform(result.transform(data))
        assert np.allclose(reconstructed, data, atol=1e-9)

    def test_components_orthonormal(self):
        data = blobs([(0, 0, 1), (4, 2, 0), (1, 5, 3)], per=15)
        result = fit_pca(data, 3)
        gram = result.components @ result.components.T
        assert np.allclose(gram, np.eye(3), atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_pca(np.zeros((1, 3)), 1)
        with pytest.raises(ValueError):
            fit_pca(np.zeros((5, 3)), 4)

    @settings(max_examples=25)
    @given(st.integers(min_value=3, max_value=30),
           st.integers(min_value=2, max_value=5))
    def test_variance_ratio_sums_below_one(self, n, d):
        rng = np.random.default_rng(n * d)
        data = rng.normal(size=(n, d))
        result = fit_pca(data, min(2, d))
        assert result.explained_variance_ratio.sum() <= 1.0 + 1e-9
