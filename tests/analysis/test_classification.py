"""Table 6 classification rule tests on synthetic connection profiles."""

import pytest

from repro.analysis.classification import (classify_outstation,
                                           connection_profile,
                                           type_distribution,
                                           TypeDistribution)
from repro.simnet.behaviors import OutstationType


def profile(server, tokens):
    return connection_profile(server, "OX", tokens)


def classify(*profiles):
    return classify_outstation("OX", list(profiles)).outstation_type


class TestRules:
    def test_type1_primary_only(self):
        assert classify(profile("C1", ["I13", "I36", "S"] * 5)) \
            is OutstationType.PRIMARY_ONLY

    def test_type2_ideal(self):
        assert classify(
            profile("C1", ["I13", "S"] * 5),
            profile("C2", ["U16", "U32"] * 5),
        ) is OutstationType.IDEAL

    def test_type3_backup_u_only(self):
        assert classify(
            profile("C1", ["U16", "U32"] * 5),
            profile("C2", ["U16", "U32"] * 5),
        ) is OutstationType.BACKUP_U_ONLY

    def test_type4_i_to_both(self):
        assert classify(
            profile("C1", ["U1", "U2", "I100", "I13", "S"]),
            profile("C2", ["U1", "U2", "I100", "I13", "S"]),
        ) is OutstationType.I_ONLY_BOTH_SERVERS

    def test_type5_single_server_i_and_u(self):
        assert classify(
            profile("C1", ["I13", "S", "U16", "U32", "I13"]),
        ) is OutstationType.SINGLE_SERVER_I_AND_U

    def test_type6_rejected_secondary(self):
        assert classify(
            profile("C2", ["I13", "S"] * 5),
            profile("C1", ["U16", "U16", "U16"]),
        ) is OutstationType.REJECTS_SECONDARY

    def test_type7_backup_rejects(self):
        assert classify(profile("C1", ["U16"] * 6)) \
            is OutstationType.BACKUP_REJECTS

    def test_type8_switchover(self):
        assert classify(
            profile("C1", ["I13", "S"] * 10),
            profile("C2", ["U16", "U32", "U16", "U32", "U1", "U2",
                           "I100", "I13", "S"]),
        ) is OutstationType.SWITCHOVER_OBSERVED

    def test_i100_alone_is_not_measurement_traffic(self):
        # A connection carrying only the interrogation command (no data
        # replies) is not an I-measurement connection.
        result = classify(profile("C1", ["U16", "U16"]),
                          profile("C2", ["U16", "U32"] * 3))
        assert result is OutstationType.BACKUP_REJECTS


class TestProfiles:
    def test_connection_profile_fields(self):
        p = profile("C1", ["U1", "U2", "I100", "I13", "S", "U16", "U32"])
        assert p.has_i and p.has_u16 and p.has_u32
        assert p.has_startdt and p.has_interrogation
        assert p.is_switchover

    def test_reset_backup_predicate(self):
        assert profile("C1", ["U16", "U16"]).is_reset_backup
        assert not profile("C1", ["U16", "U32"]).is_reset_backup
        assert not profile("C1", ["U16", "I13"]).is_reset_backup


class TestDistribution:
    def test_rows_and_percentages(self):
        dist = TypeDistribution(counts={
            OutstationType.BACKUP_U_ONLY: 3,
            OutstationType.IDEAL: 1,
        })
        assert dist.total == 4
        assert dist.percentage(OutstationType.BACKUP_U_ONLY) == 75.0
        assert dist.most_common is OutstationType.BACKUP_U_ONLY
        assert len(dist.rows()) == 8


class TestOnSyntheticCapture:
    def test_matches_ground_truth(self, y1_capture, y1_extraction):
        """The traffic-only classifier must recover the simulator's
        ground-truth type for nearly every outstation."""
        from repro.analysis.classification import classify_all
        truth = {plan.behavior.name: plan.behavior.outstation_type
                 for plan in y1_capture.plans}
        observed = classify_all(y1_extraction)
        checked = mismatched = 0
        for name, classification in observed.items():
            if name not in truth:
                continue
            checked += 1
            expected = truth[name]
            if name == "O22":
                continue  # the test RTU is a deliberate outlier
            if classification.outstation_type is not expected:
                mismatched += 1
        assert checked >= 40
        assert mismatched <= 3, (
            f"{mismatched} of {checked} outstations misclassified")

    def test_type3_most_common(self, y1_extraction):
        from repro.analysis.classification import (classify_all,
                                                   type_distribution)
        dist = type_distribution(classify_all(y1_extraction))
        assert dist.most_common is OutstationType.BACKUP_U_ONLY
