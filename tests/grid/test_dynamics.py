"""Frequency, load and AGC closed-loop tests (Figs. 18-19 physics)."""

import random

import pytest

from repro.grid.agc import AGCController
from repro.grid.constants import NOMINAL_FREQUENCY_HZ
from repro.grid.frequency import FrequencyModel
from repro.grid.generator import Generator, GeneratorFleet
from repro.grid.load import SystemLoad
from repro.grid.simulation import (GridEventScript, GridSimulation,
                                   build_default_grid)


class TestFrequencyModel:
    def test_balanced_holds_nominal(self):
        model = FrequencyModel()
        model.step(1000.0, 1000.0, 1.0)
        assert model.frequency_hz == pytest.approx(NOMINAL_FREQUENCY_HZ)

    def test_overgeneration_raises_frequency(self):
        model = FrequencyModel()
        model.step(1100.0, 1000.0, 1.0)
        assert model.frequency_hz > NOMINAL_FREQUENCY_HZ

    def test_undergeneration_lowers_frequency(self):
        model = FrequencyModel()
        model.step(900.0, 1000.0, 1.0)
        assert model.frequency_hz < NOMINAL_FREQUENCY_HZ

    def test_damping_pulls_back(self):
        model = FrequencyModel()
        model.step(1100.0, 1000.0, 1.0)
        peak = model.deviation_hz
        for _ in range(100):
            model.step(1000.0, 1000.0, 1.0)
        assert abs(model.deviation_hz) < abs(peak)

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyModel(inertia_mw_s_per_hz=0.0)
        model = FrequencyModel()
        with pytest.raises(ValueError):
            model.step(1.0, 1.0, 0.0)


class TestSystemLoad:
    def test_base_demand(self):
        load = SystemLoad(base_mw=500.0)
        assert load.demand_at(0.0) == pytest.approx(500.0)

    def test_loss_window(self):
        load = SystemLoad(base_mw=500.0)
        load.schedule_loss(10.0, 5.0, 100.0)
        assert load.demand_at(9.0) == pytest.approx(500.0)
        assert load.demand_at(12.0) == pytest.approx(400.0)
        assert load.demand_at(15.0) == pytest.approx(500.0)

    def test_swing(self):
        load = SystemLoad(base_mw=500.0, swing_mw=50.0,
                          swing_period_s=100.0)
        quarter = load.demand_at(25.0)
        assert quarter == pytest.approx(550.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemLoad(base_mw=0.0)
        load = SystemLoad(base_mw=10.0)
        with pytest.raises(ValueError):
            load.schedule_loss(0.0, -1.0, 5.0)


class TestAGC:
    def make_system(self):
        fleet = GeneratorFleet()
        for name, capacity in (("G1", 200.0), ("G2", 100.0)):
            generator = Generator(name=name, capacity_mw=capacity,
                                  setpoint_mw=0.5 * capacity,
                                  ramp_rate_mw_per_s=capacity / 50.0)
            generator.output_mw = generator.setpoint_mw
            fleet.add(generator)
        return fleet, AGCController(generators=list(fleet))

    def test_ace_sign_convention(self):
        _, agc = self.make_system()
        assert agc.area_control_error(60.1) > 0  # over-generation
        assert agc.area_control_error(59.9) < 0

    def test_high_frequency_dispatches_down(self):
        fleet, agc = self.make_system()
        before = {g.name: g.setpoint_mw for g in fleet}
        setpoints = agc.cycle(0.0, frequency_hz=60.2)
        assert all(setpoints[name] < before[name] for name in setpoints)

    def test_participation_by_capacity(self):
        fleet, agc = self.make_system()
        before = {g.name: g.setpoint_mw for g in fleet}
        after = agc.cycle(0.0, frequency_hz=60.2)
        delta1 = before["G1"] - after["G1"]
        delta2 = before["G2"] - after["G2"]
        assert delta1 == pytest.approx(2.0 * delta2, rel=0.01)

    def test_closed_loop_restores_frequency(self):
        """AGC + swing dynamics: after a load loss the loop recovers."""
        fleet, agc = self.make_system()
        frequency = FrequencyModel(inertia_mw_s_per_hz=2000.0)
        load_mw = fleet.total_output_mw
        # Lose 8% of load for 60 s.
        for second in range(600):
            demand = load_mw - (0.08 * load_mw
                                if 100 <= second < 160 else 0.0)
            fleet.step(float(second), 1.0)
            frequency.step(fleet.total_output_mw, demand, 1.0)
            if second % 4 == 0:
                agc.cycle(float(second), frequency.frequency_hz)
        assert abs(frequency.deviation_hz) < 0.02

    def test_history_recorded(self):
        _, agc = self.make_system()
        agc.cycle(0.0, 60.0)
        agc.cycle(4.0, 60.1)
        assert len(agc.history) == 2

    def test_needs_generators(self):
        with pytest.raises(ValueError):
            AGCController(generators=[])


class TestGridSimulation:
    def test_lazy_advance(self):
        grid = build_default_grid(["G1", "G2"], rng=random.Random(1))
        assert grid.now == 0.0
        grid.advance_to(10.0)
        assert grid.now == pytest.approx(10.0)
        # Monotone: asking for the past is a no-op.
        grid.advance_to(5.0)
        assert grid.now == pytest.approx(10.0)

    def test_measurements_accessible(self):
        grid = build_default_grid(["G1"], rng=random.Random(2))
        power = grid.gen_active_power("G1", 5.0)
        assert power > 0.0
        assert grid.gen_voltage("G1", 5.0) > 100.0
        assert 59.0 < grid.system_frequency(5.0) < 61.0
        assert grid.gen_breaker("G1", 5.0) == 2

    def test_load_loss_raises_frequency(self):
        script = GridEventScript(load_losses=[(50.0, 30.0, 0.0)])
        grid = build_default_grid(["G1", "G2"], rng=random.Random(3))
        grid.load.noise_mw = 0.0
        grid.load.swing_mw = 0.0
        magnitude = 0.1 * grid.load.base_mw
        grid.load.schedule_loss(50.0, 30.0, magnitude)
        baseline = grid.system_frequency(45.0)
        during = max(grid.system_frequency(t) for t in range(55, 75))
        assert during > baseline + 0.01

    def test_scripted_sync_brings_unit_online(self):
        from repro.grid.generator import GeneratorState
        script = GridEventScript(generator_syncs=[(10.0, "G2")])
        grid = build_default_grid(["G1", "G2"], rng=random.Random(4),
                                  script=script)
        unit = grid.fleet["G2"]
        unit.trip()
        unit.state = GeneratorState.OFFLINE
        grid.load.base_mw = grid.fleet.total_output_mw
        grid.advance_to(5.0)
        assert unit.state is GeneratorState.OFFLINE
        grid.advance_to(400.0)
        assert unit.state is GeneratorState.ONLINE

    def test_setpoints_updated_by_agc(self):
        grid = build_default_grid(["G1", "G2"], rng=random.Random(5))
        grid.advance_to(30.0)
        assert set(grid.latest_setpoints) >= {"G1", "G2"}
        assert grid.setpoint_for("G1", 30.0) > 0.0
