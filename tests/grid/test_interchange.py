"""Tie-line / interchange model tests (the ACE's second term)."""

import random

import pytest

from repro.grid.agc import AGCController
from repro.grid.constants import NOMINAL_FREQUENCY_HZ
from repro.grid.generator import Generator, GeneratorFleet
from repro.grid.interchange import InterchangeModel, TieLine
from repro.grid.simulation import GridSimulation, build_default_grid
from repro.grid.load import SystemLoad


class TestTieLine:
    def test_initial_flow_matches_schedule(self):
        line = TieLine(name="north", capacity_mw=500.0,
                       scheduled_mw=100.0)
        assert line.actual_mw == 100.0
        assert line.deviation_mw == 0.0

    def test_over_frequency_increases_export(self):
        line = TieLine(name="north", capacity_mw=500.0,
                       scheduled_mw=100.0)
        for _ in range(20):
            line.update(NOMINAL_FREQUENCY_HZ + 0.1)
        assert line.actual_mw > 100.0
        assert line.deviation_mw > 0.0

    def test_under_frequency_draws_import(self):
        line = TieLine(name="north", capacity_mw=500.0)
        for _ in range(20):
            line.update(NOMINAL_FREQUENCY_HZ - 0.1)
        assert line.actual_mw < 0.0

    def test_capacity_clamps(self):
        line = TieLine(name="north", capacity_mw=50.0,
                       stiffness_mw_per_hz=10000.0)
        for _ in range(50):
            line.update(NOMINAL_FREQUENCY_HZ + 1.0)
        assert line.actual_mw <= 50.0

    def test_reschedule(self):
        line = TieLine(name="north", capacity_mw=100.0)
        line.reschedule(40.0)
        assert line.scheduled_mw == 40.0
        with pytest.raises(ValueError):
            line.reschedule(150.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TieLine(name="bad", capacity_mw=0.0)
        with pytest.raises(ValueError):
            TieLine(name="bad", capacity_mw=10.0, scheduled_mw=20.0)


class TestInterchangeModel:
    def test_net_export_sums_lines(self):
        model = InterchangeModel()
        model.add(TieLine(name="north", capacity_mw=100.0,
                          scheduled_mw=30.0))
        model.add(TieLine(name="south", capacity_mw=100.0,
                          scheduled_mw=-10.0))
        assert model.net_export_mw == pytest.approx(20.0)

    def test_duplicate_rejected(self):
        model = InterchangeModel()
        model.add(TieLine(name="north", capacity_mw=100.0))
        with pytest.raises(ValueError):
            model.add(TieLine(name="north", capacity_mw=100.0))

    def test_lookup(self):
        model = InterchangeModel()
        model.add(TieLine(name="north", capacity_mw=100.0))
        assert model["north"].capacity_mw == 100.0
        with pytest.raises(KeyError):
            model["west"]

    def test_error_follows_frequency(self):
        model = InterchangeModel()
        model.add(TieLine(name="north", capacity_mw=500.0))
        for _ in range(20):
            model.update(NOMINAL_FREQUENCY_HZ + 0.05)
        assert model.interchange_error_mw > 0.0


class TestAGCWithInterchange:
    def test_ace_includes_interchange_term(self):
        generator = Generator(name="G1", capacity_mw=100.0,
                              setpoint_mw=50.0)
        agc = AGCController(generators=[generator])
        at_nominal = agc.area_control_error(NOMINAL_FREQUENCY_HZ,
                                            interchange_error_mw=25.0)
        assert at_nominal == pytest.approx(25.0)

    def test_simulation_with_tie_lines_stays_stable(self):
        grid = build_default_grid(["G1", "G2", "G3"],
                                  rng=random.Random(8))
        interchange = InterchangeModel()
        interchange.add(TieLine(name="north", capacity_mw=300.0,
                                scheduled_mw=20.0,
                                stiffness_mw_per_hz=500.0))
        # The area must generate its exports on top of native load.
        grid.interchange = interchange
        grid.load.base_mw -= 20.0
        grid.advance_to(600.0)
        assert abs(grid.frequency.deviation_hz) < 0.05
        assert abs(interchange.interchange_error_mw) < 20.0

    def test_interchange_error_drives_dispatch(self):
        """A forced tie-line deviation must move AGC set points even at
        nominal frequency."""
        fleet = GeneratorFleet()
        generator = Generator(name="G1", capacity_mw=200.0,
                              setpoint_mw=100.0)
        generator.output_mw = 100.0
        fleet.add(generator)
        agc = AGCController(generators=[generator])
        before = generator.setpoint_mw
        agc.cycle(0.0, NOMINAL_FREQUENCY_HZ, interchange_error_mw=50.0)
        # Positive interchange error = exporting too much = back down.
        assert generator.setpoint_mw < before
