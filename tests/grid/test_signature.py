"""Fig. 21 activation-signature state machine tests."""

import random

import pytest

from repro.grid.generator import BREAKER_CLOSED, BREAKER_OPEN, Generator, \
    GeneratorState
from repro.grid.signature import (ActivationSignature, SignatureState)


def feed_normal_activation(signature):
    """Replay a textbook activation: 0 kV -> ramp -> nominal ->
    breaker closes -> power flows."""
    samples = [
        (0.0, 0.0, BREAKER_OPEN, 0.0),
        (10.0, 40.0, BREAKER_OPEN, 0.0),
        (20.0, 90.0, BREAKER_OPEN, 0.0),
        (30.0, 129.0, BREAKER_OPEN, 0.0),
        (40.0, 130.0, BREAKER_OPEN, 0.0),
        (50.0, 130.0, BREAKER_CLOSED, 0.5),
        (60.0, 130.0, BREAKER_CLOSED, 25.0),
    ]
    for sample in samples:
        signature.observe(*sample)


class TestNormalPath:
    def test_full_activation_recognized(self):
        signature = ActivationSignature()
        feed_normal_activation(signature)
        assert signature.state is SignatureState.GENERATING
        assert signature.completed_activation
        assert signature.anomalies == []

    def test_transition_order(self):
        signature = ActivationSignature()
        feed_normal_activation(signature)
        states = [event.state for event in signature.events]
        assert states == [SignatureState.VOLTAGE_RAMP,
                          SignatureState.SYNCHRONIZED,
                          SignatureState.CONNECTED,
                          SignatureState.GENERATING]

    def test_voltage_jump_straight_to_nominal(self):
        """The paper's Fig. 18 showed a 0 -> 120 kV jump between
        samples; the detector must tolerate skipping the ramp state."""
        signature = ActivationSignature()
        signature.observe(0.0, 0.0, BREAKER_OPEN, 0.0)
        event = signature.observe(10.0, 128.0, BREAKER_OPEN, 0.0)
        assert event.state is SignatureState.SYNCHRONIZED

    def test_shutdown_returns_offline(self):
        signature = ActivationSignature()
        feed_normal_activation(signature)
        event = signature.observe(100.0, 0.0, BREAKER_OPEN, 0.0)
        assert event.state is SignatureState.OFFLINE


class TestAnomalies:
    def test_power_with_breaker_open(self):
        signature = ActivationSignature()
        event = signature.observe(0.0, 130.0, BREAKER_OPEN, 50.0)
        assert event.is_anomaly
        assert "breaker open" in event.anomaly

    def test_breaker_closed_on_dead_bus(self):
        signature = ActivationSignature()
        event = signature.observe(0.0, 0.0, BREAKER_CLOSED, 0.0)
        assert event.is_anomaly

    def test_anomalies_listed(self):
        signature = ActivationSignature()
        signature.observe(0.0, 130.0, BREAKER_OPEN, 50.0)
        assert len(signature.anomalies) == 1

    def test_incomplete_activation_not_flagged_complete(self):
        signature = ActivationSignature()
        signature.observe(0.0, 60.0, BREAKER_OPEN, 0.0)
        signature.observe(1.0, 130.0, BREAKER_OPEN, 0.0)
        assert not signature.completed_activation


class TestAgainstGeneratorModel:
    def test_detector_follows_simulated_sync(self):
        """Closing the loop: the Generator model's own sync sequence
        must satisfy the signature detector (Fig. 20 -> Fig. 21)."""
        generator = Generator(name="G1", capacity_mw=100.0,
                              setpoint_mw=40.0, ramp_rate_mw_per_s=1.0,
                              state=GeneratorState.OFFLINE,
                              sync_voltage_ramp_s=60.0, sync_hold_s=30.0)
        generator.begin_synchronization(0.0)
        signature = ActivationSignature(
            nominal_voltage_kv=generator.nominal_voltage_kv)
        for second in range(1, 200):
            generator.step(float(second), 1.0)
            signature.observe(float(second), generator.voltage_kv,
                              generator.breaker, generator.output_mw)
        assert signature.completed_activation
        assert signature.anomalies == []
