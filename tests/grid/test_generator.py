"""Generator model tests: ramping and the Fig. 20 sync sequence."""

import pytest

from repro.grid.generator import (BREAKER_CLOSED, BREAKER_OPEN, Generator,
                                  GeneratorFleet, GeneratorState)


def online_gen(capacity=100.0, ramp=2.0):
    generator = Generator(name="G1", capacity_mw=capacity,
                          setpoint_mw=50.0, ramp_rate_mw_per_s=ramp)
    generator.output_mw = 50.0
    return generator


class TestRamping:
    def test_ramp_up_limited(self):
        generator = online_gen(ramp=2.0)
        generator.apply_setpoint(80.0)
        generator.step(1.0, 1.0)
        assert generator.output_mw == pytest.approx(52.0)

    def test_ramp_down_limited(self):
        generator = online_gen(ramp=2.0)
        generator.apply_setpoint(10.0)
        generator.step(1.0, 1.0)
        assert generator.output_mw == pytest.approx(48.0)

    def test_converges_to_setpoint(self):
        generator = online_gen(ramp=5.0)
        generator.apply_setpoint(60.0)
        for step in range(10):
            generator.step(float(step), 1.0)
        assert generator.output_mw == pytest.approx(60.0)

    def test_setpoint_clamped_to_capacity(self):
        generator = online_gen(capacity=100.0)
        generator.apply_setpoint(500.0)
        assert generator.setpoint_mw == 100.0
        generator.apply_setpoint(-50.0)
        assert generator.setpoint_mw == 0.0

    def test_reactive_power_can_go_negative(self):
        generator = online_gen()
        generator.apply_setpoint(0.0)
        for step in range(200):
            generator.step(float(step), 1.0)
        assert generator.reactive_mvar < 0.0


class TestSynchronization:
    def make_offline(self):
        generator = Generator(name="G1", capacity_mw=100.0,
                              ramp_rate_mw_per_s=1.0,
                              state=GeneratorState.OFFLINE,
                              sync_voltage_ramp_s=100.0, sync_hold_s=50.0)
        return generator

    def test_offline_is_dead(self):
        generator = self.make_offline()
        assert generator.voltage_kv == 0.0
        assert generator.breaker == BREAKER_OPEN
        assert generator.current_ka == 0.0

    def test_full_sequence(self):
        """Voltage ramps, then breaker closes, then power flows —
        exactly the Fig. 21 signature order."""
        generator = self.make_offline()
        generator.begin_synchronization(0.0)
        generator.apply_setpoint(40.0)

        generator.step(50.0, 1.0)
        assert generator.state is GeneratorState.VOLTAGE_RAMP
        assert 0.0 < generator.voltage_kv < generator.nominal_voltage_kv
        assert generator.breaker == BREAKER_OPEN
        assert generator.output_mw == 0.0

        generator.step(100.0, 1.0)
        assert generator.state is GeneratorState.SYNCHRONIZED
        assert generator.voltage_kv == generator.nominal_voltage_kv
        assert generator.breaker == BREAKER_OPEN

        generator.step(151.0, 1.0)
        assert generator.state is GeneratorState.ONLINE
        assert generator.breaker == BREAKER_CLOSED

        generator.step(152.0, 1.0)
        assert generator.output_mw > 0.0

    def test_begin_sync_requires_offline(self):
        generator = online_gen()
        with pytest.raises(RuntimeError):
            generator.begin_synchronization(0.0)

    def test_trip(self):
        generator = online_gen()
        generator.trip()
        assert generator.state is GeneratorState.OFFLINE
        assert generator.output_mw == 0.0
        assert generator.voltage_kv == 0.0


class TestFleet:
    def test_total_output(self):
        fleet = GeneratorFleet()
        fleet.add(online_gen())
        second = Generator(name="G2", capacity_mw=50.0, setpoint_mw=20.0)
        second.output_mw = 20.0
        fleet.add(second)
        assert fleet.total_output_mw == pytest.approx(70.0)

    def test_duplicate_rejected(self):
        fleet = GeneratorFleet()
        fleet.add(online_gen())
        with pytest.raises(ValueError):
            fleet.add(online_gen())

    def test_online_filter(self):
        fleet = GeneratorFleet()
        fleet.add(online_gen())
        offline = Generator(name="G2", capacity_mw=50.0,
                            state=GeneratorState.OFFLINE)
        fleet.add(offline)
        assert [g.name for g in fleet.online] == ["G1"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Generator(name="bad", capacity_mw=0.0)
        with pytest.raises(ValueError):
            Generator(name="bad", capacity_mw=10.0,
                      ramp_rate_mw_per_s=0.0)

    def test_current_follows_power(self):
        generator = online_gen()
        idle = Generator(name="G2", capacity_mw=100.0, setpoint_mw=0.0)
        idle.output_mw = 0.0
        idle.reactive_mvar = 0.0
        assert generator.current_ka > idle.current_ka


class TestGovernorDroop:
    def test_low_frequency_raises_output(self):
        generator = online_gen(capacity=200.0, ramp=50.0)
        generator.droop = 0.05
        response = generator.governor_response_mw(59.7)  # -0.3 Hz
        assert response > 0.0
        # 0.3/60 per-unit over 5% droop on 200 MW = 20 MW.
        assert response == pytest.approx(20.0)

    def test_high_frequency_lowers_output(self):
        generator = online_gen(capacity=200.0)
        generator.droop = 0.05
        assert generator.governor_response_mw(60.3) == pytest.approx(
            -20.0)

    def test_disabled_governor(self):
        generator = online_gen()
        generator.droop = None
        assert generator.governor_response_mw(59.0) == 0.0

    def test_offline_unit_no_response(self):
        generator = online_gen()
        generator.trip()
        assert generator.governor_response_mw(59.0) == 0.0

    def test_step_applies_governor(self):
        generator = online_gen(capacity=200.0, ramp=50.0)
        generator.droop = 0.05
        generator.apply_setpoint(generator.output_mw)
        before = generator.output_mw
        generator.step(1.0, 1.0, frequency_hz=59.7)
        assert generator.output_mw > before

    def test_governor_arrests_excursion_faster(self):
        """Primary response limits the frequency dip from a sudden
        load step versus a governor-less fleet."""
        from repro.grid.frequency import FrequencyModel

        def run(droop):
            generator = Generator(name="G", capacity_mw=400.0,
                                  setpoint_mw=200.0,
                                  ramp_rate_mw_per_s=8.0, droop=droop)
            generator.output_mw = 200.0
            frequency = FrequencyModel(inertia_mw_s_per_hz=2000.0)
            dip = 0.0
            for second in range(120):
                load = 200.0 + (30.0 if second >= 10 else 0.0)
                generator.step(float(second), 1.0,
                               frequency_hz=frequency.frequency_hz)
                frequency.step(generator.output_mw, load, 1.0)
                dip = min(dip, frequency.deviation_hz)
            return dip

        with_governor = run(0.05)
        without = run(None)
        assert with_governor > without  # smaller (less negative) dip
