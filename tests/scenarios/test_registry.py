"""The scenario registry: specs, registration, lookup."""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenarios import (ScenarioSpec, all_scenarios,
                             build_scenario, get_scenario,
                             register_scenario)
from repro.scenarios.registry import _REGISTRY

EXPECTED_FAMILIES = {
    "spoofed-interrogation", "rogue-master", "value-injection",
    "command-flooding", "switchover-abuse", "stale-data-masking"}


class TestSpecValidation:
    def spec(self, **overrides):
        base = dict(name="demo-scenario", family="demo",
                    title="demo", seed=1)
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_valid_spec(self):
        spec = self.spec()
        assert spec.learn_s > 0 and spec.attack_s > 0

    @pytest.mark.parametrize("name", ["", "Bad Name", "UPPER",
                                      "under_score", "-lead",
                                      "trail-"])
    def test_name_must_be_kebab_case(self, name):
        with pytest.raises(ValueError, match="name"):
            self.spec(name=name)

    @pytest.mark.parametrize("field", ["learn_s", "attack_delay_s",
                                       "attack_s"])
    def test_durations_must_be_positive(self, field):
        with pytest.raises(ValueError, match=field):
            self.spec(**{field: 0.0})
        with pytest.raises(ValueError, match=field):
            self.spec(**{field: -1.0})

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            self.spec().seed = 2


class TestRegistry:
    def test_builtin_corpus_is_registered(self):
        scenarios = all_scenarios()
        assert len(scenarios) >= 6
        assert {r.spec.family for r in scenarios} \
            >= EXPECTED_FAMILIES
        names = [r.spec.name for r in scenarios]
        assert names == sorted(names)

    def test_seeds_are_distinct(self):
        seeds = [r.spec.seed for r in all_scenarios()]
        assert len(seeds) == len(set(seeds))

    def test_duplicate_registration_rejected(self):
        taken = all_scenarios()[0].spec
        spec = dataclasses.replace(taken, title="impostor")
        with pytest.raises(ValueError, match="already registered"):
            @register_scenario(spec)
            def impostor(spec, scale):  # pragma: no cover
                raise AssertionError
        assert _REGISTRY[taken.name].spec.title == taken.title

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_build_scenario_runs_the_builder(self):
        run = build_scenario("command-flooding", scale=0.5)
        assert run.truth.scenario == "command-flooding"
        assert run.scale == 0.5
        assert len(run.packets) > 50
