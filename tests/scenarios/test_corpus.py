"""The built-in corpus: determinism, emission, end-to-end scoring.

The acceptance bar for the corpus is in these tests: identical seeds
produce byte-identical captures *and* sidecars, every family is
detected by the streaming detector with zero false positives at the
quick scale, and every emitted artifact round-trips from disk.
"""

from __future__ import annotations

import pytest

from repro.analysis import PacketCapture, extract_apdus
from repro.netstack.pcap import read_pcap
from repro.protocols import get_protocol
from repro.scenarios import (all_scenarios, build_scenario, dump_truth,
                             load_truth, score_corpus, score_run)

#: The corpus scale these tests run at (the CI quick mode's scale —
#: specs must stay valid down to it).
SCALE = 0.5


@pytest.fixture(scope="module")
def corpus():
    return {registered.spec.name:
            registered.build(registered.spec, SCALE)
            for registered in all_scenarios()}


class TestDeterminism:
    def test_identical_seeds_identical_artifacts(self, corpus,
                                                 tmp_path):
        """Same seed → byte-identical capture bytes and sidecar."""
        for name, first in corpus.items():
            second = build_scenario(name, scale=SCALE)
            first_paths = first.write(tmp_path / f"a-{name}.pcap")
            second_paths = second.write(tmp_path / f"b-{name}.pcap")
            for path_a, path_b in zip(first_paths, second_paths):
                assert path_a.read_bytes() == path_b.read_bytes(), \
                    f"{name}: {path_a.name} is not reproducible"

    def test_truth_text_is_stable(self, corpus):
        for name, run in corpus.items():
            again = build_scenario(name, scale=SCALE)
            assert dump_truth(run.truth) == dump_truth(again.truth)


class TestEmission:
    def test_write_emits_capture_names_and_truth(self, corpus,
                                                 tmp_path):
        run = corpus["rogue-master"]
        pcap, names, truth = run.write(tmp_path / "rm.pcap")
        assert len(read_pcap(pcap)) == len(run.packets)
        assert names.name == "rm.names.json"
        assert load_truth(truth) == run.truth

    def test_pcapng_by_extension(self, corpus, tmp_path):
        run = corpus["rogue-master"]
        pcap, _names, _truth = run.write(tmp_path / "rm.pcapng")
        assert pcap.read_bytes()[:4] == b"\x0a\x0d\x0d\x0a"

    def test_capture_decodes_through_the_analysis_path(self, corpus):
        for name, run in corpus.items():
            capture = PacketCapture(packets=list(run.packets),
                                    names=run.names)
            extraction = extract_apdus(
                capture,
                protocol=get_protocol(run.truth.protocol))
            assert extraction.events, f"{name}: no APDU events"

    def test_attack_traffic_stays_inside_labels(self, corpus):
        """Every event touching a dedicated attacker host sits at or
        after the labeled onset — the labels actually bracket the
        attack.  (Insider scenarios reuse a benign endpoint and are
        dated by their action schedule instead.)"""
        checked = 0
        for name, run in corpus.items():
            attackers = {endpoint for endpoint
                         in run.truth.attacker_endpoints
                         if endpoint == "ATTACKER"}
            if not attackers:
                continue
            checked += 1
            capture = PacketCapture(packets=list(run.packets),
                                    names=run.names)
            extraction = extract_apdus(
                capture,
                protocol=get_protocol(run.truth.protocol))
            for event in extraction.events:
                if {event.src, event.dst} & attackers:
                    assert event.time_us >= run.truth.onset_us, name
        assert checked >= 2


class TestScoring:
    def test_every_family_detected_cleanly(self, corpus):
        for name, run in corpus.items():
            result = score_run(run)
            detection = result.detection
            assert detection.recall == 1.0, (name, detection.outcomes)
            assert detection.precision == 1.0, (name,
                                                detection.outcomes)
            assert detection.true_negatives >= 1, name
            assert result.events_learned > 0, name
            assert result.events_scored > 0, name

    def test_latency_is_measured(self, corpus):
        latencies = {name: score_run(run).detection
                     .detection_latency_us
                     for name, run in corpus.items()}
        assert all(value is not None for value in latencies.values())
        # Stale-data masking is structurally the slowest catch: the
        # idle watch fires only after t2 + t3 of silence.
        assert latencies["stale-data-masking"] \
            == max(latencies.values())

    def test_score_corpus_covers_every_scenario(self):
        corpus_result = score_corpus(scale=SCALE)
        assert len(corpus_result.results) == len(all_scenarios())
        assert corpus_result.recall == 1.0
        assert corpus_result.precision == 1.0
        assert corpus_result.mean_detection_latency_us is not None
        document = corpus_result.to_json()
        assert document["corpus"]["scenarios"] \
            == len(corpus_result.results)
