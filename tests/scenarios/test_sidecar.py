"""Ground-truth sidecars: round-trips, validation, versioning."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.labels import LabeledInterval
from repro.scenarios import (GROUND_TRUTH_SCHEMA_VERSION, GroundTruth,
                             dump_truth, load_truth, truth_path)


def make_truth(**overrides):
    base = dict(
        scenario="demo-scenario", family="demo", seed=7, scale=1.0,
        detect_after_us=100_000_000,
        attacker_endpoints=("ATTACKER",),
        affected_ioas=(101, 102),
        intervals=(LabeledInterval(start_us=150_000_000,
                                   end_us=180_000_000,
                                   label="demo attack"),))
    base.update(overrides)
    return GroundTruth(**base)


class TestValidation:
    def test_valid(self):
        truth = make_truth()
        assert truth.onset_us == 150_000_000

    def test_needs_attacker_endpoints(self):
        with pytest.raises(ValueError, match="attacker endpoint"):
            make_truth(attacker_endpoints=())

    def test_needs_intervals(self):
        with pytest.raises(ValueError, match="interval"):
            make_truth(intervals=())

    def test_detect_after_must_be_positive(self):
        with pytest.raises(ValueError, match="detect_after_us"):
            make_truth(detect_after_us=0)

    def test_onset_may_not_precede_boundary(self):
        with pytest.raises(ValueError, match="onset"):
            make_truth(detect_after_us=160_000_000)

    def test_interval_end_may_not_precede_start(self):
        with pytest.raises(ValueError, match="precedes"):
            LabeledInterval(start_us=10, end_us=5)


class TestWireForm:
    def test_round_trip(self):
        truth = make_truth()
        assert GroundTruth.from_json(truth.to_json()) == truth

    def test_protocol_round_trip(self):
        truth = make_truth(protocol="modbus")
        document = truth.to_json()
        assert document["protocol"] == "modbus"
        assert GroundTruth.from_json(document).protocol == "modbus"

    def test_protocol_defaults_to_iec104_for_older_sidecars(self):
        document = make_truth().to_json()
        del document["protocol"]
        assert GroundTruth.from_json(document).protocol == "iec104"

    def test_dump_is_byte_stable(self):
        assert dump_truth(make_truth()) == dump_truth(make_truth())
        assert dump_truth(make_truth()).endswith("\n")

    def test_schema_version_is_stamped(self):
        document = make_truth().to_json()
        assert document["schema"] == GROUND_TRUTH_SCHEMA_VERSION

    def test_unsupported_schema_rejected(self):
        document = make_truth().to_json()
        document["schema"] = GROUND_TRUTH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            GroundTruth.from_json(document)

    def test_load_truth(self, tmp_path):
        path = tmp_path / "demo.truth.json"
        truth = make_truth()
        path.write_text(dump_truth(truth))
        assert load_truth(path) == truth

    def test_load_rejects_tampered_labels(self, tmp_path):
        # A sidecar whose onset was edited behind the boundary must
        # not load: the replay would train on attack traffic.
        document = make_truth().to_json()
        document["intervals"][0]["start_us"] = 1
        path = tmp_path / "demo.truth.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="onset"):
            load_truth(path)


class TestPathConvention:
    def test_truth_path(self):
        assert truth_path(Path("out/y1.pcap")) \
            == Path("out/y1.truth.json")
        assert truth_path(Path("a.pcapng")) == Path("a.truth.json")
