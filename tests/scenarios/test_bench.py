"""The detection benchmark gate: record, check, and fail loudly.

``check_mode`` is pure over documents, so the regression tests feed
doctored baselines through the exact production gate and assert it
trips — the CI job's behavior is proven here, not just exercised.
"""

from __future__ import annotations

import argparse
import copy
import io
import json

import pytest

from repro.scenarios.bench import (BENCH_SCHEMA, QUICK_SCALE,
                                   check_mode, measure_mode,
                                   run_detect_bench)


@pytest.fixture(scope="module")
def measured():
    return measure_mode(QUICK_SCALE)


def namespace(**overrides) -> argparse.Namespace:
    base = dict(out="BENCH_detect.json", quick=True, check=False,
                headroom=0.0)
    base.update(overrides)
    return argparse.Namespace(**base)


class TestCheckMode:
    def test_identical_documents_pass(self, measured):
        assert check_mode(measured, measured, "quick", 0.0) == []

    def test_recall_regression_fails(self, measured):
        doctored = copy.deepcopy(measured)
        record = doctored["results"][0]
        record["detection"]["recall"] = 0.0
        record["detection"]["true_positives"] = 0
        record["detection"]["false_negatives"] = 1
        failures = check_mode(measured, doctored, "quick", 0.0)
        assert any("recall regressed" in failure
                   for failure in failures)

    def test_precision_regression_fails(self, measured):
        doctored = copy.deepcopy(measured)
        doctored["corpus"]["precision"] = 0.5
        failures = check_mode(measured, doctored, "quick", 0.0)
        assert any("corpus: precision regressed" in failure
                   for failure in failures)

    def test_missing_scenario_fails(self, measured):
        doctored = copy.deepcopy(measured)
        dropped = doctored["results"].pop(0)
        failures = check_mode(measured, doctored, "quick", 0.0)
        assert any(dropped["name"] in failure
                   and "missing" in failure for failure in failures)

    def test_headroom_absorbs_small_drops(self, measured):
        doctored = copy.deepcopy(measured)
        name = doctored["results"][0]["name"]
        doctored["results"][0]["detection"]["recall"] -= 0.05
        assert check_mode(measured, doctored, "quick", 0.1) == []
        failures = check_mode(measured, doctored, "quick", 0.01)
        assert any(name in failure for failure in failures)


class TestRunDetectBench:
    def test_record_then_check_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_detect.json"
        out = io.StringIO()
        assert run_detect_bench(namespace(out=str(path)), out) == 0
        document = json.loads(path.read_text())
        assert document["schema"] == BENCH_SCHEMA
        assert set(document["modes"]) == {"quick"}
        section = document["modes"]["quick"]
        assert section["scale"] == QUICK_SCALE
        assert len(section["results"]) >= 6

        out = io.StringIO()
        assert run_detect_bench(
            namespace(out=str(path), check=True), out) == 0
        assert "detection gate ok" in out.getvalue()

    def test_check_fails_on_seeded_regression(self, tmp_path):
        path = tmp_path / "BENCH_detect.json"
        out = io.StringIO()
        assert run_detect_bench(namespace(out=str(path)), out) == 0
        # Doctor the committed baseline *upward* so the re-measured
        # (real) corpus reads as a regression against it.
        document = json.loads(path.read_text())
        section = document["modes"]["quick"]
        section["results"][0]["detection"]["recall"] = 2.0
        path.write_text(json.dumps(document))
        out = io.StringIO()
        assert run_detect_bench(
            namespace(out=str(path), check=True), out) == 1
        assert "recall regressed" in out.getvalue()

    def test_missing_baseline_warns_not_fails(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "nothing-here.json"
        assert run_detect_bench(
            namespace(out=str(path), check=True), out) == 0
        assert "warning" in out.getvalue()
