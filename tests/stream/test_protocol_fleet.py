"""Mixed-protocol fleets: per-link binding, demux and shard parity.

The acceptance bar for the protocol abstraction, stated as the fleet
suites state theirs: in a fleet mixing IEC 104 and Modbus/TCP links,
every demuxed per-link snapshot must be *byte-identical* to a
standalone single-pipeline run over that link's pre-split capture
bound to the same :class:`~repro.protocols.base.ProtocolSpec` — and
the sharded merge must stay field-for-field identical to the
single-process run for 1, 2 and 4 workers.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.iec104.constants import TypeID
from repro.netstack.addresses import IPv4Address, MacAddress
from repro.netstack.packet import CapturedPacket
from repro.netstack.pcap import PcapRecord, write_pcap
from repro.netstack.pcapng import write_pcapng
from repro.protocols import get_protocol
from repro.simnet.behaviors import (OutstationBehavior,
                                    OutstationType, PointConfig)
from repro.simnet.capture import CaptureTap
from repro.simnet.clock import Simulator
from repro.simnet.modbus import ModbusLink
from repro.simnet.tcpsim import SimHost
from repro.stream import (EvictionPolicy, FleetSupervisor, LinkDemux,
                          LiveFlowTable, MonitorPipelineFactory,
                          OnlineChains, OnlineCombinedDetector,
                          PcapngTailSource, PcapTailSource,
                          RollingSessionWindows,
                          ShardedFleetSupervisor, StreamPipeline,
                          render_json)

START_US = 1_000_000
HORIZON_US = START_US + 40_000_000

#: Which protocol each simulated link speaks (by fleet link name).
LINK_PROTOCOLS = {"C1-O1": "iec104", "C1-M1": "modbus"}


def _behavior() -> OutstationBehavior:
    points = [
        PointConfig(ioa=2001, type_id=TypeID.M_ME_NC_1, symbol="P",
                    source=lambda t: 100.0 + (t % 7), threshold=0.5),
        PointConfig(ioa=2002, type_id=TypeID.M_ME_NC_1, symbol="U",
                    source=lambda t: 230.0 + (t % 3), threshold=0.5),
    ]
    return OutstationBehavior(name="O1", substation="S1",
                              outstation_type=OutstationType.IDEAL,
                              points=points)


def build_mixed_capture():
    """One tap watching an IEC 104 link and a Modbus link at once."""
    from repro.simnet.agents import IEC104Link

    sim = Simulator()
    tap = CaptureTap()
    rng = random.Random(29)
    center = SimHost(name="C1", ip=IPv4Address(0x0A000001),
                     mac=MacAddress(0x020000000001))
    outstation = SimHost(name="O1", ip=IPv4Address(0x0A010001),
                         mac=MacAddress(0x020000000002))
    plant = SimHost(name="M1", ip=IPv4Address(0x0A010002),
                    mac=MacAddress(0x020000000003))
    iec = IEC104Link(sim=sim, tap=tap, rng=rng, server_host=center,
                     outstation_host=outstation,
                     behavior=_behavior(), server_name="C1")
    iec.run_until(HORIZON_US)
    iec.start_primary(START_US)
    modbus = ModbusLink(sim=sim, tap=tap, rng=rng,
                        master_host=center, outstation_host=plant,
                        master_name="C1", outstation_name="M1",
                        registers={100: lambda t: 50.0 + (t % 5),
                                   101: lambda t: 230.0,
                                   102: lambda t: 0.0})
    modbus.run_until(HORIZON_US)
    modbus.start_polling(START_US + 500_000, 100, 3)
    sim.run()
    names = {center.ip: "C1", outstation.ip: "O1", plant.ip: "M1"}
    return tap, names


def link_name(packet: CapturedPacket, names) -> str:
    src = names.get(packet.ip.src, str(packet.ip.src))
    dst = names.get(packet.ip.dst, str(packet.ip.dst))
    return "-".join(sorted((src, dst)))


@pytest.fixture(scope="module")
def mixed_fixture(tmp_path_factory):
    """(names, per-link pcap paths, merged pcapng path)."""
    root = tmp_path_factory.mktemp("mixed")
    tap, names = build_mixed_capture()
    records = [PcapRecord(time_us=packet.time_us,
                          data=packet.encode())
               for packet in tap.packets]
    split: dict[str, list[PcapRecord]] = {}
    for record in records:
        packet = CapturedPacket.decode(record.time_us, record.data)
        assert packet is not None
        split.setdefault(link_name(packet, names), []).append(record)
    assert set(split) == set(LINK_PROTOCOLS)
    sidecar = json.dumps({str(address): name
                          for address, name in names.items()})
    link_paths = {}
    for name, link_records in split.items():
        path = root / f"{name}.pcap"
        write_pcap(path, link_records)
        path.with_suffix(".names.json").write_text(sidecar)
        link_paths[name] = path
    merged = root / "mixed.pcapng"
    write_pcapng(merged, records)
    merged.with_suffix(".names.json").write_text(sidecar)
    return names, link_paths, merged


def make_pipeline(source, names, link: str,
                  protocol: str) -> StreamPipeline:
    """The monitor CLI's pipeline shape bound to one protocol."""
    return StreamPipeline(
        source, names=names,
        analyzers=[LiveFlowTable(), OnlineChains(),
                   RollingSessionWindows(),
                   OnlineCombinedDetector()],
        eviction=EvictionPolicy(), link=link,
        protocol=get_protocol(protocol))


def standalone_snapshots(names, link_paths) -> dict[str, str]:
    """Each link through its own protocol-bound pipeline."""
    rendered = {}
    for name, path in sorted(link_paths.items()):
        source = PcapTailSource(path)
        pipeline = make_pipeline(source, names, name,
                                 LINK_PROTOCOLS[name])
        pipeline.run_until_exhausted()
        source.close()
        rendered[name] = render_json(pipeline.link_snapshot())
    return rendered


def drain(target, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        moved = target.step()
        if not moved and target.exhausted:
            return
        if not moved:
            time.sleep(0.01)
    raise TimeoutError("sharded fleet did not drain in time")


def reference_snapshot(merged, names):
    """The single-process demux run the shards must match."""
    factory = MonitorPipelineFactory(names=names)
    source = PcapngTailSource(str(merged), follow=False)
    try:
        fleet = FleetSupervisor(
            demux=LinkDemux(source, names=names),
            pipeline_factory=factory)
        fleet.run_until_exhausted()
        return fleet.snapshot()
    finally:
        source.close()


class TestMixedCapture:
    def test_both_protocols_decode_events(self, mixed_fixture):
        names, link_paths, _merged = mixed_fixture
        for name, rendered in \
                standalone_snapshots(names, link_paths).items():
            snapshot = json.loads(rendered)
            assert snapshot["packets"] > 0, name
            assert snapshot["events"] > 0, name
            assert snapshot["failures"] == 0, name
            assert snapshot["protocol"] == LINK_PROTOCOLS[name], name


class TestDemuxParity:
    def test_demux_auto_detects_and_matches_standalone(
            self, mixed_fixture):
        """Port-based auto-detect binds each demuxed link, and every
        per-link snapshot is byte-identical to its standalone run."""
        names, link_paths, merged = mixed_fixture
        expected = standalone_snapshots(names, link_paths)
        factory = MonitorPipelineFactory(names=names)
        parent = PcapngTailSource(merged)
        demux = LinkDemux(parent, names=names)
        fleet = FleetSupervisor(demux=demux,
                                pipeline_factory=factory)
        fleet.run_until_exhausted()
        parent.close()
        snapshot = fleet.snapshot()
        assert {link.link for link in snapshot.links} \
            == set(expected)
        for link in snapshot.links:
            assert link.protocol == LINK_PROTOCOLS[link.link]
            assert render_json(link) == expected[link.link], link.link
        assert demux.unrouted == 0

    def test_explicit_binding_overrides_auto_detect(
            self, mixed_fixture):
        names, link_paths, merged = mixed_fixture
        factory = MonitorPipelineFactory(
            names=names,
            link_protocols=(("C1-M1", "iec104"),))
        parent = PcapngTailSource(merged)
        fleet = FleetSupervisor(
            demux=LinkDemux(parent, names=names),
            pipeline_factory=factory)
        fleet.run_until_exhausted()
        parent.close()
        by_name = {link.link: link
                   for link in fleet.snapshot().links}
        # The override wins over the port hint; the misbinding shows
        # up honestly as an event-free link, not a crash.
        assert by_name["C1-M1"].protocol == "iec104"
        assert by_name["C1-M1"].events == 0
        assert by_name["C1-O1"].protocol == "iec104"
        assert by_name["C1-O1"].events > 0


class TestShardParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_merge_matches_single_process(
            self, mixed_fixture, workers):
        """Field-for-field FleetSnapshot equality for a mixed fleet,
        merged pcapng feeding shape."""
        names, _link_paths, merged = mixed_fixture
        reference = reference_snapshot(merged, names)
        factory = MonitorPipelineFactory(names=names)
        with ShardedFleetSupervisor(
                factory, workers=workers, path=str(merged),
                names=names) as fleet:
            drain(fleet)
            fleet.flush()
            snapshot = fleet.snapshot()
        assert len(snapshot.links) == len(reference.links)
        merged_links = {link.link: link for link in snapshot.links}
        for link in reference.links:
            assert merged_links[link.link] == link, link.link
        assert render_json(snapshot) == render_json(reference)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sharded_per_link_files_with_explicit_bindings(
            self, mixed_fixture, workers):
        """Per-link pcap feeding shape with explicit @proto bindings
        (what ``--link NAME=PATH@proto`` constructs)."""
        names, link_paths, _merged = mixed_fixture
        expected = standalone_snapshots(names, link_paths)
        factory = MonitorPipelineFactory(
            names=names,
            link_protocols=tuple(LINK_PROTOCOLS.items()))
        links = tuple((name, str(path))
                      for name, path in sorted(link_paths.items()))
        with ShardedFleetSupervisor(factory, workers=workers,
                                    links=links,
                                    names=names) as fleet:
            drain(fleet)
            fleet.flush()
            snapshot = fleet.snapshot()
        assert {link.link for link in snapshot.links} \
            == set(expected)
        for link in snapshot.links:
            assert render_json(link) == expected[link.link], link.link
