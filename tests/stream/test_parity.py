"""Batch/stream parity: the streaming engine's guarantees are provable.

Each test runs the incremental analyzers over the shared Y1 capture
through a fresh :class:`StreamPipeline` (fresh parser per pass, exactly
like every ``extract_apdus`` call builds a fresh parser) and asserts
the result equals the corresponding whole-capture batch computation.
Eviction stays disabled here — it trades exactness for bounded memory
(covered by ``test_eviction``).
"""

from __future__ import annotations

import pytest

from repro.analysis import ConnectionChains, FlowAnalysis
from repro.analysis.apdu_stream import tokenize
from repro.analysis.whitelist import CombinedDetector
from repro.stream import (CaptureSource, LiveFlowTable, OnlineChains,
                          OnlineCombinedDetector, StreamAnalyzer,
                          StreamPipeline)

#: Generous reorder window (stream-time) — the synthetic captures'
#: inter-host interleave never exceeds a few seconds of disorder, and
#: order_violations == 0 is asserted to prove the window sufficed.
WINDOW_US = 60_000_000


class Recorder(StreamAnalyzer):
    """Collects every dispatched event, in delivery order."""

    name = "recorder"

    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


def run_stream(capture, analyzers):
    pipeline = StreamPipeline(CaptureSource(capture),
                              analyzers=analyzers,
                              reorder_window_us=WINDOW_US)
    pipeline.run_until_exhausted()
    assert pipeline.order_violations == 0
    return pipeline


class TestEventParity:
    @pytest.fixture(scope="class")
    def streamed(self, y1_capture):
        recorder = Recorder()
        pipeline = run_stream(y1_capture, [recorder])
        return pipeline, recorder

    def test_event_count_and_failures(self, streamed, y1_extraction):
        pipeline, recorder = streamed
        assert len(recorder.events) == len(y1_extraction.events)
        assert pipeline.failure_count == len(y1_extraction.failures)

    def test_per_connection_token_sequences(self, streamed,
                                            y1_extraction):
        _, recorder = streamed
        stream_by_conn = {}
        for event in recorder.events:
            stream_by_conn.setdefault(event.connection,
                                      []).append(event.token)
        batch_by_conn = {
            connection: tokenize(events)
            for connection, events
            in y1_extraction.by_connection().items()}
        assert stream_by_conn == batch_by_conn

    def test_event_payload_fields(self, streamed, y1_extraction):
        """Same (time, endpoints, APDU) multiset, not just tokens."""
        _, recorder = streamed
        key = (lambda e: (e.time_us, e.src, e.dst, e.token,
                          e.compliant, e.wire_bytes))
        assert (sorted(map(key, recorder.events))
                == sorted(map(key, y1_extraction.events)))


def test_flow_summary_parity(y1_capture):
    flows = LiveFlowTable()
    run_stream(y1_capture, [flows])
    batch = FlowAnalysis.from_packets("y1", y1_capture).summary()
    assert flows.summary(label="y1") == batch


def test_markov_chain_parity(y1_capture, y1_extraction):
    chains = OnlineChains()
    run_stream(y1_capture, [chains])
    batch = ConnectionChains.from_extraction(y1_extraction)
    batch_sizes = {connection: (nodes, edges)
                   for connection, nodes, edges in batch.sizes()}
    assert chains.sizes() == batch_sizes
    # Full structural parity: node order, sorted transitions, MLE
    # probabilities — for every connection, not just the counts.
    for connection, batch_chain in batch.chains.items():
        assert chains.chain(connection) == batch_chain


def test_combined_detector_parity(y1_capture, y1_extraction):
    batch = CombinedDetector().fit(y1_extraction)
    batch_alerts = batch.detect(y1_extraction)

    detector = OnlineCombinedDetector()
    run_stream(y1_capture, [detector])        # learn pass
    detector.switch_to_detect()
    run_stream(y1_capture, [detector])        # scoring pass
    stream_alerts = detector.alerts()

    # Cyber verdicts are exactly equal (connection order, every unseen
    # transition occurrence, ordered-dedup unknown tokens).
    assert ([alert.cyber for alert in stream_alerts]
            == [alert.cyber for alert in batch_alerts])
    # Physical violations agree as sets per alert: the batch checker
    # walks series point by point while the stream sees samples in
    # time order, so only the enumeration order differs.
    for stream_alert, batch_alert in zip(stream_alerts, batch_alerts):
        assert stream_alert.connection == batch_alert.connection
        assert (sorted(stream_alert.physical,
                       key=lambda v: (str(v.key), v.time))
                == sorted(batch_alert.physical,
                          key=lambda v: (str(v.key), v.time)))


def test_detector_whitelists_match_batch_fit(y1_capture,
                                             y1_extraction):
    """Learning one event at a time builds the very same whitelists."""
    batch = CombinedDetector().fit(y1_extraction)
    detector = OnlineCombinedDetector()
    run_stream(y1_capture, [detector])
    detector.switch_to_detect()
    assert (detector.cyber.learned_connections
            == batch.cyber.learned_connections)
    assert detector.cyber._transitions == batch.cyber._transitions
    assert detector.cyber._vocabulary == batch.cyber._vocabulary
    assert detector.physical._envelopes == batch.physical._envelopes
