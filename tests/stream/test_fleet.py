"""Fleet supervision: per-link parity, aggregation, demux, CLI.

The acceptance bar for the fleet layer is *byte-identical* per-link
snapshots: a link monitored as one member of a fleet — whether fed
from its own pcap or demultiplexed out of one merged pcapng — must
produce exactly the JSON its standalone single-pipeline ``repro
monitor`` run produces. The aggregate `FleetSnapshot` totals must be
the exact sums of the link totals.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.datasets import CaptureConfig, generate_capture
from repro.netstack.packet import CapturedPacket
from repro.netstack.pcap import PcapRecord, write_pcap
from repro.netstack.pcapng import write_pcapng
from repro.stream import (EvictionPolicy, FleetSnapshot,
                          FleetSupervisor, LinkDemux, LinkHealth,
                          LinkHealthPolicy, LinkSnapshot, ListSource,
                          LiveFlowTable, OnlineChains,
                          OnlineCombinedDetector, PcapngTailSource,
                          PcapTailSource, RollingSessionWindows,
                          StreamPipeline, render_json)


def link_name(packet: CapturedPacket, names) -> str:
    src = names.get(packet.ip.src, str(packet.ip.src))
    dst = names.get(packet.ip.dst, str(packet.ip.dst))
    return "-".join(sorted((src, dst)))


@pytest.fixture(scope="module")
def fleet_fixture(tmp_path_factory):
    """A capture split per link, plus the merged pcapng form.

    Returns (names, per-link pcap paths, merged pcapng path); the
    per-link split uses exactly the demux routing rule, so the two
    feeding shapes cover the same record universe.
    """
    root = tmp_path_factory.mktemp("fleet")
    capture = generate_capture(1, CaptureConfig(time_scale=0.001))
    names = capture.host_names()
    records = [PcapRecord(time_us=packet.time_us,
                          data=packet.encode())
               for packet in capture.packets]
    split: dict[str, list[PcapRecord]] = {}
    for record in records:
        packet = CapturedPacket.decode(record.time_us, record.data)
        if packet is None:
            continue
        split.setdefault(link_name(packet, names), []).append(record)
    assert len(split) >= 3, "need a >=3-link fleet for the suite"
    link_paths = {}
    sidecar = json.dumps({str(address): name
                          for address, name in names.items()})
    for name, link_records in split.items():
        path = root / f"{name}.pcap"
        write_pcap(path, link_records)
        path.with_suffix(".names.json").write_text(sidecar)
        link_paths[name] = path
    merged = root / "merged.pcapng"
    write_pcapng(merged, records)
    merged.with_suffix(".names.json").write_text(sidecar)
    return names, link_paths, merged


def make_pipeline(source, names, link: str) -> StreamPipeline:
    """The monitor CLI's pipeline shape, one fresh instance."""
    return StreamPipeline(
        source, names=names,
        analyzers=[LiveFlowTable(), OnlineChains(),
                   RollingSessionWindows(),
                   OnlineCombinedDetector()],
        eviction=EvictionPolicy(), link=link)


def standalone_snapshots(names, link_paths) -> dict[str, str]:
    """Each link through its own single pipeline -> rendered JSON."""
    rendered = {}
    for name, path in sorted(link_paths.items()):
        source = PcapTailSource(path)
        pipeline = make_pipeline(source, names, name)
        pipeline.run_until_exhausted()
        source.close()
        rendered[name] = render_json(pipeline.link_snapshot())
    return rendered


class TestFleetParity:
    def test_separate_pcaps_match_standalone_runs(self,
                                                  fleet_fixture):
        names, link_paths, _merged = fleet_fixture
        expected = standalone_snapshots(names, link_paths)
        fleet = FleetSupervisor()
        sources = []
        for name, path in sorted(link_paths.items()):
            source = PcapTailSource(path)
            sources.append(source)
            fleet.add_link(make_pipeline(source, names, name))
        fleet.run_until_exhausted()
        for source in sources:
            source.close()
        snapshot = fleet.snapshot()
        assert len(snapshot.links) == len(expected)
        for link in snapshot.links:
            assert render_json(link) == expected[link.link], link.link

    def test_demuxed_pcapng_matches_standalone_runs(self,
                                                    fleet_fixture):
        names, link_paths, merged = fleet_fixture
        expected = standalone_snapshots(names, link_paths)
        parent = PcapngTailSource(merged)
        demux = LinkDemux(parent, names=names)
        fleet = FleetSupervisor(
            demux=demux,
            pipeline_factory=lambda name, source:
                make_pipeline(source, names, name))
        fleet.run_until_exhausted()
        parent.close()
        snapshot = fleet.snapshot()
        assert {link.link for link in snapshot.links} \
            == set(expected)
        for link in snapshot.links:
            assert render_json(link) == expected[link.link], link.link
        assert demux.unrouted == 0

    def test_totals_are_sums_of_link_totals(self, fleet_fixture):
        names, link_paths, _merged = fleet_fixture
        fleet = FleetSupervisor()
        sources = []
        for name, path in sorted(link_paths.items()):
            source = PcapTailSource(path)
            sources.append(source)
            fleet.add_link(make_pipeline(source, names, name))
        fleet.run_until_exhausted()
        for source in sources:
            source.close()
        snapshot = fleet.snapshot()
        links = snapshot.links
        assert snapshot.packets == sum(l.packets for l in links) > 0
        assert snapshot.events == sum(l.events for l in links) > 0
        assert snapshot.failures == sum(l.failures for l in links)
        assert snapshot.late_items == sum(l.late_items
                                          for l in links)
        assert snapshot.order_violations == 0
        for stage, counters in snapshot.stages.items():
            assert counters.received == sum(
                l.stages[stage].received for l in links)
            assert counters.emitted == sum(
                l.stages[stage].emitted for l in links)
        # Analyzer rollup sums the integer counters.
        assert snapshot.analyzers["chains"]["connections"] == sum(
            l.analyzers["chains"]["connections"] for l in links)
        assert "largest" not in snapshot.analyzers["chains"]
        assert "mode" not in snapshot.analyzers["detector"]


def idle_pipeline(link: str, now_us: int) -> StreamPipeline:
    pipeline = StreamPipeline(ListSource([]), names={}, link=link)
    pipeline.now_us = now_us
    return pipeline


class TestHealth:
    def test_policy_thresholds_are_t3_scaled(self):
        policy = LinkHealthPolicy()
        assert policy.idle_after_us == 20_000_000  # one t3
        assert policy.dead_after_us == 60_000_000  # eviction timeout
        assert policy.classify(0) is LinkHealth.LIVE
        assert policy.classify(19_999_999) is LinkHealth.LIVE
        assert policy.classify(20_000_000) is LinkHealth.IDLE
        assert policy.classify(59_999_999) is LinkHealth.IDLE
        assert policy.classify(60_000_000) is LinkHealth.DEAD

    def test_fleet_health_lag_is_relative_to_fleet_clock(self):
        fleet = FleetSupervisor()
        fleet.add_link(idle_pipeline("fresh", 100_000_000))
        fleet.add_link(idle_pipeline("quiet", 75_000_000))
        fleet.add_link(idle_pipeline("gone", 30_000_000))
        assert fleet.now_us == 100_000_000
        assert fleet.health() == {"fresh": "live", "quiet": "idle",
                                  "gone": "dead"}
        counts = fleet.snapshot().health_counts
        assert counts == {"live": 1, "idle": 1, "dead": 1}


def link_snapshot(name: str, **overrides) -> LinkSnapshot:
    fields = dict(link=name, time_us=0, packets=0, events=0,
                  failures=0, late_items=0, order_violations=0,
                  reorder_pending=0, reassemblers=0)
    fields.update(overrides)
    return LinkSnapshot(**fields)


class TestFleetSnapshot:
    def test_top_anomalies_ranked_and_zero_free(self):
        links = (
            link_snapshot("calm"),
            link_snapshot("loud", analyzers={"detector":
                                             {"alerts": 5}}),
            link_snapshot("warm", failures=2),
            link_snapshot("soft", analyzers={"detector":
                                             {"alerts": 1}}),
        )
        snapshot = FleetSnapshot.from_links(links, now_us=0)
        assert [entry.link for entry in snapshot.top_anomalies] \
            == ["loud", "soft", "warm"]
        assert snapshot.top_anomalies[0].alerts == 5

    def test_rollup_skips_non_integer_fields(self):
        links = (
            link_snapshot("a", analyzers={"detector":
                                          {"alerts": 1,
                                           "mode": "learn",
                                           "live": True}}),
            link_snapshot("b", analyzers={"detector": {"alerts": 2}}),
        )
        snapshot = FleetSnapshot.from_links(links, now_us=0)
        assert snapshot.analyzers["detector"] == {"alerts": 3}

    def test_json_document_shape(self):
        snapshot = FleetSnapshot.from_links(
            (link_snapshot("a", packets=3, events=2),), now_us=7,
            health={"a": "live"})
        document = snapshot.to_json()
        assert document["schema"] == 2
        assert document["kind"] == "fleet"
        assert document["link_count"] == 1
        assert document["links"]["a"]["packets"] == 3
        assert document["health_counts"]["live"] == 1
        json.dumps(document)  # wire form is JSON-serializable


class TestSupervisor:
    def test_duplicate_or_nameless_links_rejected(self):
        fleet = FleetSupervisor()
        fleet.add_link(idle_pipeline("one", 0))
        with pytest.raises(ValueError, match="duplicate"):
            fleet.add_link(idle_pipeline("one", 0))
        with pytest.raises(ValueError, match="needs a name"):
            fleet.add_link(StreamPipeline(ListSource([])))
        with pytest.raises(ValueError, match="pipeline_factory"):
            FleetSupervisor(demux=LinkDemux(ListSource([])))

    def test_switch_to_detect_is_sticky_for_late_links(self):
        fleet = FleetSupervisor()
        early = StreamPipeline(ListSource([]), link="early",
                               analyzers=[OnlineCombinedDetector()])
        fleet.add_link(early)
        fleet.switch_to_detect()
        late = StreamPipeline(ListSource([]), link="late",
                              analyzers=[OnlineCombinedDetector()])
        fleet.add_link(late)
        for pipeline in (early, late):
            [detector] = pipeline.analyzers
            assert detector.snapshot()["mode"] == "detect"


class TestCli:
    def test_monitor_multi_link_json(self, fleet_fixture):
        _names, link_paths, _merged = fleet_fixture
        chosen = sorted(link_paths.items())[:3]
        argv = ["monitor", "--once", "--json"]
        for name, path in chosen:
            argv += ["--link", f"{name}={path}"]
        out = io.StringIO()
        assert main(argv, out=out) == 0
        document = json.loads(out.getvalue())
        assert document["kind"] == "fleet"
        assert sorted(document["links"]) \
            == [name for name, _path in chosen]
        assert document["packets"] == sum(
            link["packets"] for link in document["links"].values())

    def test_monitor_demux_text_dashboard(self, fleet_fixture):
        _names, link_paths, merged = fleet_fixture
        out = io.StringIO()
        assert main(["monitor", str(merged), "--demux", "--once"],
                    out=out) == 0
        text = out.getvalue()
        assert text.startswith("fleet t=")
        assert f"links={len(link_paths)}" in text
        for name in list(link_paths)[:3]:
            assert f" {name}: " in text

    def test_monitor_rejects_ambiguous_inputs(self, fleet_fixture):
        _names, link_paths, merged = fleet_fixture
        name, path = next(iter(link_paths.items()))
        with pytest.raises(SystemExit):
            main(["monitor", str(merged), "--link", f"{name}={path}",
                  "--once"])
        with pytest.raises(SystemExit):
            main(["monitor", "--demux", "--once",
                  "--link", f"{name}={path}"])
        with pytest.raises(SystemExit):
            main(["monitor", "--once"])
        with pytest.raises(SystemExit):
            main(["monitor", "--once", "--link", "bad-spec"])
