"""Incremental-decode parity: segment-at-a-time == whole-capture.

The batch pipeline reassembles each TCP direction completely and then
parses the byte stream in one call. The streaming engine must produce
the byte-identical APDU sequence while being fed one segment at a time
— including segments that arrive out of order or retransmitted.
"""

from __future__ import annotations

import random

from repro.iec104 import (IFrame, SFrame, ShortFloat, TypeID, UFrame,
                          UFunction, measurement)
from repro.iec104.codec import StreamDecoder, TolerantParser
from repro.netstack.reassembly import StreamReassembler


def apdu_stream(count: int = 24) -> bytes:
    """A realistic mixed I/S/U byte stream, deterministic."""
    frames = []
    for index in range(count):
        kind = index % 6
        if kind == 5:
            frames.append(UFrame(function=UFunction.TESTFR_ACT))
        elif kind == 3:
            frames.append(SFrame(recv_seq=index))
        else:
            asdu = measurement(TypeID.M_ME_NC_1, 3000 + index,
                               ShortFloat(value=float(index)))
            frames.append(IFrame(asdu=asdu, send_seq=index,
                                 recv_seq=index // 2))
    return b"".join(frame.encode() for frame in frames)


def segment(stream: bytes, sizes: list[int],
            base_seq: int = 1000) -> list[tuple[int, bytes]]:
    """Cut ``stream`` at the given (cycled) sizes into (seq, payload)."""
    segments = []
    offset = 0
    index = 0
    while offset < len(stream):
        size = sizes[index % len(sizes)]
        segments.append((base_seq + offset,
                         stream[offset:offset + size]))
        offset += size
        index += 1
    return segments


def decode_whole(stream: bytes) -> list[bytes]:
    """Reference: parse the fully reassembled stream in one call."""
    parser = TolerantParser()
    return [result.raw
            for result in parser.parse_stream(stream, link_key="ref")]


def decode_segments(segments: list[tuple[int, bytes]]) -> list[bytes]:
    """Feed segments one at a time through reassembler + decoder."""
    reassembler = StreamReassembler()
    reassembler.feed(999, b"", syn=True)
    decoder = StreamDecoder(parser=TolerantParser(), link_key="ref")
    raws: list[bytes] = []
    for seq, payload in segments:
        data = reassembler.feed(seq, payload)
        if data:
            raws.extend(result.raw for result in decoder.feed(data))
    return raws


class TestSegmentAtATime:
    def test_in_order_odd_boundaries(self):
        stream = apdu_stream()
        for sizes in ([1], [3], [7, 1, 2], [13], [100]):
            assert decode_segments(segment(stream, sizes)) \
                == decode_whole(stream), sizes

    def test_out_of_order_segments(self):
        stream = apdu_stream()
        segments = segment(stream, [5, 9, 2])
        # Swap every adjacent pair: worst-case local disorder.
        for i in range(0, len(segments) - 1, 2):
            segments[i], segments[i + 1] = segments[i + 1], segments[i]
        assert decode_segments(segments) == decode_whole(stream)

    def test_retransmitted_segments(self):
        stream = apdu_stream()
        segments = segment(stream, [8, 3])
        doubled = []
        for item in segments:
            doubled.append(item)
            doubled.append(item)  # every segment sent twice
        assert decode_segments(doubled) == decode_whole(stream)

    def test_shuffled_window_with_duplicates(self):
        stream = apdu_stream(count=40)
        segments = segment(stream, [4, 11, 6, 1])
        rng = random.Random(20200727)
        noisy = []
        for item in segments:
            noisy.append(item)
            if rng.random() < 0.4:
                noisy.append(item)
        for i in range(len(noisy) - 1):
            if rng.random() < 0.4:
                noisy[i], noisy[i + 1] = noisy[i + 1], noisy[i]
        assert decode_segments(noisy) == decode_whole(stream)

    def test_every_result_byte_identical_and_typed(self):
        stream = apdu_stream()
        raws = decode_segments(segment(stream, [3]))
        assert b"".join(raws) == stream
        parser = TolerantParser()
        whole = parser.parse_stream(stream, link_key="ref")
        inc_parser = TolerantParser()
        reassembler = StreamReassembler()
        decoder = StreamDecoder(parser=inc_parser, link_key="ref")
        incremental = []
        for seq, payload in segment(stream, [3]):
            data = reassembler.feed(seq, payload)
            if data:
                incremental.extend(decoder.feed(data))
        assert len(incremental) == len(whole)
        for got, want in zip(incremental, whole):
            assert got.raw == want.raw
            assert got.apdu == want.apdu
            assert got.compliant == want.compliant
