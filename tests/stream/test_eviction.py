"""Bounded memory: idle state is reclaimed, cumulative totals survive."""

from __future__ import annotations

from repro.analysis import FlowAnalysis
from repro.iec104 import IFrame, ShortFloat, TypeID, measurement
from repro.iec104.constants import ProtocolTimers
from repro.stream import (ByteChunk, CaptureSource, EvictionPolicy,
                          ListSource, LiveFlowTable, OnlineChains,
                          RollingSessionWindows, StreamPipeline,
                          T3_MULTIPLE, default_idle_timeout_us)

SECOND = 1_000_000


def chunk(time_us: int, src: str, dst: str,
          index: int = 0) -> ByteChunk:
    asdu = measurement(TypeID.M_ME_NC_1, 4000 + index,
                       ShortFloat(value=1.0))
    return ByteChunk(time_us, src, dst,
                     IFrame(asdu=asdu, send_seq=index).encode())


class TestPolicy:
    def test_default_timeout_is_t3_scaled(self):
        timers = ProtocolTimers()
        assert default_idle_timeout_us() \
            == int(timers.t3 * T3_MULTIPLE * SECOND)

    def test_policy_fills_defaults(self):
        policy = EvictionPolicy()
        assert policy.idle_timeout_us == default_idle_timeout_us()
        assert policy.sweep_every_us == policy.idle_timeout_us

    def test_horizon_and_due(self):
        policy = EvictionPolicy(idle_timeout_us=10, sweep_every_us=5)
        assert policy.horizon(100) == 90
        assert policy.due(now_us=5, last_sweep_us=0)
        assert not policy.due(now_us=4, last_sweep_us=0)


class TestIdleStateReclaimed:
    def test_idle_link_state_evicted_totals_kept(self):
        # Link A speaks early then dies; link B keeps talking long
        # enough for the sweep to notice A crossed the idle horizon.
        chunks = [chunk(1 * SECOND, "A", "x", 0),
                  chunk(2 * SECOND, "A", "x", 1)]
        chunks += [chunk((3 + i) * SECOND, "B", "x", i)
                   for i in range(12)]
        chains = OnlineChains()
        sessions = RollingSessionWindows(window_us=2 * SECOND)
        pipeline = StreamPipeline(
            ListSource(chunks), analyzers=[chains, sessions],
            reorder_window_us=0,
            eviction=EvictionPolicy(idle_timeout_us=4 * SECOND,
                                    sweep_every_us=1 * SECOND),
            batch_size=1)
        pipeline.run_until_exhausted()
        # A's chain and session window are gone; B's survive.
        assert chains.sizes().keys() == {("B", "x")}
        assert chains.evicted_count == 1
        assert sessions.evicted_count >= 1
        stats = pipeline.eviction_stats
        assert stats.sweeps > 0
        assert stats.chains_evicted == 1
        # A's stream decoder was reclaimed too (counted with the
        # per-direction reassemblers — both are transport state).
        assert stats.reassemblers_evicted >= 1

    def test_no_policy_means_no_eviction(self):
        chunks = [chunk(1 * SECOND, "A", "x"),
                  chunk(1000 * SECOND, "B", "x")]
        chains = OnlineChains()
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[chains])
        pipeline.run_until_exhausted()
        assert chains.connection_count == 2
        assert pipeline.eviction_stats.sweeps == 0


class TestBoundedMemoryOnCapture:
    def test_aggressive_eviction_shrinks_live_state(self, y1_capture):
        """The demonstration the issue asks for: under a timeout far
        below the keep-alive period, per-key state is continuously
        reclaimed — live footprint stays far below the total number of
        flows seen — while cumulative flow totals remain exact-or-over
        (a reused 4-tuple across an eviction boundary counts twice)."""
        flows = LiveFlowTable()
        chains = OnlineChains()
        pipeline = StreamPipeline(
            CaptureSource(y1_capture), analyzers=[flows, chains],
            eviction=EvictionPolicy(idle_timeout_us=2 * SECOND,
                                    sweep_every_us=2 * SECOND))
        pipeline.run_until_exhausted()
        stats = pipeline.eviction_stats
        assert stats.sweeps > 1
        assert stats.flows_evicted > 0
        assert flows.closed_count == stats.flows_evicted

        batch = FlowAnalysis.from_packets("y1", y1_capture).summary()
        batch_total = (batch.sub_second_short + batch.longer_short
                       + batch.long_lived)
        streamed = flows.summary()
        streamed_total = (streamed.sub_second_short
                          + streamed.longer_short + streamed.long_lived)
        # Nothing was lost: every batch flow is covered, possibly split
        # at eviction boundaries.
        assert streamed_total >= batch_total
        # Live state is bounded well below the total seen.
        assert flows.live_flows < streamed_total
        assert pipeline.live_reassemblers <= flows.live_flows * 2

    def test_generous_timeout_matches_batch_exactly(self, y1_capture):
        """With the timeout above the capture's largest intra-flow
        idle gap, no flow can be split, so the summary is exact. (The
        time-scaled test capture compresses keep-alive cadence, so its
        worst gap ~97 s exceeds the T3-scaled default of 60 s; real
        captures stay under t3.)"""
        flows = LiveFlowTable()
        pipeline = StreamPipeline(
            CaptureSource(y1_capture), analyzers=[flows],
            eviction=EvictionPolicy(idle_timeout_us=120 * SECOND))
        pipeline.run_until_exhausted()
        batch = FlowAnalysis.from_packets("y1", y1_capture).summary()
        assert flows.summary(label="y1") == batch


class TestSessionWindowBounds:
    def test_overflow_guard_drops_oldest(self):
        sessions = RollingSessionWindows(window_us=1000 * SECOND,
                                         max_entries_per_session=5)
        chunks = [chunk(i * SECOND, "A", "x", i) for i in range(9)]
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[sessions],
                                  reorder_window_us=0)
        pipeline.run_until_exhausted()
        assert sessions.overflow_drops == 4
        features = sessions.features(("A", "x"))
        assert features is not None
        assert features.num == 5
