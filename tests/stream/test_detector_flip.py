"""LEARN→DETECT flip edge cases on the scored replay path.

The scenario scorer (:mod:`repro.scenarios.score`) promises an
*exact* flip: every event strictly before ``detect_after_us`` is
learned, everything at or after it is scored — regardless of batch
size, reorder window or how sparse the capture is.  These tests pin
the boundary behaviors: the poll that straddles the boundary, a
boundary before any traffic (zero learning), and verdicts produced in
the same poll as the flip.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenarios import build_scenario
from repro.scenarios.score import replay_capture, score_capture
from repro.stream import OnlineCombinedDetector
from repro.stream.detector import DetectorMode


class TimeRecorder(OnlineCombinedDetector):
    """Detector that also records (mode, time_us) per event."""

    def __init__(self):
        super().__init__()
        self.learned_times = []
        self.scored_times = []

    def on_event(self, event):
        if self.mode is DetectorMode.LEARN:
            self.learned_times.append(event.time_us)
        else:
            self.scored_times.append(event.time_us)
        super().on_event(event)


@pytest.fixture(scope="module")
def run():
    return build_scenario("spoofed-interrogation", scale=0.5)


def replay_recorded(run, truth=None, batch_size=64):
    """replay_capture into an instrumented TimeRecorder."""
    recorder = TimeRecorder()
    detector = replay_capture(run.packets, run.names,
                              truth or run.truth,
                              batch_size=batch_size,
                              detector=recorder)
    assert detector is recorder
    return recorder


class TestBoundaryPoll:
    def test_flip_is_exact_at_the_boundary(self, run):
        """No event at or past the boundary is ever learned, no event
        before it is ever scored — even though the boundary falls in
        the middle of a batch."""
        recorder = replay_recorded(run)
        boundary = run.truth.detect_after_us
        assert recorder.learned_times
        assert recorder.scored_times
        assert max(recorder.learned_times) < boundary
        assert min(recorder.scored_times) >= boundary

    def test_batch_size_does_not_move_the_flip(self, run):
        """The straddling poll is gated identically whether one poll
        holds the whole capture or a single packet."""
        scores = [score_capture(run.packets, run.names, run.truth,
                                batch_size=batch)
                  for batch in (1, 64, 100_000)]
        outcomes = [[(o.connection, o.kind, o.first_alert_us)
                     for o in score.outcomes] for score in scores]
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_sparse_capture_does_not_leak_attack_into_learn(self, run):
        """The regression the gate exists for: at ~1.4 pkt/s one
        64-item batch jumps the stream clock far past the boundary,
        so clock-granularity flipping would train on the attack."""
        recorder = replay_recorded(run)
        onset = run.truth.onset_us
        assert all(time_us < onset for time_us
                   in recorder.learned_times)


class TestZeroLearningTraffic:
    def test_boundary_before_first_packet_learns_nothing(self, run):
        truth = dataclasses.replace(run.truth, detect_after_us=1)
        recorder = replay_recorded(run, truth=truth)
        assert recorder.learned_times == []
        assert recorder.events_learned == 0
        assert len(recorder.scored_times) \
            == recorder.events_scored > 0

    def test_every_connection_is_unknown_and_alerts(self, run):
        """With nothing learned, batch semantics mark every token of
        every connection unknown — recall 1.0, precision collapses."""
        truth = dataclasses.replace(run.truth, detect_after_us=1)
        score = score_capture(run.packets, run.names, truth)
        assert score.recall == 1.0
        assert score.false_positives > 0
        assert score.true_negatives == 0
        alerted = [o for o in score.outcomes if o.alerted]
        assert len(alerted) == len(score.outcomes)


class TestVerdictsInFlipPoll:
    def test_first_scored_poll_can_alert(self, run):
        """One giant batch: the flip and the first alerting verdicts
        happen within the same pipeline step."""
        detector = replay_capture(run.packets, run.names, run.truth,
                                  batch_size=1_000_000)
        first_alerts = detector.first_alert_times()
        assert first_alerts
        attacker = [connection for connection in first_alerts
                    if "ATTACKER" in str(connection)]
        assert attacker
        for connection in attacker:
            assert first_alerts[connection] \
                >= run.truth.detect_after_us

    def test_first_alert_times_are_stable(self, run):
        one = replay_capture(run.packets, run.names, run.truth)
        two = replay_capture(run.packets, run.names, run.truth)
        assert one.first_alert_times() == two.first_alert_times()
        assert one.scored_connections() == two.scored_connections()
