"""StreamPipeline unit tests: stages, counters, ordering, bounds."""

from __future__ import annotations

import pytest

from repro.iec104 import IFrame, ShortFloat, TypeID, measurement
from repro.netstack.pcap import PcapRecord
from repro.stream import (ByteChunk, ListSource, StreamAnalyzer,
                          StreamPipeline)


def frame_bytes(index: int = 0) -> bytes:
    asdu = measurement(TypeID.M_ME_NC_1, 2001 + index,
                       ShortFloat(value=50.0 + index))
    return IFrame(asdu=asdu, send_seq=index).encode()


class Recorder(StreamAnalyzer):
    name = "recorder"

    def __init__(self):
        self.events = []
        self.packets = []

    def on_event(self, event):
        self.events.append(event)

    def on_packet(self, packet):
        self.packets.append(packet)


class TestByteChunkPath:
    def test_chunks_decode_and_dispatch(self):
        chunks = [ByteChunk(1000, "C1", "O1", frame_bytes(0)),
                  ByteChunk(2000, "C1", "O1", frame_bytes(1))]
        recorder = Recorder()
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[recorder])
        pipeline.run_until_exhausted()
        assert [event.token for event in recorder.events] \
            == ["I13", "I13"]
        assert recorder.events[0].src == "C1"
        assert pipeline.counters["decode"].emitted == 2

    def test_partial_frame_buffered_across_chunks(self):
        raw = frame_bytes()
        chunks = [ByteChunk(1000, "C1", "O1", raw[:3]),
                  ByteChunk(2000, "C1", "O1", raw[3:])]
        recorder = Recorder()
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[recorder])
        pipeline.run_until_exhausted()
        assert len(recorder.events) == 1
        # The event is stamped with the completing chunk's tick.
        assert recorder.events[0].time_us == 2000

    def test_separate_links_do_not_mix(self):
        raw = frame_bytes()
        chunks = [ByteChunk(1000, "C1", "O1", raw[:3]),
                  ByteChunk(1500, "C1", "O2", raw),
                  ByteChunk(2000, "C1", "O1", raw[3:])]
        recorder = Recorder()
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[recorder])
        pipeline.run_until_exhausted()
        assert sorted(event.dst for event in recorder.events) \
            == ["O1", "O2"]


class TestFrameStage:
    def test_undecodable_record_counts_error(self):
        records = [PcapRecord(time_us=1000, data=b"\x00" * 20)]
        pipeline = StreamPipeline(ListSource(records))
        pipeline.run_until_exhausted()
        assert pipeline.counters["frame"].errors == 1
        assert pipeline.counters["frame"].emitted == 0

    def test_unknown_item_type_counts_ingest_error(self):
        pipeline = StreamPipeline(ListSource([object()]))
        pipeline.run_until_exhausted()
        assert pipeline.counters["ingest"].errors == 1


class TestOrderedDelivery:
    def test_events_delivered_in_time_order(self):
        # Arrival order 3000, 1000, 2000 — all within the window.
        chunks = [ByteChunk(3000, "C1", "O1", frame_bytes(0)),
                  ByteChunk(1000, "C1", "O1", frame_bytes(1)),
                  ByteChunk(2000, "C1", "O1", frame_bytes(2))]
        recorder = Recorder()
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[recorder],
                                  reorder_window_us=10_000)
        pipeline.run_until_exhausted()
        assert [event.time_us for event in recorder.events] \
            == [1000, 2000, 3000]
        assert pipeline.order_violations == 0
        assert pipeline.late_items == 2  # behind the stream clock

    def test_tie_release_preserves_arrival_order(self):
        chunks = [ByteChunk(1000, "C1", "O1", frame_bytes(index))
                  for index in range(3)]
        recorder = Recorder()
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[recorder])
        pipeline.run_until_exhausted()
        ioas = [event.apdu.asdu.objects[0].address
                for event in recorder.events]
        assert ioas == [2001, 2002, 2003]

    def test_event_beyond_window_counts_violation(self):
        chunks = [ByteChunk(10_000_000, "C1", "O1", frame_bytes(0)),
                  ByteChunk(20_000_000, "C1", "O1", frame_bytes(1)),
                  # Arrives 19.999 s late — past the 5 s window, after
                  # the 20 s event was already released.
                  ByteChunk(1_000, "C1", "O1", frame_bytes(2))]
        source = ListSource(chunks)
        recorder = Recorder()
        pipeline = StreamPipeline(source, analyzers=[recorder],
                                  reorder_window_us=5_000_000,
                                  batch_size=1)
        pipeline.run_until_exhausted()
        assert len(recorder.events) == 3
        assert pipeline.order_violations == 1

    def test_queue_capacity_releases_early(self):
        chunks = [ByteChunk(1000 + index, "C1", "O1",
                            frame_bytes(index)) for index in range(8)]
        recorder = Recorder()
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[recorder],
                                  queue_capacity=2,
                                  reorder_window_us=10_000_000)
        pipeline.run_until_exhausted()
        # All events delivered despite the tiny buffer; the huge
        # window alone would have held them all back.
        assert len(recorder.events) == 8
        assert [event.time_us for event in recorder.events] \
            == sorted(event.time_us for event in recorder.events)

    def test_snapshot_reports_pending_until_flush(self):
        chunks = [ByteChunk(1000, "C1", "O1", frame_bytes(0))]
        pipeline = StreamPipeline(ListSource(chunks),
                                  reorder_window_us=10_000_000)
        pipeline.step()
        assert pipeline.reorder_pending == 1
        assert pipeline.events_dispatched == 0
        pipeline.flush()
        assert pipeline.reorder_pending == 0
        assert pipeline.events_dispatched == 1


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            StreamPipeline(ListSource([]), batch_size=0)
        with pytest.raises(ValueError):
            StreamPipeline(ListSource([]), queue_capacity=0)

    def test_snapshot_shape(self):
        pipeline = StreamPipeline(ListSource([]))
        pipeline.run_until_exhausted()
        snapshot = pipeline.snapshot()
        for key in ("time_us", "packets", "events", "failures",
                    "stages", "eviction", "analyzers"):
            assert key in snapshot
        assert set(snapshot["stages"]) == {
            "ingest", "frame", "reassemble", "decode", "dispatch"}
