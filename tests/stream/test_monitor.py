"""The monitor loop and ``repro monitor`` CLI, wall-clock-free."""

from __future__ import annotations

import io
import json
import warnings

import pytest

from repro.cli import main
from repro.netstack.pcapng import PcapngWriter
from repro.stream import (LiveFlowTable, OnlineChains,
                          OnlineCombinedDetector, PcapngTailSource,
                          PcapTailSource, StreamPipeline, render_json,
                          render_text, run_monitor)


@pytest.fixture(scope="module")
def pcap_path(tmp_path_factory):
    """A tiny generated capture on disk, plus its names sidecar."""
    path = tmp_path_factory.mktemp("monitor") / "y1.pcap"
    out = io.StringIO()
    assert main(["generate", "--year", "1", "--scale", "0.001",
                 "--out", str(path)], out=out) == 0
    return path


class FakeClock:
    """Monotone clock advancing a fixed amount per reading."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def drive(pipeline, **kwargs) -> tuple[int, str]:
    out = io.StringIO()
    slept = []
    emitted = run_monitor(pipeline, out, sleep=slept.append,
                          clock=FakeClock(), **kwargs)
    return emitted, out.getvalue()


class TestRunMonitor:
    def test_once_emits_single_json_snapshot(self, pcap_path):
        source = PcapTailSource(pcap_path)
        pipeline = StreamPipeline(source,
                                  analyzers=[LiveFlowTable(),
                                             OnlineChains()])
        emitted, output = drive(pipeline, json_lines=True, once=True)
        source.close()
        assert emitted == 1
        snapshot = json.loads(output)
        assert snapshot["packets"] > 0
        assert snapshot["events"] > 0
        assert snapshot["reorder_pending"] == 0  # flushed at the end
        assert snapshot["analyzers"]["flows"]["live"] >= 0
        assert snapshot["analyzers"]["chains"]["connections"] > 0

    def test_periodic_snapshots_respect_max(self, pcap_path):
        source = PcapTailSource(pcap_path)
        pipeline = StreamPipeline(source, batch_size=8)
        emitted, output = drive(pipeline, json_lines=True,
                                interval_s=2.0, max_snapshots=2)
        source.close()
        assert emitted == 2
        assert len(output.strip().splitlines()) == 2

    def test_text_rendering(self, pcap_path):
        source = PcapTailSource(pcap_path)
        pipeline = StreamPipeline(source, analyzers=[LiveFlowTable()])
        emitted, output = drive(pipeline, once=True)
        source.close()
        assert output.startswith("t=")
        assert "packets=" in output
        assert "flows:" in output

    def test_detect_after_flips_detector(self, pcap_path):
        source = PcapTailSource(pcap_path)
        detector = OnlineCombinedDetector()
        pipeline = StreamPipeline(source, analyzers=[detector])
        emitted, output = drive(pipeline, json_lines=True, once=True,
                                detect_after_us=1)
        source.close()
        snapshot = json.loads(output)
        detectors = snapshot["analyzers"]["detector"]
        assert detectors["mode"] == "detect"
        assert detectors["events_scored"] > 0

    def test_follow_once_drains_growing_file(self, pcap_path,
                                             tmp_path):
        """tail -f semantics: bytes appended while the loop polls are
        picked up; idle_grace then ends the once-mode run."""
        data = pcap_path.read_bytes()
        growing = tmp_path / "growing.pcap"
        growing.write_bytes(data[:len(data) // 2])
        source = PcapTailSource(growing, follow=True)
        pipeline = StreamPipeline(source, analyzers=[OnlineChains()])
        appended = []

        def sleep(_seconds: float) -> None:
            # The writer catches up during the monitor's idle sleep.
            if not appended:
                with open(growing, "ab") as stream:
                    stream.write(data[len(data) // 2:])
                appended.append(True)

        out = io.StringIO()
        emitted = run_monitor(pipeline, out, json_lines=True,
                              follow=True, once=True, idle_grace=3,
                              sleep=sleep, clock=FakeClock())
        source.close()
        assert emitted == 1
        assert appended  # the loop did go idle and poll again
        snapshot = json.loads(out.getvalue())
        # Every record in the full file was seen despite the split.
        whole = PcapTailSource(pcap_path)
        count = 0
        while not whole.exhausted:
            count += len(whole.poll(512))
        whole.close()
        assert snapshot["stages"]["frame"]["received"] == count

    def test_follow_once_drains_growing_pcapng(self, pcap_path,
                                               tmp_path):
        """The pcap follow test above, with pcapng framing: a block
        split across two writes must decode once the tail grows."""
        whole = PcapTailSource(pcap_path)
        records = []
        while not whole.exhausted:
            records.extend(whole.poll(512))
        whole.close()
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        for record in records:
            writer.write_record(record)
        data = buffer.getvalue()
        growing = tmp_path / "growing.pcapng"
        # Split inside a block body, not on a boundary.
        growing.write_bytes(data[:len(data) // 2 + 3])
        source = PcapngTailSource(growing, follow=True)
        pipeline = StreamPipeline(source, analyzers=[OnlineChains()])
        appended = []

        def sleep(_seconds: float) -> None:
            if not appended:
                with open(growing, "ab") as stream:
                    stream.write(data[len(data) // 2 + 3:])
                appended.append(True)

        out = io.StringIO()
        emitted = run_monitor(pipeline, out, json_lines=True,
                              follow=True, once=True, idle_grace=3,
                              sleep=sleep, clock=FakeClock())
        source.close()
        assert emitted == 1
        assert appended
        snapshot = json.loads(out.getvalue())
        assert snapshot["stages"]["frame"]["received"] == len(records)


class TestRendering:
    def test_render_rejects_plain_dicts(self):
        # The deprecated dict shape was removed in 1.1.0.
        with pytest.raises(TypeError, match="LinkSnapshot"):
            render_json({"b": 1, "a": {"z": 2}})
        with pytest.raises(TypeError, match="LinkSnapshot"):
            render_text({"time_us": 1_500_000})

    def test_render_text_skips_nested_values(self, pcap_path):
        source = PcapTailSource(pcap_path)
        pipeline = StreamPipeline(source, analyzers=[OnlineChains()])
        pipeline.run_until_exhausted()
        source.close()
        text = render_text(pipeline.link_snapshot())
        assert text.startswith("t=")
        assert "chains: connections=" in text
        assert "largest" not in text  # nested detail stays out

    def test_typed_snapshot_renders_without_warning(self, pcap_path):
        source = PcapTailSource(pcap_path)
        pipeline = StreamPipeline(source, analyzers=[LiveFlowTable()],
                                  link="y1")
        pipeline.run_until_exhausted()
        source.close()
        snapshot = pipeline.link_snapshot()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            line = render_json(snapshot)
            text = render_text(snapshot)
        document = json.loads(line)
        assert document["schema"] == 2
        assert document["link"] == "y1"
        assert text.startswith("t=")

    def test_typed_json_matches_dict_projection(self, pcap_path):
        """``StreamPipeline.snapshot()`` (the plain-dict projection)
        and the typed render stay in lockstep."""
        source = PcapTailSource(pcap_path)
        pipeline = StreamPipeline(source, analyzers=[OnlineChains()])
        pipeline.run_until_exhausted()
        source.close()
        typed = render_json(pipeline.link_snapshot())
        projection = json.dumps(pipeline.snapshot(), sort_keys=True)
        assert typed == projection

    def test_render_rejects_other_types(self):
        with pytest.raises(TypeError):
            render_json(42)  # type: ignore[arg-type]


class TestCli:
    def test_monitor_once_json(self, pcap_path):
        out = io.StringIO()
        assert main(["monitor", str(pcap_path), "--once", "--json"],
                    out=out) == 0
        snapshot = json.loads(out.getvalue())
        assert snapshot["packets"] > 0
        assert snapshot["events"] > 0
        # The names sidecar written by `repro generate` was auto-found:
        # connections are named, not raw ip:port pairs.
        largest = snapshot["analyzers"]["chains"]["largest"]
        assert largest and ":" not in largest[0]["connection"]

    def test_monitor_text_detect_after(self, pcap_path):
        out = io.StringIO()
        assert main(["monitor", str(pcap_path), "--once",
                     "--detect-after", "0.5"], out=out) == 0
        assert "detector: mode=detect" in out.getvalue()

    def test_monitor_explicit_protocol_is_stamped(self, pcap_path):
        out = io.StringIO()
        assert main(["monitor", str(pcap_path), "--once", "--json",
                     "--protocol", "iec104"], out=out) == 0
        assert json.loads(out.getvalue())["protocol"] == "iec104"

    def test_unknown_protocol_lists_the_registry(self, pcap_path,
                                                 capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["monitor", str(pcap_path), "--once",
                  "--protocol", "dnp3"], out=io.StringIO())
        message = str(excinfo.value)
        assert "unknown protocol 'dnp3'" in message
        assert "iec104" in message and "modbus" in message

    def test_unknown_link_protocol_suffix_rejected(self, pcap_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["monitor", "--once",
                  "--link", f"L={pcap_path}@nope"],
                 out=io.StringIO())
        assert "unknown protocol 'nope'" in str(excinfo.value)

    def test_link_protocol_suffix_binds_the_link(self, pcap_path):
        out = io.StringIO()
        assert main(["monitor", "--once", "--json",
                     "--link", f"L={pcap_path}@iec104"],
                    out=out) == 0
        snapshot = json.loads(out.getvalue())
        assert snapshot["links"]["L"]["protocol"] == "iec104"
