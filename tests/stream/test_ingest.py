"""Ingest sources: pcap tailing, capture following, live taps, fan-in."""

from __future__ import annotations

import io
import struct

import pytest

from repro.netstack.pcap import (MAGIC_USEC, PcapError, PcapRecord,
                                 PcapWriter)
from repro.netstack.pcapng import (PcapngError, PcapngReader,
                                   PcapngWriter)
from repro.stream import (ByteChunk, CaptureSource, ListSource,
                          MergedSource, PcapngTailSource,
                          PcapTailSource, TransportTap)


def pcap_bytes(records: list[PcapRecord]) -> bytes:
    stream = io.BytesIO()
    writer = PcapWriter(stream)
    writer.write_all(records)
    return stream.getvalue()


def pcapng_bytes(records: list[PcapRecord]) -> bytes:
    stream = io.BytesIO()
    writer = PcapngWriter(stream)
    for record in records:
        writer.write_record(record)
    return stream.getvalue()


def records(count: int, start_us: int = 1_000_000) -> list[PcapRecord]:
    return [PcapRecord(time_us=start_us + index * 1000,
                       data=bytes([index % 251]) * 60)
            for index in range(count)]


class TestListSource:
    def test_polls_in_batches(self):
        source = ListSource(range(5))
        assert source.poll(2) == [0, 1]
        assert not source.exhausted
        assert source.poll(10) == [2, 3, 4]
        assert source.exhausted
        assert source.poll(10) == []


class TestCaptureSource:
    class GrowingCapture:
        def __init__(self):
            self.packets = []

    def test_follows_growth_then_drains(self):
        capture = self.GrowingCapture()
        source = CaptureSource(capture, finished=False)
        assert source.poll(10) == []
        assert not source.exhausted  # producer still running
        capture.packets.extend(["a", "b"])
        assert source.poll(10) == ["a", "b"]
        capture.packets.append("c")
        source.finished = True
        assert not source.exhausted  # one packet still unread
        assert source.poll(10) == ["c"]
        assert source.exhausted

    def test_host_names_absent_is_empty(self):
        source = CaptureSource(self.GrowingCapture())
        assert source.host_names() == {}


class TestPcapTailSource:
    def test_reads_complete_file(self, tmp_path):
        wanted = records(5)
        path = tmp_path / "done.pcap"
        path.write_bytes(pcap_bytes(wanted))
        source = PcapTailSource(path)
        got = []
        while not source.exhausted:
            got.extend(source.poll(2))
        source.close()
        assert [r.time_us for r in got] == [r.time_us for r in wanted]
        assert [r.data for r in got] == [r.data for r in wanted]
        assert source.records_read == 5

    def test_partial_tail_bytes_stay_buffered(self, tmp_path):
        wanted = records(3)
        data = pcap_bytes(wanted)
        path = tmp_path / "growing.pcap"
        # Write everything except the last record's final 7 bytes.
        path.write_bytes(data[:-7])
        source = PcapTailSource(path, follow=True)
        got = source.poll(10)
        assert len(got) == 2
        assert source.pending_bytes > 0
        assert not source.exhausted  # follow mode never exhausts
        # Writer catches up; the buffered partial record completes.
        with open(path, "ab") as stream:
            stream.write(data[-7:])
        assert len(source.poll(10)) == 1
        assert source.records_read == 3
        source.close()

    def test_partial_global_header_tolerated(self, tmp_path):
        data = pcap_bytes(records(1))
        path = tmp_path / "header.pcap"
        path.write_bytes(data[:10])  # half a global header
        source = PcapTailSource(path, follow=True)
        assert source.poll(10) == []
        with open(path, "ab") as stream:
            stream.write(data[10:])
        assert len(source.poll(10)) == 1
        source.close()

    def test_non_follow_exhausts_at_eof(self, tmp_path):
        path = tmp_path / "single.pcap"
        path.write_bytes(pcap_bytes(records(1)))
        source = PcapTailSource(path)
        source.poll(10)
        source.poll(10)  # sees EOF
        assert source.exhausted
        source.close()

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "garbage.pcap"
        path.write_bytes(b"\xde\xad\xbe\xef" + b"\x00" * 40)
        source = PcapTailSource(path)
        with pytest.raises(PcapError):
            source.poll(10)
        source.close()

    def test_big_endian_header(self, tmp_path):
        record = records(1)[0]
        header = struct.pack(">IHHiIII", MAGIC_USEC, 2, 4, 0, 0,
                             65535, 1)
        body = struct.pack(">IIII", record.time_us // 1_000_000,
                           record.time_us % 1_000_000,
                           len(record.data),
                           len(record.data)) + record.data
        path = tmp_path / "be.pcap"
        path.write_bytes(header + body)
        source = PcapTailSource(path)
        got = source.poll(10)
        assert len(got) == 1
        assert got[0].time_us == record.time_us
        assert got[0].data == record.data
        source.close()


class TestPcapngTailSource:
    def test_batch_stream_parity(self, tmp_path):
        """Tailing a finished pcapng yields exactly the reader's
        records (shared block parsers make this hold by construction —
        this pins the buffering layer on top)."""
        wanted = records(7)
        data = pcapng_bytes(wanted)
        path = tmp_path / "done.pcapng"
        path.write_bytes(data)
        batch = list(PcapngReader(io.BytesIO(data)))
        source = PcapngTailSource(path)
        got = []
        while not source.exhausted:
            got.extend(source.poll(3))
        source.close()
        assert [(r.time_us, r.data) for r in got] \
            == [(r.time_us, r.data) for r in batch]
        assert source.records_read == len(wanted)

    def test_partial_block_stays_buffered(self, tmp_path):
        wanted = records(3)
        data = pcapng_bytes(wanted)
        path = tmp_path / "growing.pcapng"
        # Everything except the last block's final 9 bytes.
        path.write_bytes(data[:-9])
        source = PcapngTailSource(path, follow=True)
        got = source.poll(10)
        assert len(got) == 2
        assert source.pending_bytes > 0
        assert not source.exhausted  # follow mode never exhausts
        with open(path, "ab") as stream:
            stream.write(data[-9:])
        assert len(source.poll(10)) == 1
        assert source.records_read == 3
        source.close()

    def test_growth_at_every_block_boundary(self, tmp_path):
        """Cut the file at every byte offset in turn; the buffered
        remainder must always complete to the same record stream."""
        wanted = records(2)
        data = pcapng_bytes(wanted)
        path = tmp_path / "cut.pcapng"
        for cut in range(0, len(data), 7):
            path.write_bytes(data[:cut])
            source = PcapngTailSource(path, follow=True)
            got = list(source.poll(10))
            with open(path, "ab") as stream:
                stream.write(data[cut:])
            while True:
                batch = source.poll(10)
                if not batch:
                    break
                got.extend(batch)
            source.close()
            assert [(r.time_us, r.data) for r in got] \
                == [(r.time_us, r.data) for r in wanted], cut

    def test_partial_section_header_tolerated(self, tmp_path):
        data = pcapng_bytes(records(1))
        path = tmp_path / "header.pcapng"
        path.write_bytes(data[:10])  # not even the byte-order magic
        source = PcapngTailSource(path, follow=True)
        assert source.poll(10) == []
        assert not source.exhausted
        with open(path, "ab") as stream:
            stream.write(data[10:])
        assert len(source.poll(10)) == 1
        source.close()

    def test_non_follow_exhausts_at_eof(self, tmp_path):
        path = tmp_path / "single.pcapng"
        path.write_bytes(pcapng_bytes(records(1)))
        source = PcapngTailSource(path)
        source.poll(10)
        source.poll(10)  # sees EOF
        assert source.exhausted
        source.close()

    def test_new_section_resets_endianness(self, tmp_path):
        # A little-endian section followed by a big-endian one.
        from tests.netstack.test_pcapng import epb, idb, shb
        data = (shb() + idb() + epb(ticks=1_000_000)
                + shb(">") + idb(endian=">")
                + epb(ticks=2_000_000, endian=">"))
        path = tmp_path / "sections.pcapng"
        path.write_bytes(data)
        source = PcapngTailSource(path)
        got = []
        while not source.exhausted:
            got.extend(source.poll(10))
        source.close()
        assert [r.time_us for r in got] == [1_000_000, 2_000_000]

    def test_not_pcapng_raises(self, tmp_path):
        path = tmp_path / "classic.pcap"
        path.write_bytes(pcap_bytes(records(1)))
        source = PcapngTailSource(path)
        with pytest.raises(PcapngError):
            source.poll(10)
        source.close()


class TestTransportTap:
    def test_push_assigns_monotone_ticks(self):
        tap = TransportTap(tick_step_us=10)
        tap.push("a", "b", b"one")
        tap.push("a", "b", b"two", time_us=500)
        tap.push("b", "a", b"three")
        chunks = tap.poll(10)
        assert [chunk.time_us for chunk in chunks] == [10, 500, 510]
        assert [chunk.data for chunk in chunks] \
            == [b"one", b"two", b"three"]

    def test_tap_interposes_and_preserves_receiver(self):
        seen = []

        class FakeTransport:
            receiver = None

        transport = FakeTransport()
        transport.receiver = seen.append
        tap = TransportTap()
        tap.tap(transport, src="C1", dst="O1")
        transport.receiver(b"\x68\x04")
        assert seen == [b"\x68\x04"]  # original callback still runs
        chunks = tap.poll(10)
        assert len(chunks) == 1
        assert (chunks[0].src, chunks[0].dst) == ("C1", "O1")

    def test_exhausted_only_when_finished_and_empty(self):
        tap = TransportTap()
        tap.push("a", "b", b"x")
        assert not tap.exhausted
        tap.finished = True
        assert not tap.exhausted
        tap.poll(10)
        assert tap.exhausted


class TestMergedSource:
    def chunk(self, time_us: int, tag: str) -> ByteChunk:
        return ByteChunk(time_us, tag, "x", b"")

    def test_merges_by_time(self):
        left = ListSource([self.chunk(10, "L"), self.chunk(30, "L")])
        right = ListSource([self.chunk(20, "R"), self.chunk(40, "R")])
        merged = MergedSource([left, right])
        out = []
        while not merged.exhausted:
            out.extend(merged.poll(10))
        assert [(item.time_us, item.src) for item in out] \
            == [(10, "L"), (20, "R"), (30, "L"), (40, "R")]

    def test_holds_back_when_a_source_is_starved(self):
        tap = TransportTap()  # live source, nothing buffered yet
        done = ListSource([self.chunk(10, "L")])
        merged = MergedSource([done, tap])
        # The tap might later yield time_us < 10, so nothing moves.
        assert merged.poll(10) == []
        tap.push("R", "x", b"", time_us=5)
        tap.finished = True
        out = merged.poll(10)
        assert [item.time_us for item in out] == [5, 10]
        assert merged.exhausted
