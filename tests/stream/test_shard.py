"""Sharded fleet: single-process parity, wire contract, CLI.

The acceptance bar mirrors the fleet suite's, one level up: a
:class:`ShardedFleetSupervisor` spread over N worker processes must
produce a ``FleetSnapshot`` *field-for-field identical* to the
single-process ``FleetSupervisor`` run over the same capture — for
every worker count, and over both feeding shapes (one merged demuxed
pcapng, per-link pcap files).
"""

from __future__ import annotations

import io
import json
import os
import pickle
import time

import pytest

from repro.cli import main
from repro.datasets import CaptureConfig, generate_capture
from repro.netstack.packet import CapturedPacket
from repro.netstack.pcap import PcapRecord, write_pcap
from repro.netstack.pcapng import write_pcapng
from repro.stream import (FleetSnapshot, FleetSupervisor, LinkDemux,
                          LinkHealthPolicy, LinkSnapshot, ListSource,
                          MonitorPipelineFactory, PcapngTailSource,
                          PcapTailSource, ShardAccept,
                          ShardedFleetSupervisor, StageCounters,
                          WorkerConfig, render_json, shard_of)


def link_name(packet: CapturedPacket, names) -> str:
    src = names.get(packet.ip.src, str(packet.ip.src))
    dst = names.get(packet.ip.dst, str(packet.ip.dst))
    return "-".join(sorted((src, dst)))


@pytest.fixture(scope="module")
def shard_fixture(tmp_path_factory):
    """(names, per-link pcap paths, merged pcapng path)."""
    root = tmp_path_factory.mktemp("shard")
    capture = generate_capture(1, CaptureConfig(time_scale=0.001))
    names = capture.host_names()
    records = [PcapRecord(time_us=packet.time_us,
                          data=packet.encode())
               for packet in capture.packets]
    split: dict[str, list[PcapRecord]] = {}
    for record in records:
        packet = CapturedPacket.decode(record.time_us, record.data)
        if packet is None:
            continue
        split.setdefault(link_name(packet, names), []).append(record)
    assert len(split) >= 3, "need a >=3-link fleet for the suite"
    link_paths = {}
    sidecar = json.dumps({str(address): name
                          for address, name in names.items()})
    for name, link_records in split.items():
        path = root / f"{name}.pcap"
        write_pcap(path, link_records)
        link_paths[name] = path
    merged = root / "merged.pcapng"
    write_pcapng(merged, records)
    merged.with_suffix(".names.json").write_text(sidecar)
    return names, link_paths, merged


def drain(target, timeout_s: float = 60.0) -> None:
    """Drive a sharded supervisor until every worker is exhausted."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        moved = target.step()
        if not moved and target.exhausted:
            return
        if not moved:
            time.sleep(0.01)
    raise TimeoutError("sharded fleet did not drain in time")


def reference_snapshot(merged, names):
    """The single-process demux fleet run the shards must match."""
    factory = MonitorPipelineFactory(names=names)
    source = PcapngTailSource(str(merged), follow=False)
    try:
        fleet = FleetSupervisor(
            demux=LinkDemux(source, names=names),
            pipeline_factory=factory)
        fleet.run_until_exhausted()
        return fleet.snapshot()
    finally:
        source.close()


# -- partitioning ----------------------------------------------------

class TestShardOf:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for name in ("C1-O12", "C2-O3", "10.0.0.1-10.0.0.2"):
                first = shard_of(name, shards)
                assert first == shard_of(name, shards)
                assert 0 <= first < shards

    def test_single_shard_owns_everything(self):
        assert shard_of("anything", 1) == 0

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            shard_of("x", 0)

    def test_accept_matches_shard_of_and_partitions(self):
        names = [f"C{i}-O{j}" for i in range(3) for j in range(9)]
        accepts = [ShardAccept(shard, 4) for shard in range(4)]
        for name in names:
            owners = [a for a in accepts if a(name)]
            assert len(owners) == 1
            assert owners[0].shard == shard_of(name, 4)

    def test_accept_validates_and_pickles(self):
        with pytest.raises(ValueError, match="outside"):
            ShardAccept(4, 4)
        accept = ShardAccept(1, 3)
        clone = pickle.loads(pickle.dumps(accept))
        assert clone == accept
        assert clone("C1-O12") == accept("C1-O12")


# -- the wire contract -----------------------------------------------

class TestSnapshotWire:
    def test_stage_counters_round_trip(self):
        counters = StageCounters(received=5, emitted=4, filtered=1,
                                 errors=2, dropped=3)
        assert StageCounters.from_dict(counters.as_dict()) == counters

    def test_link_snapshot_round_trips_through_json(self):
        snapshot = LinkSnapshot(
            link="C1-O12", time_us=1_000_000, packets=9, events=7,
            failures=1, late_items=0, order_violations=2,
            reorder_pending=0, reassemblers=0,
            stages={"ingest": StageCounters(received=9, emitted=9)},
            eviction={"sweeps": 1},
            analyzers={"detector": {"alerts": 3, "mode": "detect"}})
        wire = json.loads(json.dumps(snapshot.to_json()))
        assert LinkSnapshot.from_json(wire) == snapshot

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            LinkSnapshot.from_json({"schema": 99, "link": "x"})


class TestForwardCompat:
    """The parent must read documents from slightly newer (or
    leaner) writers of any readable schema (1 and 2): unknown extra
    keys are ignored, missing optional sections default (a schema-1
    document's missing ``protocol`` reads as ``"iec104"``), and only
    an unreadable schema version is a hard error with a clear
    message."""

    BASE = {
        "schema": 1, "link": "C1-O12", "time_us": 1_000_000,
        "packets": 9, "events": 7, "failures": 1, "late_items": 0,
        "order_violations": 2, "reorder_pending": 0,
        "reassemblers": 0,
    }

    def test_unknown_extra_keys_ignored(self):
        document = dict(self.BASE)
        document["some_future_counter"] = 123
        document["nested_future"] = {"a": 1}
        snapshot = LinkSnapshot.from_json(document)
        assert snapshot == LinkSnapshot.from_json(dict(self.BASE))
        assert not hasattr(snapshot, "some_future_counter")

    def test_missing_optional_sections_default_empty(self):
        snapshot = LinkSnapshot.from_json(dict(self.BASE))
        assert snapshot.stages == {}
        assert snapshot.eviction == {}
        assert snapshot.analyzers == {}
        assert snapshot.alerts == 0

    def test_stage_counters_unknown_keys_ignored(self):
        counters = StageCounters.from_dict(
            {"received": 4, "emitted": 3, "future_field": 99})
        assert counters == StageCounters(received=4, emitted=3)

    def test_stage_counters_missing_keys_default_zero(self):
        assert StageCounters.from_dict({}) == StageCounters()
        assert StageCounters.from_dict(
            {"dropped": 2}) == StageCounters(dropped=2)

    def test_stage_entries_with_future_keys_round_trip(self):
        document = dict(self.BASE)
        document["stages"] = {"ingest": {"received": 5, "emitted": 5,
                                         "retries": 1}}
        snapshot = LinkSnapshot.from_json(document)
        assert snapshot.stages["ingest"] == StageCounters(received=5,
                                                          emitted=5)

    @pytest.mark.parametrize("schema", [None, 0, 3, "2"])
    def test_schema_mismatch_is_a_clear_error(self, schema):
        document = dict(self.BASE)
        if schema is None:
            del document["schema"]
        else:
            document["schema"] = schema
        with pytest.raises(ValueError,
                           match=r"unsupported snapshot schema"):
            LinkSnapshot.from_json(document)


# -- demux shard filtering -------------------------------------------

class TestDemuxAccept:
    def test_foreign_is_counted_separately_from_unrouted(self):
        capture = generate_capture(1, CaptureConfig(time_scale=0.001))
        names = capture.host_names()
        records = [PcapRecord(time_us=p.time_us, data=p.encode())
                   for p in capture.packets]
        full = LinkDemux(ListSource(records), names=names)
        while full.pump():
            pass
        shards = []
        for shard in range(2):
            demux = LinkDemux(ListSource(records), names=names,
                              accept=ShardAccept(shard, 2))
            while demux.pump():
                pass
            shards.append(demux)
        assert sorted(shards[0].link_names + shards[1].link_names) \
            == full.link_names
        for demux in shards:
            # Every shard scans the same file: identical unrouted,
            # and foreign accounts for exactly the other shard's
            # routed frames.
            assert demux.unrouted == full.unrouted
        assert shards[0].foreign == shards[1].routed
        assert shards[1].foreign == shards[0].routed
        assert full.foreign == 0


# -- parity ----------------------------------------------------------

class TestParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_demux_equals_single_process(self, shard_fixture,
                                                 workers):
        names, _link_paths, merged = shard_fixture
        reference = reference_snapshot(merged, names)
        factory = MonitorPipelineFactory(names=names)
        with ShardedFleetSupervisor(factory, workers=workers,
                                    path=str(merged),
                                    names=names) as sharded:
            drain(sharded)
            sharded.flush()
            snapshot = sharded.snapshot()
        assert snapshot == reference
        assert render_json(snapshot) == render_json(reference)

    def test_sharded_link_fleet_equals_single_process(
            self, shard_fixture):
        names, link_paths, _merged = shard_fixture
        specs = [(name, str(path))
                 for name, path in sorted(link_paths.items())]
        factory = MonitorPipelineFactory(names=names)
        fleet = FleetSupervisor()
        sources = []
        try:
            for name, path in specs:
                source = PcapTailSource(path, follow=False)
                sources.append(source)
                fleet.add_link(factory(name, source), name=name)
            fleet.run_until_exhausted()
            reference = fleet.snapshot()
        finally:
            for source in sources:
                source.close()
        with ShardedFleetSupervisor(factory, workers=3, links=specs,
                                    names=names) as sharded:
            drain(sharded)
            sharded.flush()
            snapshot = sharded.snapshot()
        assert snapshot == reference

    def test_link_count_and_clock_track_workers(self, shard_fixture):
        names, _link_paths, merged = shard_fixture
        reference = reference_snapshot(merged, names)
        factory = MonitorPipelineFactory(names=names)
        with ShardedFleetSupervisor(factory, workers=2,
                                    path=str(merged),
                                    names=names) as sharded:
            drain(sharded)
            assert sharded.link_count == len(reference.links)
            assert sharded.now_us == reference.time_us
            assert sharded.links == [link.link
                                     for link in reference.links]


# -- the unrouted merge beyond the shared-file shape -----------------

class TestUnroutedMerge:
    """Parent-side ``unrouted`` merge vs single-process, all shapes.

    The parent merges worker ``unrouted`` counts with *max*, which is
    only obviously right when every worker scans the same file. These
    tests pin the merge against the other feeding shapes: workers
    whose demuxes saw **disjoint** partition files, and the per-link
    fleet (disjoint files, no demux at all) — each must still match a
    single-process run over the union.
    """

    @staticmethod
    def _records_with_junk():
        """A capture's records with undecodable frames interleaved.

        The junk frames (not IPv4/TCP) route to no link and count as
        ``unrouted``; their clocks sit inside the capture's span so
        they cannot perturb any fleet clock.
        """
        capture = generate_capture(1, CaptureConfig(time_scale=0.001))
        names = capture.host_names()
        records = [PcapRecord(time_us=packet.time_us,
                              data=packet.encode())
                   for packet in capture.packets]
        step = max(1, len(records) // 6)
        merged: list[PcapRecord] = []
        junk = 0
        for index, record in enumerate(records):
            merged.append(record)
            if index % step == step - 1 and index < len(records) - 1:
                merged.append(PcapRecord(time_us=record.time_us,
                                         data=b"\x00" * 40))
                junk += 1
        assert junk >= 3
        return names, merged, junk

    def test_shared_file_parity_with_unrouted_frames(self, tmp_path):
        names, records, junk = self._records_with_junk()
        merged = tmp_path / "junky.pcapng"
        write_pcapng(merged, records)
        reference = reference_snapshot(merged, names)
        assert reference.unrouted == junk
        factory = MonitorPipelineFactory(names=names)
        with ShardedFleetSupervisor(factory, workers=2,
                                    path=str(merged),
                                    names=names) as sharded:
            drain(sharded)
            sharded.flush()
            snapshot = sharded.snapshot()
        assert snapshot.unrouted == reference.unrouted == junk
        assert snapshot == reference

    def test_disjoint_partition_files_match_single_process(
            self, tmp_path):
        """Worker demuxes over *disjoint* files still merge right.

        The partition mirrors what a disjoint split has to do: routed
        frames go to the shard owning their link, frames that route
        nowhere all land in partition 0 (there is no link name to
        hash). The max-merge then equals the single-process count
        because exactly one worker sees every unrouted frame.
        """
        names, records, junk = self._records_with_junk()
        merged = tmp_path / "merged.pcapng"
        write_pcapng(merged, records)
        reference = reference_snapshot(merged, names)

        shards = 2
        parts: list[list[PcapRecord]] = [[] for _ in range(shards)]
        for record in records:
            packet = CapturedPacket.decode(record.time_us,
                                           record.data)
            if packet is None:
                parts[0].append(record)  # nothing to hash: shard 0
            else:
                parts[shard_of(link_name(packet, names),
                               shards)].append(record)
        assert all(part for part in parts)

        factory = MonitorPipelineFactory(names=names)
        reports = []
        for shard, part in enumerate(parts):
            path = tmp_path / f"part{shard}.pcap"
            write_pcap(path, part)
            source = PcapTailSource(path, follow=False)
            try:
                demux = LinkDemux(source, names=names)
                fleet = FleetSupervisor(demux=demux,
                                        pipeline_factory=factory)
                fleet.run_until_exhausted()
                reports.append((fleet.link_snapshots(),
                                fleet.now_us, demux.unrouted))
            finally:
                source.close()

        links = tuple(sorted(
            (snapshot for report in reports for snapshot in report[0]),
            key=lambda snapshot: snapshot.link))
        now = max(report[1] for report in reports)
        unrouted = max(report[2] for report in reports)
        assert [report[2] for report in reports] == [junk, 0]
        policy = LinkHealthPolicy()
        health = {snapshot.link:
                  policy.classify(now - snapshot.time_us).value
                  for snapshot in links}
        snapshot = FleetSnapshot.from_links(links, now_us=now,
                                            health=health,
                                            unrouted=unrouted)
        assert snapshot.unrouted == reference.unrouted == junk
        assert snapshot == reference

    def test_disjoint_link_files_unrouted_is_zero(self,
                                                  shard_fixture):
        names, link_paths, _merged = shard_fixture
        specs = [(name, str(path))
                 for name, path in sorted(link_paths.items())]
        factory = MonitorPipelineFactory(names=names)
        with ShardedFleetSupervisor(factory, workers=3, links=specs,
                                    names=names) as sharded:
            drain(sharded)
            sharded.flush()
            snapshot = sharded.snapshot()
        # No demux anywhere in this shape: the max over all-zero
        # worker reports is zero, same as a single-process per-link
        # fleet over the same files.
        assert snapshot.unrouted == 0


# -- construction-time validation ------------------------------------

class TestValidation:
    def test_lambda_factory_rejected_eagerly(self):
        with pytest.raises(ValueError, match="picklable"):
            ShardedFleetSupervisor(lambda link, source: None,
                                   workers=2, path="whatever.pcap")

    def test_worker_count_validated(self):
        factory = MonitorPipelineFactory()
        with pytest.raises(ValueError, match=">= 1"):
            ShardedFleetSupervisor(factory, workers=0, path="x.pcap")

    def test_worker_config_needs_exactly_one_feed(self):
        factory = MonitorPipelineFactory()
        with pytest.raises(ValueError, match="exactly one"):
            WorkerConfig(shard=0, shards=1, factory=factory)
        with pytest.raises(ValueError, match="exactly one"):
            WorkerConfig(shard=0, shards=1, factory=factory,
                         path="x.pcap", links=(("a", "a.pcap"),))
        with pytest.raises(ValueError, match="outside"):
            WorkerConfig(shard=2, shards=2, factory=factory,
                         path="x.pcap")

    def test_worker_config_pickles(self):
        config = WorkerConfig(shard=1, shards=4,
                              factory=MonitorPipelineFactory(),
                              path="x.pcap", follow=True,
                              detect_after_us=5_000_000)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config


# -- CLI -------------------------------------------------------------

class TestCli:
    def test_workers_output_identical_to_in_process(
            self, shard_fixture):
        _names, _link_paths, merged = shard_fixture
        single = io.StringIO()
        assert main(["monitor", str(merged), "--demux", "--once",
                     "--json"], out=single) == 0
        sharded = io.StringIO()
        assert main(["monitor", str(merged), "--demux", "--once",
                     "--json", "--workers", "2"], out=sharded) == 0
        assert sharded.getvalue() == single.getvalue()

    def test_workers_with_link_fleet(self, shard_fixture):
        _names, link_paths, _merged = shard_fixture
        argv = ["monitor", "--once", "--json"]
        for name, path in sorted(link_paths.items()):
            argv += ["--link", f"{name}={path}"]
        single = io.StringIO()
        assert main(argv, out=single) == 0
        sharded = io.StringIO()
        assert main(argv + ["--workers", "2"], out=sharded) == 0
        assert sharded.getvalue() == single.getvalue()

    def test_workers_needs_a_fleet(self, shard_fixture):
        _names, _link_paths, merged = shard_fixture
        with pytest.raises(SystemExit, match="nothing to shard"):
            main(["monitor", str(merged), "--once",
                  "--workers", "2"])

    def test_workers_rejects_negative(self, shard_fixture):
        _names, _link_paths, merged = shard_fixture
        with pytest.raises(SystemExit, match=">= 0"):
            main(["monitor", str(merged), "--demux", "--once",
                  "--workers", "-2"])

    def test_workers_rejects_non_seekable_capture(self, tmp_path):
        fifo = tmp_path / "stream.pcap"
        os.mkfifo(fifo)
        with pytest.raises(SystemExit, match="regular"):
            main(["monitor", str(fifo), "--demux", "--once",
                  "--follow", "--workers", "2"])
