"""File transfer service tests (typeIDs 120-127)."""

import pytest

from repro.iec104.endpoint import connect_pair
from repro.iec104.errors import IEC104Error
from repro.iec104.file_transfer import (FileClient, FileServer,
                                        ReceivedFile, StoredFile,
                                        TransferState, file_checksum)
from repro.iec104.time_tag import CP56Time2a


def build(files=()):
    master, outstation, pump = connect_pair()
    server = FileServer(outstation)
    for stored in files:
        server.add_file(stored)
    client = FileClient(master)
    master.start_data_transfer()
    pump()
    return master, client, server, pump


DISTURBANCE = StoredFile(name=7, data=b"COMTRADE" * 120,
                         created=CP56Time2a(minute=30, hour=2,
                                            day_of_month=14, month=3,
                                            year=20))


class TestDirectory:
    def test_lists_files(self):
        second = StoredFile(name=9, data=b"eventlog")
        _, client, _, pump = build([DISTURBANCE, second])
        client.request_directory()
        pump()
        assert [entry.file_name for entry in client.directory] == [7, 9]
        assert client.directory[0].file_length == len(DISTURBANCE.data)
        assert client.directory[0].time.day_of_month == 14

    def test_empty_directory(self):
        _, client, _, pump = build([])
        client.request_directory()
        pump()
        assert client.directory == []


class TestRetrieval:
    def test_full_transfer(self):
        _, client, _, pump = build([DISTURBANCE])
        client.request_file(7)
        pump()
        assert client.state is TransferState.COMPLETE
        received = client.received[0]
        assert received.name == 7
        assert received.data == DISTURBANCE.data
        assert received.checksum_ok

    def test_multi_segment_file(self):
        big = StoredFile(name=3, data=bytes(range(256)) * 6)  # 1536 B
        _, client, _, pump = build([big])
        client.request_file(3)
        pump()
        assert client.received[0].data == big.data

    def test_single_small_file(self):
        tiny = StoredFile(name=2, data=b"x")
        _, client, _, pump = build([tiny])
        client.request_file(2)
        pump()
        assert client.received[0].data == b"x"

    def test_unknown_file_fails(self):
        _, client, _, pump = build([DISTURBANCE])
        client.request_file(99)
        pump()
        assert client.state is TransferState.FAILED
        assert client.received == []

    def test_sequential_transfers(self):
        second = StoredFile(name=9, data=b"second file")
        _, client, _, pump = build([DISTURBANCE, second])
        client.request_file(7)
        pump()
        client.request_file(9)
        pump()
        assert [r.name for r in client.received] == [7, 9]
        assert client.received[1].data == b"second file"

    def test_concurrent_request_rejected(self):
        _, client, _, pump = build([DISTURBANCE])
        client.request_file(7)  # not pumped: still in flight
        with pytest.raises(IEC104Error):
            client.request_file(7)

    def test_requires_startdt(self):
        master, outstation, pump = connect_pair()
        FileServer(outstation).add_file(DISTURBANCE)
        client = FileClient(master)
        with pytest.raises(IEC104Error):
            client.request_directory()


class TestServer:
    def test_file_management(self):
        _, _, server, _ = build([DISTURBANCE])
        assert server.file_count == 1
        server.remove_file(7)
        assert server.file_count == 0

    def test_measurements_still_flow(self):
        """The file service must not swallow ordinary reporting."""
        from repro.iec104.constants import TypeID
        from repro.iec104.information_elements import ShortFloat
        master, client, server, pump = build([DISTURBANCE])
        server.outstation.define_point(2001, TypeID.M_ME_NC_1,
                                       ShortFloat(value=1.0))
        server.outstation.update_point(2001, ShortFloat(value=2.0))
        pump()
        assert master.measurements[-1].element.value \
            == pytest.approx(2.0)

    def test_commands_still_reach_handler(self):
        from repro.iec104.constants import TypeID
        from repro.iec104.information_elements import SetpointFloat
        commands = []
        master, client, server, pump = build([DISTURBANCE])
        # FileServer wraps on_command; a later handler must still fire.
        inner = server.outstation.on_command

        def outer(asdu):
            commands.append(asdu)
        # Register the application handler beneath the file dispatcher.
        server.outstation.on_command = lambda asdu: (
            inner(asdu), outer(asdu))[1] if False else (
            inner(asdu) or outer(asdu))
        master.send_command(TypeID.C_SE_NC_1, 100,
                            SetpointFloat(value=5.0))
        pump()
        assert len(commands) == 1


class TestChecksum:
    def test_modulo_256(self):
        assert file_checksum(b"\xff\x02") == 1
        assert file_checksum(b"") == 0

    @pytest.mark.parametrize("payload", [b"abc", bytes(range(256)),
                                         b"\x00" * 1000])
    def test_matches_transfer(self, payload):
        stored = StoredFile(name=4, data=payload)
        _, client, _, pump = build([stored])
        client.request_file(4)
        pump()
        assert client.received[0].checksum_ok


class TestValidation:
    def test_file_name_range(self):
        with pytest.raises(ValueError):
            StoredFile(name=0, data=b"x")
        with pytest.raises(ValueError):
            StoredFile(name=1 << 16, data=b"x")
