"""Select-before-operate and counter interrogation endpoint tests."""

import pytest

from repro.iec104.constants import Cause, TypeID
from repro.iec104.endpoint import connect_pair
from repro.iec104.information_elements import (IntegratedTotals,
                                               SingleCommand)


def sbo_pair(require_select=True):
    master, outstation, pump = connect_pair()
    outstation.require_select = require_select
    master.start_data_transfer()
    pump()
    return master, outstation, pump


class TestSelectBeforeOperate:
    def test_direct_execute_rejected_when_sbo(self):
        master, outstation, pump = sbo_pair()
        executed = []
        outstation.on_command = executed.append
        master.send_command(TypeID.C_SC_NA_1, 3001,
                            SingleCommand(state=True, select=False))
        pump()
        assert executed == []
        assert len(master.rejected_commands) == 1
        assert master.rejected_commands[0].negative

    def test_select_then_execute_accepted(self):
        master, outstation, pump = sbo_pair()
        executed = []
        outstation.on_command = executed.append
        master.send_command(TypeID.C_SC_NA_1, 3001,
                            SingleCommand(state=True, select=True))
        pump()
        master.send_command(TypeID.C_SC_NA_1, 3001,
                            SingleCommand(state=True, select=False))
        pump()
        # The select itself is confirmed + notified; the execute too.
        assert len(executed) == 2
        assert master.rejected_commands == []

    def test_selection_is_one_shot(self):
        master, outstation, pump = sbo_pair()
        master.send_command(TypeID.C_SC_NA_1, 3001,
                            SingleCommand(state=True, select=True))
        master.send_command(TypeID.C_SC_NA_1, 3001,
                            SingleCommand(state=True, select=False))
        pump()
        # Second execute without a fresh select must fail.
        master.send_command(TypeID.C_SC_NA_1, 3001,
                            SingleCommand(state=False, select=False))
        pump()
        assert len(master.rejected_commands) == 1

    def test_select_is_per_ioa(self):
        master, outstation, pump = sbo_pair()
        master.send_command(TypeID.C_SC_NA_1, 3001,
                            SingleCommand(state=True, select=True))
        pump()
        master.send_command(TypeID.C_SC_NA_1, 3002,
                            SingleCommand(state=True, select=False))
        pump()
        assert len(master.rejected_commands) == 1  # 3002 was not armed

    def test_direct_operate_mode(self):
        master, outstation, pump = sbo_pair(require_select=False)
        executed = []
        outstation.on_command = executed.append
        master.send_command(TypeID.C_SC_NA_1, 3001,
                            SingleCommand(state=True, select=False))
        pump()
        assert len(executed) == 1

    def test_setpoints_not_subject_to_sbo(self):
        from repro.iec104.information_elements import SetpointFloat
        master, outstation, pump = sbo_pair()
        executed = []
        outstation.on_command = executed.append
        master.send_command(TypeID.C_SE_NC_1, 100,
                            SetpointFloat(value=10.0))
        pump()
        assert len(executed) == 1


class TestCounterInterrogation:
    def test_counters_reported(self):
        master, outstation, pump = connect_pair()
        master.start_data_transfer()
        pump()
        outstation.define_point(5001, TypeID.M_IT_NA_1,
                                IntegratedTotals(counter=123456,
                                                 sequence=1))
        outstation.define_point(5002, TypeID.M_IT_NA_1,
                                IntegratedTotals(counter=-42,
                                                 sequence=2))
        # An ordinary analog point must not appear in the answer.
        from repro.iec104.information_elements import ShortFloat
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=1.0))
        master.counter_interrogate()
        pump()
        assert master.counter_progress == [
            Cause.ACTIVATION_CON, Cause.ACTIVATION_TERMINATION]
        counters = [m for m in master.measurements
                    if m.type_id is TypeID.M_IT_NA_1]
        assert [m.ioa for m in counters] == [5001, 5002]
        assert counters[0].element.counter == 123456
        assert counters[0].cause \
            is Cause.COUNTER_INTERROGATION_GENERAL
        assert not any(m.ioa == 2001 for m in master.measurements)

    def test_no_counters_still_terminates(self):
        master, outstation, pump = connect_pair()
        master.start_data_transfer()
        pump()
        master.counter_interrogate()
        pump()
        assert master.counter_progress == [
            Cause.ACTIVATION_CON, Cause.ACTIVATION_TERMINATION]

    def test_requires_startdt(self):
        from repro.iec104.errors import StateError
        master, _, _ = connect_pair()
        with pytest.raises(StateError):
            master.counter_interrogate()
