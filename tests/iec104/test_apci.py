"""APCI framing tests: the three APDU formats of Fig. 3."""

import pytest
from hypothesis import given, strategies as st

from repro.iec104.apci import (SEQ_MODULO, IFrame, SFrame, UFrame,
                               decode_apdu)
from repro.iec104.asdu import measurement
from repro.iec104.constants import (START_BYTE, TypeID, UFunction)
from repro.iec104.errors import (ControlFieldError, FramingError,
                                 MalformedASDUError, TruncatedError)
from repro.iec104.information_elements import ShortFloat


def sample_iframe(send=0, recv=0):
    asdu = measurement(TypeID.M_ME_NC_1, 2001, ShortFloat(value=50.0))
    return IFrame(asdu=asdu, send_seq=send, recv_seq=recv)


class TestIFormat:
    def test_roundtrip(self):
        frame = sample_iframe(send=12345, recv=321)
        decoded, consumed = decode_apdu(frame.encode())
        assert decoded == frame
        assert consumed == len(frame.encode())

    def test_lsb_of_first_control_octet_is_zero(self):
        encoded = sample_iframe(send=7).encode()
        assert encoded[2] & 0x01 == 0

    @given(st.integers(min_value=0, max_value=SEQ_MODULO - 1),
           st.integers(min_value=0, max_value=SEQ_MODULO - 1))
    def test_sequence_roundtrip(self, send, recv):
        frame = sample_iframe(send=send, recv=recv)
        decoded, _ = decode_apdu(frame.encode())
        assert decoded.send_seq == send
        assert decoded.recv_seq == recv

    def test_sequence_out_of_range(self):
        with pytest.raises(ValueError):
            sample_iframe(send=SEQ_MODULO)

    def test_token_comes_from_asdu(self):
        assert sample_iframe().token == "I13"

    def test_empty_asdu_rejected(self):
        raw = bytes((START_BYTE, 4, 0x00, 0x00, 0x00, 0x00))
        with pytest.raises(MalformedASDUError):
            decode_apdu(raw)


class TestSFormat:
    def test_roundtrip(self):
        frame = SFrame(recv_seq=999)
        decoded, consumed = decode_apdu(frame.encode())
        assert decoded == frame
        assert consumed == 6

    def test_token(self):
        assert SFrame().token == "S"

    def test_s_with_payload_rejected(self):
        raw = bytes((START_BYTE, 5, 0x01, 0x00, 0x00, 0x00, 0xAA))
        with pytest.raises(ControlFieldError):
            decode_apdu(raw)

    def test_reserved_bits_rejected(self):
        raw = bytes((START_BYTE, 4, 0x05, 0x00, 0x02, 0x00))
        with pytest.raises(ControlFieldError):
            decode_apdu(raw)


class TestUFormat:
    @pytest.mark.parametrize("function", list(UFunction))
    def test_roundtrip_all_functions(self, function):
        frame = UFrame(function)
        decoded, _ = decode_apdu(frame.encode())
        assert decoded == frame

    @pytest.mark.parametrize("function,token", [
        (UFunction.STARTDT_ACT, "U1"), (UFunction.STARTDT_CON, "U2"),
        (UFunction.STOPDT_ACT, "U4"), (UFunction.STOPDT_CON, "U8"),
        (UFunction.TESTFR_ACT, "U16"), (UFunction.TESTFR_CON, "U32"),
    ])
    def test_table4_tokens(self, function, token):
        assert UFrame(function).token == token

    def test_confirmation_mapping(self):
        assert (UFunction.STARTDT_ACT.confirmation
                is UFunction.STARTDT_CON)
        assert (UFunction.TESTFR_ACT.confirmation
                is UFunction.TESTFR_CON)
        with pytest.raises(ValueError):
            _ = UFunction.TESTFR_CON.confirmation

    def test_multiple_function_bits_rejected(self):
        raw = bytes((START_BYTE, 4, 0x03 | 0x04 | 0x10, 0x00, 0x00, 0x00))
        with pytest.raises(ControlFieldError):
            decode_apdu(raw)

    def test_nonzero_trailing_octets_rejected(self):
        raw = bytes((START_BYTE, 4, 0x07, 0x00, 0x01, 0x00))
        with pytest.raises(ControlFieldError):
            decode_apdu(raw)

    def test_u_with_payload_rejected(self):
        raw = bytes((START_BYTE, 5, 0x43, 0x00, 0x00, 0x00, 0xAA))
        with pytest.raises(ControlFieldError):
            decode_apdu(raw)


class TestFraming:
    def test_bad_start_byte(self):
        with pytest.raises(FramingError):
            decode_apdu(b"\x69\x04\x01\x00\x00\x00")

    def test_truncated_header(self):
        with pytest.raises(TruncatedError):
            decode_apdu(b"\x68")

    def test_truncated_body(self):
        frame = sample_iframe().encode()
        with pytest.raises(TruncatedError) as info:
            decode_apdu(frame[:-3])
        assert info.value.needed == len(frame)

    def test_length_below_control_field(self):
        with pytest.raises(FramingError):
            decode_apdu(bytes((START_BYTE, 3, 0x01, 0x00, 0x00)))

    def test_decode_at_offset(self):
        frame = SFrame(recv_seq=5)
        data = b"\x00" * 4 + frame.encode()
        decoded, consumed = decode_apdu(data, offset=4)
        assert decoded == frame

    def test_oversized_asdu_rejected_on_encode(self):
        from repro.iec104.asdu import ASDU, InformationObject
        from repro.iec104.constants import Cause
        objects = tuple(InformationObject(i + 1, ShortFloat(value=0.0))
                        for i in range(60))  # 60 * (3+5) + 6 > 253
        asdu = ASDU(type_id=TypeID.M_ME_NC_1, cause=Cause.SPONTANEOUS,
                    common_address=1, objects=objects)
        with pytest.raises(FramingError):
            IFrame(asdu=asdu).encode()
