"""Connection state machine tests: STARTDT, windows, timers T1-T3."""

import pytest

from repro.iec104.apci import IFrame, SFrame, UFrame
from repro.iec104.asdu import measurement
from repro.iec104.constants import ProtocolTimers, TypeID, UFunction
from repro.iec104.errors import SequenceError, StateError
from repro.iec104.information_elements import ShortFloat
from repro.iec104.state_machine import (ActionKind, ConnectionMachine,
                                        TransferState, seq_distance)


def asdu():
    return measurement(TypeID.M_ME_NC_1, 1, ShortFloat(value=1.0))


def started_pair(k=12, w=8):
    """A server/outstation machine pair after the STARTDT handshake."""
    server = ConnectionMachine(is_controlling=True, k=k, w=w)
    outstation = ConnectionMachine(is_controlling=False, k=k, w=w)
    server.connection_opened(0.0)
    outstation.connection_opened(0.0)
    act = server.start_transfer()
    server.on_send(act, 0.0)
    actions = outstation.on_receive(act, 0.01)
    assert actions[0].kind is ActionKind.SEND_STARTDT_CON
    con = UFrame(UFunction.STARTDT_CON)
    outstation.on_send(con, 0.01)
    server.on_receive(con, 0.02)
    return server, outstation


class TestSeqDistance:
    def test_simple(self):
        assert seq_distance(0, 5) == 5

    def test_wraparound(self):
        assert seq_distance(32760, 3) == 11


class TestStartStop:
    def test_initial_state_is_stopped(self):
        machine = ConnectionMachine()
        assert machine.state is TransferState.STOPPED

    def test_startdt_handshake(self):
        server, outstation = started_pair()
        assert server.state is TransferState.STARTED
        assert outstation.state is TransferState.STARTED

    def test_only_controlling_sends_startdt(self):
        outstation = ConnectionMachine(is_controlling=False)
        with pytest.raises(StateError):
            outstation.start_transfer()

    def test_stopdt_handshake(self):
        server, outstation = started_pair()
        act = server.stop_transfer()
        server.on_send(act, 1.0)
        actions = outstation.on_receive(act, 1.01)
        assert actions[0].kind is ActionKind.SEND_STOPDT_CON
        con = UFrame(UFunction.STOPDT_CON)
        outstation.on_send(con, 1.01)
        server.on_receive(con, 1.02)
        assert server.state is TransferState.STOPPED
        assert outstation.state is TransferState.STOPPED

    def test_unexpected_startdt_con(self):
        machine = ConnectionMachine(is_controlling=True)
        with pytest.raises(StateError):
            machine.on_receive(UFrame(UFunction.STARTDT_CON), 0.0)

    def test_i_frame_in_stopped_state_rejected(self):
        machine = ConnectionMachine()
        with pytest.raises(StateError):
            machine.on_receive(IFrame(asdu=asdu()), 0.0)

    def test_cannot_send_i_when_stopped(self):
        machine = ConnectionMachine()
        with pytest.raises(StateError):
            machine.next_i_frame(asdu())


class TestSequenceNumbers:
    def test_send_seq_increments(self):
        _, outstation = started_pair()
        f1 = outstation.next_i_frame(asdu())
        f2 = outstation.next_i_frame(asdu())
        assert (f1.send_seq, f2.send_seq) == (0, 1)

    def test_receiver_tracks_and_rejects_gaps(self):
        server, outstation = started_pair()
        frame = outstation.next_i_frame(asdu())
        server.on_receive(frame, 0.1)
        assert server.recv_seq == 1
        skipped = IFrame(asdu=asdu(), send_seq=5, recv_seq=0)
        with pytest.raises(SequenceError):
            server.on_receive(skipped, 0.2)

    def test_ack_beyond_sent_rejected(self):
        server, outstation = started_pair()
        with pytest.raises(SequenceError):
            outstation.on_receive(SFrame(recv_seq=3), 0.1)

    def test_s_frame_acknowledges(self):
        server, outstation = started_pair()
        for _ in range(3):
            frame = outstation.next_i_frame(asdu())
            outstation.on_send(frame, 0.1)
        assert outstation.unacked_sent == 3
        outstation.on_receive(SFrame(recv_seq=3), 0.2)
        assert outstation.unacked_sent == 0


class TestWindows:
    def test_k_window_blocks_sending(self):
        _, outstation = started_pair(k=2, w=1)
        outstation.next_i_frame(asdu())
        outstation.next_i_frame(asdu())
        assert not outstation.can_send_i
        with pytest.raises(SequenceError):
            outstation.next_i_frame(asdu())

    def test_w_window_triggers_ack(self):
        server, outstation = started_pair(k=12, w=3)
        actions = []
        for _ in range(3):
            frame = outstation.next_i_frame(asdu())
            outstation.on_send(frame, 0.1)
            actions = server.on_receive(frame, 0.1)
        assert actions[0].kind is ActionKind.SEND_S_ACK
        assert actions[0].recv_seq == 3

    def test_w_greater_than_k_rejected(self):
        with pytest.raises(ValueError):
            ConnectionMachine(k=2, w=4)


class TestTimers:
    def test_t2_triggers_ack(self):
        server, outstation = started_pair()
        frame = outstation.next_i_frame(asdu())
        server.on_receive(frame, 1.0)
        actions = server.poll(1.0 + server.timers.t2 + 0.1)
        assert any(a.kind is ActionKind.SEND_S_ACK for a in actions)

    def test_t2_not_early(self):
        server, outstation = started_pair()
        frame = outstation.next_i_frame(asdu())
        server.on_receive(frame, 1.0)
        assert server.poll(1.0 + server.timers.t2 - 1.0) == []

    def test_t3_triggers_testfr(self):
        server, _ = started_pair()
        actions = server.poll(0.02 + server.timers.t3 + 0.1)
        assert any(a.kind is ActionKind.SEND_TESTFR_ACT for a in actions)

    def test_t1_unanswered_testfr_closes(self):
        server, _ = started_pair()
        testfr = UFrame(UFunction.TESTFR_ACT)
        server.on_send(testfr, 5.0)
        actions = server.poll(5.0 + server.timers.t1 + 0.1)
        assert actions[0].kind is ActionKind.CLOSE_CONNECTION

    def test_testfr_con_cancels_t1(self):
        server, _ = started_pair()
        server.on_send(UFrame(UFunction.TESTFR_ACT), 5.0)
        server.on_receive(UFrame(UFunction.TESTFR_CON), 5.1)
        assert server.poll(5.0 + server.timers.t1 + 1.0) == []

    def test_t1_unacked_i_closes(self):
        _, outstation = started_pair()
        frame = outstation.next_i_frame(asdu())
        outstation.on_send(frame, 2.0)
        actions = outstation.poll(2.0 + outstation.timers.t1 + 0.1)
        assert actions[0].kind is ActionKind.CLOSE_CONNECTION

    def test_testfr_act_answered(self):
        server, outstation = started_pair()
        actions = outstation.on_receive(UFrame(UFunction.TESTFR_ACT), 3.0)
        assert actions[0].kind is ActionKind.SEND_TESTFR_CON

    def test_timer_validation(self):
        with pytest.raises(ValueError):
            ProtocolTimers(t2=20.0, t1=15.0)  # violates t2 < t1
        with pytest.raises(ValueError):
            ProtocolTimers(t0=-1.0)

    def test_misconfigured_t3_delays_keepalive(self):
        """The paper's C2-O30: a T3 of 430 s instead of ~30 s."""
        timers = ProtocolTimers(t3=430.0)
        machine = ConnectionMachine(timers=timers)
        machine.connection_opened(0.0)
        assert machine.poll(60.0) == []
        actions = machine.poll(430.5)
        assert any(a.kind is ActionKind.SEND_TESTFR_ACT for a in actions)


class TestReset:
    def test_connection_opened_resets(self):
        server, outstation = started_pair()
        frame = outstation.next_i_frame(asdu())
        server.on_receive(frame, 1.0)
        server.connection_opened(10.0)
        assert server.state is TransferState.STOPPED
        assert server.send_seq == 0 and server.recv_seq == 0
