"""Stream parser tests: strict baseline vs tolerant profile inference."""

import pytest
from hypothesis import given, strategies as st

from repro.iec104.apci import IFrame, SFrame, UFrame
from repro.iec104.asdu import measurement
from repro.iec104.codec import (ParseResult, StreamDecoder, StrictParser,
                                TolerantParser, split_frames)
from repro.iec104.constants import TypeID, UFunction
from repro.iec104.information_elements import ShortFloat
from repro.iec104.profiles import (LEGACY_COT_PROFILE, LEGACY_IOA_PROFILE,
                                   STANDARD_PROFILE)


def float_frame(value=59.98, ioa=2001, profile=STANDARD_PROFILE,
                send=0, recv=0):
    asdu = measurement(TypeID.M_ME_NC_1, ioa, ShortFloat(value=value))
    return IFrame(asdu=asdu, send_seq=send, recv_seq=recv).encode(profile)


class TestSplitFrames:
    def test_multiple_frames(self):
        payload = float_frame() + SFrame(recv_seq=1).encode() \
            + UFrame(UFunction.TESTFR_ACT).encode()
        frames, remainder = split_frames(payload)
        assert len(frames) == 3
        assert remainder == b""

    def test_partial_trailing_frame(self):
        full = float_frame()
        payload = full + full[:5]
        frames, remainder = split_frames(payload)
        assert len(frames) == 1
        assert remainder == full[:5]

    def test_garbage_stops_splitting(self):
        payload = b"\x00\x01" + float_frame()
        frames, remainder = split_frames(payload)
        assert frames == []
        assert remainder == payload

    def test_empty(self):
        assert split_frames(b"") == ([], b"")


class TestStrictParser:
    def test_valid_frame(self):
        parser = StrictParser()
        result = parser.parse_frame(float_frame())
        assert result.ok and result.compliant

    def test_legacy_frame_flagged(self):
        parser = StrictParser()
        result = parser.parse_frame(float_frame(profile=LEGACY_COT_PROFILE))
        assert not result.ok
        assert parser.stats.malformed == 1

    def test_stats_accumulate(self):
        parser = StrictParser()
        parser.parse_stream(float_frame()
                            + float_frame(profile=LEGACY_IOA_PROFILE))
        assert parser.stats.frames == 2
        assert parser.stats.valid == 1
        assert parser.stats.malformed_fraction == pytest.approx(0.5)

    def test_desync_reported(self):
        parser = StrictParser()
        results = parser.parse_stream(float_frame() + b"\x01\x02")
        assert results[-1].error is not None


class TestTolerantParser:
    def test_standard_preferred(self):
        parser = TolerantParser()
        result = parser.parse_frame(float_frame(), link_key="a")
        assert result.compliant
        assert parser.profile_for("a") == STANDARD_PROFILE

    @pytest.mark.parametrize("profile", [LEGACY_COT_PROFILE,
                                         LEGACY_IOA_PROFILE])
    def test_legacy_inference(self, profile):
        parser = TolerantParser()
        result = parser.parse_frame(float_frame(profile=profile),
                                    link_key="legacy")
        assert result.ok
        assert result.profile == profile
        assert parser.profile_for("legacy") == profile

    def test_profile_cached_per_link(self):
        parser = TolerantParser()
        parser.parse_frame(float_frame(profile=LEGACY_COT_PROFILE),
                           link_key="O53")
        # Subsequent frames decode under the cached profile directly.
        result = parser.parse_frame(
            float_frame(value=1.25, profile=LEGACY_COT_PROFILE),
            link_key="O53")
        assert result.profile == LEGACY_COT_PROFILE
        assert result.apdu.asdu.objects[0].element.value \
            == pytest.approx(1.25)

    def test_links_are_independent(self):
        parser = TolerantParser()
        parser.parse_frame(float_frame(profile=LEGACY_IOA_PROFILE),
                           link_key="O37")
        parser.parse_frame(float_frame(), link_key="O1")
        assert parser.profile_for("O37") == LEGACY_IOA_PROFILE
        assert parser.profile_for("O1") == STANDARD_PROFILE

    def test_u_frames_profile_independent(self):
        parser = TolerantParser()
        result = parser.parse_frame(UFrame(UFunction.TESTFR_ACT).encode(),
                                    link_key="x")
        assert result.ok
        # U frames must not fix a profile for the link.
        assert parser.profile_for("x") is None

    def test_garbage_fails_cleanly(self):
        parser = TolerantParser()
        result = parser.parse_frame(bytes((0x68, 0x04, 0xFF, 0xFF,
                                           0xFF, 0xFF)))
        assert not result.ok
        assert parser.stats.malformed == 1

    def test_reinfers_after_link_change(self):
        parser = TolerantParser()
        parser.parse_frame(float_frame(profile=LEGACY_COT_PROFILE),
                           link_key="rtu")
        # The RTU was replaced by a compliant one mid-capture.
        result = parser.parse_frame(float_frame(), link_key="rtu")
        assert result.ok and result.compliant

    def test_non_compliant_counted(self):
        parser = TolerantParser()
        parser.parse_frame(float_frame(profile=LEGACY_COT_PROFILE))
        parser.parse_frame(float_frame())
        assert parser.stats.non_compliant == 1

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            TolerantParser(candidates=())


class TestStreamDecoder:
    def test_frame_split_across_segments(self):
        decoder = StreamDecoder(link_key="x")
        frame = float_frame()
        assert decoder.feed(frame[:4]) == []
        assert decoder.pending == 4
        results = decoder.feed(frame[4:])
        assert len(results) == 1 and results[0].ok
        assert decoder.pending == 0

    def test_multiple_frames_one_segment(self):
        decoder = StreamDecoder()
        payload = float_frame() + SFrame(recv_seq=9).encode()
        results = decoder.feed(payload)
        assert [type(r.apdu).__name__ for r in results] \
            == ["IFrame", "SFrame"]

    def test_resync_after_garbage(self):
        decoder = StreamDecoder()
        frame = float_frame()
        results = decoder.feed(b"\x01\x02\x03" + frame)
        assert len(results) == 1 and results[0].ok
        assert decoder.desync_bytes == 3

    def test_garbage_without_start_byte_dropped(self):
        decoder = StreamDecoder()
        assert decoder.feed(b"\x01\x02\x03") == []
        assert decoder.desync_bytes == 3
        assert decoder.pending == 0

    def test_strict_parser_backend(self):
        decoder = StreamDecoder(parser=StrictParser())
        results = decoder.feed(float_frame(profile=LEGACY_COT_PROFILE))
        assert len(results) == 1 and not results[0].ok


class TestParseResult:
    def test_compliant_requires_standard_profile(self):
        ok = ParseResult(raw=b"", apdu=SFrame(), profile=STANDARD_PROFILE)
        legacy = ParseResult(raw=b"", apdu=SFrame(),
                             profile=LEGACY_COT_PROFILE)
        assert ok.compliant and not legacy.compliant


@given(st.lists(st.sampled_from([
    lambda: float_frame(value=1.0),
    lambda: SFrame(recv_seq=3).encode(),
    lambda: UFrame(UFunction.TESTFR_CON).encode(),
]), min_size=1, max_size=12), st.integers(min_value=1, max_value=17))
def test_decoder_invariant_any_segmentation(builders, chunk):
    """However a frame stream is segmented, the decoder recovers every
    frame exactly once, in order."""
    stream = b"".join(builder() for builder in builders)
    decoder = StreamDecoder()
    results = []
    for index in range(0, len(stream), chunk):
        results.extend(decoder.feed(stream[index:index + chunk]))
    assert len(results) == len(builders)
    assert all(result.ok for result in results)
