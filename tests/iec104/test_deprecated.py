"""Deprecated package-level re-exports (remove in 1.3.0)."""

from __future__ import annotations

import pytest

import repro.iec104
from repro.iec104.apci import decode_apdu
from repro.iec104.codec import split_frames


class TestDeprecatedReExports:
    def test_decode_apdu_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning,
                          match="repro.iec104.apci.decode_apdu"):
            resolved = repro.iec104.decode_apdu
        assert resolved is decode_apdu

    def test_split_frames_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning,
                          match="repro.iec104.codec.split_frames"):
            resolved = repro.iec104.split_frames
        assert resolved is split_frames

    def test_warning_points_at_the_protocol_abstraction(self):
        with pytest.warns(DeprecationWarning, match="ProtocolSpec"):
            repro.iec104.decode_apdu

    def test_unknown_attribute_is_still_an_attribute_error(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.iec104.definitely_not_a_symbol

    def test_submodule_paths_do_not_warn(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.iec104.apci import decode_apdu  # noqa: F401
            from repro.iec104.codec import split_frames  # noqa: F401
