"""Fig. 4 redundancy group tests: keep-alives and failover."""

import pytest

from repro.iec104.constants import ProtocolTimers, TypeID
from repro.iec104.endpoint import (MasterEndpoint, OutstationEndpoint,
                                   PipeTransport)
from repro.iec104.information_elements import ShortFloat
from repro.iec104.redundancy import LinkRole, RedundancyGroup


def build(keepalive=30.0, timers=None):
    """Two master links to two outstation endpoints + a pump."""
    transports = {}
    outstations = {}
    masters = {}
    for name in ("C1", "C2"):
        a, b = PipeTransport.pair()
        masters[name] = MasterEndpoint(a, timers=timers)
        outstation = OutstationEndpoint(b, timers=timers)
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=1.0))
        outstations[name] = outstation
        transports[name] = (a, b)

    def pump():
        while sum(a.pump() + b.pump()
                  for a, b in transports.values()):
            pass

    group = RedundancyGroup(masters, preferred="C1",
                            keepalive_period=keepalive)
    pump()
    return group, masters, outstations, pump


class TestNormalOperation:
    def test_initial_roles(self):
        group, masters, outstations, pump = build()
        assert group.active == "C1"
        assert group.role_of("C2") is LinkRole.SECONDARY
        assert masters["C1"].started
        assert not masters["C2"].started

    def test_promotion_interrogates(self):
        group, masters, _, pump = build()
        pump()
        assert masters["C1"].measurements  # the interrogation answer

    def test_secondary_keepalives(self):
        group, masters, _, pump = build(keepalive=10.0)
        for now in (10.0, 20.0, 30.0):
            group.tick(now)
            pump()
        # Three TESTFR acts went out on the standby link.
        assert masters["C2"].stats.sent_u >= 3
        assert masters["C2"].stats.received_u >= 3  # confirmed
        # The primary link carried no keep-alives from the group.
        assert group.active == "C1"

    def test_healthy(self):
        group, _, _, _ = build()
        assert group.healthy


class TestFailover:
    def test_transport_loss_promotes_backup(self):
        group, masters, _, pump = build()
        group.report_transport_loss("C1")
        pump()
        assert group.active == "C2"
        assert masters["C2"].started
        assert group.role_of("C1") is LinkRole.FAILED
        assert group.history[-1].reason == "transport loss"

    def test_t1_expiry_promotes_backup(self):
        timers = ProtocolTimers(t1=10.0, t2=5.0, t3=5.0)
        group, masters, outstations, pump = build(timers=timers)
        # Cut C1's pipe so its TESTFR act is never answered.
        masters["C1"].transport.peer = None
        group.tick(6.0)    # T3 -> TESTFR act on C1 (lost)
        pump()             # C2's keep-alive is confirmed; C1's is not
        group.tick(17.0)   # T1 expiry -> on_close_request -> failover
        pump()
        assert group.active == "C2"
        assert masters["C2"].started

    def test_promoted_backup_interrogates(self):
        group, masters, _, pump = build()
        group.report_transport_loss("C1")
        pump()
        assert masters["C2"].measurements

    def test_total_outage_leaves_no_active(self):
        group, masters, _, pump = build()
        masters["C2"].transport.peer = None
        masters["C2"].closed = True
        group.report_transport_loss("C1")
        assert group.active is None
        assert not group.healthy

    def test_history_records_switchovers(self):
        group, _, _, pump = build()
        group.report_transport_loss("C1")
        pump()
        assert [event.to_link for event in group.history] \
            == ["C1", "C2"]


class TestValidation:
    def test_needs_two_links(self):
        a, _ = PipeTransport.pair()
        with pytest.raises(ValueError):
            RedundancyGroup({"C1": MasterEndpoint(a)})

    def test_unknown_preferred(self):
        links = {}
        for name in ("C1", "C2"):
            a, b = PipeTransport.pair()
            links[name] = MasterEndpoint(a)
            OutstationEndpoint(b)
        with pytest.raises(KeyError):
            RedundancyGroup(links, preferred="C9")

    def test_unknown_transport_loss(self):
        group, _, _, _ = build()
        with pytest.raises(KeyError):
            group.report_transport_loss("C9")

    def test_keepalive_validation(self):
        links = {}
        for name in ("C1", "C2"):
            a, b = PipeTransport.pair()
            links[name] = MasterEndpoint(a)
            OutstationEndpoint(b)
        with pytest.raises(ValueError):
            RedundancyGroup(links, keepalive_period=0.0)
