"""IEC 101 FT1.2 framing and 101->104 gateway tests."""

import pytest

from repro.iec104.asdu import measurement
from repro.iec104.codec import StrictParser, TolerantParser
from repro.iec104.constants import Cause, TypeID
from repro.iec104.errors import FramingError, TruncatedError
from repro.iec104.gateway import (GatewayMode, Iec101To104Gateway)
from repro.iec104.iec101 import (ACK_CHAR, AckFrame, Ft12Frame,
                                 IEC101_PROFILE, LinkControl, SerialLine,
                                 LinkFunction, decode_frame, encode_ack,
                                 encode_fixed, encode_variable)
from repro.iec104.information_elements import ShortFloat
from repro.iec104.profiles import LEGACY_COT_PROFILE


def serial_asdu(value=59.97, ioa=700):
    return measurement(TypeID.M_ME_NC_1, ioa, ShortFloat(value=value),
                       cause=Cause.SPONTANEOUS, common_address=3)


def user_data(asdu=None) -> bytes:
    control = LinkControl(function=LinkFunction.USER_DATA_CONFIRMED,
                          prm=True, fcb=True, fcv=True)
    return encode_variable(control, address=17,
                           asdu=asdu or serial_asdu())


class TestFt12Framing:
    def test_ack_roundtrip(self):
        frame, consumed = decode_frame(encode_ack())
        assert isinstance(frame, AckFrame)
        assert consumed == 1

    def test_fixed_roundtrip(self):
        control = LinkControl(function=LinkFunction.REQUEST_LINK_STATUS)
        raw = encode_fixed(control, address=9)
        frame, consumed = decode_frame(raw)
        assert consumed == len(raw) == 5
        assert frame.control == control
        assert frame.address == 9
        assert frame.asdu_bytes == b""

    def test_variable_roundtrip(self):
        raw = user_data()
        frame, consumed = decode_frame(raw)
        assert consumed == len(raw)
        assert frame.address == 17
        decoded = frame.decode_asdu()
        assert decoded.objects[0].address == 700
        assert decoded.common_address == 3

    def test_variable_uses_101_widths(self):
        """The embedded ASDU must be narrower than its 104 encoding."""
        asdu = serial_asdu()
        narrow = asdu.encode(IEC101_PROFILE)
        wide = asdu.encode()
        assert len(wide) - len(narrow) == 3  # COT+CA+IOA one octet each

    def test_checksum_detects_corruption(self):
        raw = bytearray(user_data())
        raw[6] ^= 0xFF
        with pytest.raises(FramingError):
            decode_frame(bytes(raw))

    def test_length_mismatch(self):
        raw = bytearray(user_data())
        raw[2] ^= 0x01
        with pytest.raises(FramingError):
            decode_frame(bytes(raw))

    def test_truncated(self):
        raw = user_data()
        with pytest.raises(TruncatedError):
            decode_frame(raw[:-3])

    def test_bad_start(self):
        with pytest.raises(FramingError):
            decode_frame(b"\x99\x00")

    def test_control_octet_bits(self):
        control = LinkControl(function=3, prm=True, fcb=True, fcv=True)
        assert LinkControl.decode(control.encode()) == control
        with pytest.raises(FramingError):
            LinkControl.decode(0x80)


class TestSerialLine:
    def test_split_multiple_frames(self):
        line = SerialLine()
        data = user_data() + encode_ack() + user_data(
            serial_asdu(value=50.01, ioa=701))
        frames = line.feed(data)
        assert len(frames) == 3
        assert isinstance(frames[1], AckFrame)

    def test_partial_then_rest(self):
        line = SerialLine()
        raw = user_data()
        assert line.feed(raw[:7]) == []
        assert line.pending == 7
        frames = line.feed(raw[7:])
        assert len(frames) == 1

    def test_resync_after_noise(self):
        line = SerialLine()
        frames = line.feed(b"\x01\x02\x03" + user_data())
        assert len(frames) == 1
        assert line.garbage == 3


class TestGatewayRewrite:
    def test_produces_standard_104(self):
        gateway = Iec101To104Gateway(mode=GatewayMode.REWRITE)
        frames = gateway.from_serial(user_data())
        assert len(frames) == 1
        parser = StrictParser()
        result = parser.parse_frame(frames[0])
        assert result.ok and result.compliant
        asdu = result.apdu.asdu
        assert asdu.objects[0].address == 700
        assert asdu.objects[0].element.value == pytest.approx(59.97)

    def test_common_address_remap(self):
        gateway = Iec101To104Gateway(mode=GatewayMode.REWRITE,
                                     common_address_map={3: 4101})
        frames = gateway.from_serial(user_data())
        result = TolerantParser().parse_frame(frames[0])
        assert result.apdu.asdu.common_address == 4101

    def test_sequence_numbers_advance(self):
        gateway = Iec101To104Gateway()
        first = gateway.from_serial(user_data())[0]
        second = gateway.from_serial(user_data())[0]
        parser = TolerantParser()
        assert parser.parse_frame(first).apdu.send_seq == 0
        assert parser.parse_frame(second).apdu.send_seq == 1

    def test_link_service_frames_not_forwarded(self):
        gateway = Iec101To104Gateway()
        status = encode_fixed(
            LinkControl(function=LinkFunction.REQUEST_LINK_STATUS), 17)
        assert gateway.from_serial(status + encode_ack()) == []
        assert gateway.stats.link_service_frames == 2

    def test_garbage_asdu_counted_not_forwarded(self):
        gateway = Iec101To104Gateway()
        control = LinkControl(function=3, prm=True)
        bogus = encode_variable(control, address=17,
                                asdu=b"\xff\xff\xff\xff\xff")
        assert gateway.from_serial(bogus) == []
        assert gateway.stats.conversion_failures == 1


class TestGatewayPassthrough:
    """The lazy mode that reproduces the paper's §6.1 traffic."""

    def test_strict_parser_rejects_output(self):
        gateway = Iec101To104Gateway(mode=GatewayMode.PASSTHROUGH)
        frames = gateway.from_serial(user_data())
        result = StrictParser().parse_frame(frames[0])
        assert not result.ok

    def test_tolerant_parser_decodes_output(self):
        gateway = Iec101To104Gateway(mode=GatewayMode.PASSTHROUGH)
        frames = gateway.from_serial(user_data())
        parser = TolerantParser()
        result = parser.parse_frame(frames[0], link_key="O53")
        assert result.ok
        assert not result.compliant
        # The inferred deviation is 101's 1-octet COT (+narrow CA/IOA).
        profile = parser.profile_for("O53")
        assert profile.cot_length == 1
        assert result.apdu.asdu.objects[0].element.value \
            == pytest.approx(59.97)

    def test_both_modes_carry_identical_telemetry(self):
        rewrite = Iec101To104Gateway(mode=GatewayMode.REWRITE)
        lazy = Iec101To104Gateway(mode=GatewayMode.PASSTHROUGH)
        data = user_data(serial_asdu(value=132.8, ioa=705))
        good = TolerantParser().parse_frame(
            rewrite.from_serial(data)[0]).apdu.asdu
        quirky = TolerantParser().parse_frame(
            lazy.from_serial(data)[0], link_key="x").apdu.asdu
        assert good.objects[0].element.value == pytest.approx(
            quirky.objects[0].element.value)
        assert good.objects[0].address == quirky.objects[0].address
