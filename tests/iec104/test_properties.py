"""Cross-cutting property-based tests for the protocol stack."""

import random

from hypothesis import given, settings, strategies as st

from repro.iec104.apci import (SPAN_I, SPAN_S, SPAN_U, IFrame, SFrame,
                               UFrame, decode_apdu, scan_apci)
from repro.iec104.asdu import ASDU, InformationObject
from repro.iec104.codec import TolerantParser, split_frames
from repro.iec104.constants import Cause, TypeID, UFunction
from repro.iec104.iec101 import (LinkControl, SerialLine,
                                 encode_ack, encode_fixed,
                                 encode_variable)
from repro.iec104.information_elements import (DoublePoint, ShortFloat,
                                               SinglePoint)
from repro.iec104.profiles import CANDIDATE_PROFILES
from repro.iec104.state_machine import ConnectionMachine
from repro.iec104.time_tag import CP56Time2a

_PROFILES = st.sampled_from(CANDIDATE_PROFILES)

_CAUSES = st.sampled_from([Cause.PERIODIC, Cause.SPONTANEOUS,
                           Cause.REQUEST, Cause.ACTIVATION,
                           Cause.INTERROGATED_BY_STATION])


def _element(type_id, value_float, flag):
    if type_id is TypeID.M_ME_NC_1:
        return ShortFloat(value=value_float)
    if type_id is TypeID.M_ME_TF_1:
        return ShortFloat(value=value_float,
                          time=CP56Time2a.from_seconds(1000.0))
    if type_id is TypeID.M_SP_NA_1:
        return SinglePoint(value=flag)
    return DoublePoint(state=2 if flag else 1)


_ASDUS = st.builds(
    lambda type_id, cause, addresses, value, flag, ca: ASDU(
        type_id=type_id, cause=cause, common_address=ca,
        objects=tuple(InformationObject(a, _element(type_id, value,
                                                    flag))
                      for a in addresses)),
    st.sampled_from([TypeID.M_ME_NC_1, TypeID.M_ME_TF_1,
                     TypeID.M_SP_NA_1, TypeID.M_DP_NA_1]),
    _CAUSES,
    st.lists(st.integers(min_value=1, max_value=250), min_size=1,
             max_size=12, unique=True),
    st.floats(width=32, allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.booleans(),
    st.integers(min_value=1, max_value=255),
)


class TestAsduProfileProperties:
    @settings(max_examples=120)
    @given(asdu=_ASDUS, profile=_PROFILES)
    def test_roundtrip_under_any_profile(self, asdu, profile):
        decoded = ASDU.decode(asdu.encode(profile), profile)
        assert decoded.type_id == asdu.type_id
        assert decoded.cause == asdu.cause
        assert [o.address for o in decoded.objects] \
            == [o.address for o in asdu.objects]

    @settings(max_examples=80)
    @given(asdu=_ASDUS, profile=_PROFILES,
           seq=st.integers(min_value=0, max_value=(1 << 15) - 1))
    def test_tolerant_parser_decodes_any_profile(self, asdu, profile,
                                                 seq):
        """Every frame decodes, and the chosen interpretation is
        byte-exact (re-encoding reproduces the input).

        A single frame can be genuinely ambiguous between profiles
        (e.g. zero-filled payloads), so exact address recovery is only
        guaranteed when the parser picked the original profile — which
        it must for multi-object frames, whose length structure is
        discriminating.
        """
        frame = IFrame(asdu=asdu, send_seq=seq).encode(profile)
        parser = TolerantParser()
        result = parser.parse_frame(frame, link_key="x")
        assert result.ok
        recovered = result.apdu
        assert recovered.encode(result.profile) == frame
        if result.profile == profile:
            assert [o.address for o in recovered.asdu.objects] \
                == [o.address for o in asdu.objects]

    @settings(max_examples=60)
    @given(asdu=_ASDUS, profile=_PROFILES,
           seq=st.integers(min_value=0, max_value=(1 << 15) - 1))
    def test_multi_object_frames_disambiguate(self, asdu, profile,
                                              seq):
        """With >= 3 information objects the element-size arithmetic
        pins the profile: addresses are recovered exactly."""
        if len(asdu.objects) < 3:
            return
        frame = IFrame(asdu=asdu, send_seq=seq).encode(profile)
        result = TolerantParser().parse_frame(frame, link_key="x")
        assert result.ok
        assert [o.address for o in result.apdu.asdu.objects] \
            == [o.address for o in asdu.objects]


class TestStreamProperties:
    @settings(max_examples=60)
    @given(asdus=st.lists(_ASDUS, min_size=1, max_size=8),
           profile=_PROFILES)
    def test_concatenated_frames_split_exactly(self, asdus, profile):
        stream = b"".join(
            IFrame(asdu=asdu, send_seq=i).encode(profile)
            for i, asdu in enumerate(asdus))
        frames, remainder = split_frames(stream)
        assert len(frames) == len(asdus)
        assert remainder == b""


#: A valid on-the-wire APDU of any format, under any profile.
_WIRE_FRAMES = st.one_of(
    st.builds(lambda asdu, profile, seq:
              IFrame(asdu=asdu, send_seq=seq).encode(profile),
              _ASDUS, _PROFILES,
              st.integers(min_value=0, max_value=(1 << 15) - 1)),
    st.builds(lambda seq: SFrame(recv_seq=seq).encode(),
              st.integers(min_value=0, max_value=(1 << 15) - 1)),
    st.builds(lambda function: UFrame(function).encode(),
              st.sampled_from(list(UFunction))),
)


class TestVectorizedScanProperties:
    """The batch splitter (`scan_apci`) must agree byte-for-byte with
    the scalar `split_frames` on *any* byte stream — including the
    paper's Fig. 7 pathologies: truncated tails, lost framing
    (non-0x68 garbage), and frames sliced mid-APCI."""

    @settings(max_examples=150)
    @given(frames=st.lists(_WIRE_FRAMES, max_size=6),
           garbage=st.binary(max_size=16),
           cut=st.integers(min_value=0, max_value=24))
    def test_scan_matches_scalar_split_on_any_tail(self, frames,
                                                   garbage, cut):
        payload = b"".join(frames) + garbage
        payload = payload[:max(0, len(payload) - cut)]
        expected_frames, remainder = split_frames(payload)
        spans, stop = scan_apci(payload)
        assert [payload[start:start + total]
                for start, total, _kind in spans] == expected_frames
        assert payload[stop:] == remainder
        for start, total, kind in spans:
            low = (payload[start + 2] & 0x03) if total > 2 else 0
            assert kind == (low if low & 0x01 else SPAN_I)

    @settings(max_examples=60)
    @given(kinds=st.lists(st.sampled_from(["i", "s", "u"]),
                          min_size=1, max_size=8),
           seq=st.integers(min_value=0, max_value=(1 << 15) - 1))
    def test_span_kinds_classify_without_decoding(self, kinds, seq):
        asdu = ASDU(type_id=TypeID.M_SP_NA_1, cause=Cause.SPONTANEOUS,
                    common_address=1,
                    objects=(InformationObject(
                        1, SinglePoint(value=True)),))
        payload = b""
        expected = []
        for index, kind in enumerate(kinds):
            if kind == "i":
                payload += IFrame(
                    asdu=asdu,
                    send_seq=(seq + index) % (1 << 15)).encode()
                expected.append(SPAN_I)
            elif kind == "s":
                payload += SFrame(recv_seq=seq).encode()
                expected.append(SPAN_S)
            else:
                payload += UFrame(UFunction.TESTFR_ACT).encode()
                expected.append(SPAN_U)
        spans, stop = scan_apci(payload)
        assert stop == len(payload)
        assert [kind for _start, _total, kind in spans] == expected

    @settings(max_examples=60)
    @given(frames=st.lists(_WIRE_FRAMES, min_size=1, max_size=5),
           limit=st.integers(min_value=1, max_value=3),
           offset_frames=st.integers(min_value=0, max_value=2))
    def test_offset_and_limit_window_the_scan(self, frames, limit,
                                              offset_frames):
        payload = b"".join(frames)
        skip = min(offset_frames, len(frames))
        offset = sum(len(frame) for frame in frames[:skip])
        spans, stop = scan_apci(payload, offset, limit)
        expected = frames[skip:skip + limit]
        assert [payload[start:start + total]
                for start, total, _kind in spans] == expected
        assert stop == offset + sum(len(frame) for frame in expected)


class TestFt12Properties:
    @settings(max_examples=80)
    @given(asdu=_ASDUS,
           address=st.integers(min_value=0, max_value=255),
           fcb=st.booleans())
    def test_variable_frame_roundtrip(self, asdu, address, fcb):
        from repro.iec104.iec101 import IEC101_PROFILE, decode_frame
        # Constrain to fields representable in IEC 101 widths.
        if any(o.address > IEC101_PROFILE.max_ioa
               for o in asdu.objects):
            return
        control = LinkControl(function=3, prm=True, fcb=fcb, fcv=True)
        raw = encode_variable(control, address, asdu)
        frame, consumed = decode_frame(raw)
        assert consumed == len(raw)
        assert frame.control == control
        assert frame.address == address
        assert frame.decode_asdu().type_id == asdu.type_id

    @settings(max_examples=40)
    @given(st.lists(st.sampled_from(["ack", "fixed", "var"]),
                    min_size=1, max_size=10),
           st.integers(min_value=1, max_value=9),
           st.binary(max_size=4))
    def test_serial_line_any_segmentation(self, kinds, chunk, noise):
        frames_sent = []
        # Leading line noise must not contain octets that could start
        # (or be mistaken for) a frame — serial resync is inherently
        # heuristic about those.
        noise = bytes(b for b in noise if b not in (0xE5, 0x10, 0x68))
        stream = bytearray(noise)
        for kind in kinds:
            if kind == "ack":
                stream += encode_ack()
            elif kind == "fixed":
                stream += encode_fixed(LinkControl(function=9), 7)
            else:
                asdu = ASDU(type_id=TypeID.M_SP_NA_1,
                            cause=Cause.SPONTANEOUS, common_address=1,
                            objects=(InformationObject(
                                5, SinglePoint(value=True)),))
                stream += encode_variable(LinkControl(function=3), 7,
                                          asdu)
            frames_sent.append(kind)
        line = SerialLine()
        decoded = []
        for index in range(0, len(stream), chunk):
            decoded.extend(line.feed(bytes(stream[index:index + chunk])))
        assert len(decoded) == len(frames_sent)


class TestMachineInterleaving:
    @settings(max_examples=30)
    @given(st.lists(st.sampled_from(["i", "s", "testfr"]), min_size=1,
                    max_size=60),
           st.integers(min_value=0, max_value=(1 << 31) - 1))
    def test_random_outstation_traffic_never_desyncs(self, script,
                                                     seed):
        """An outstation driven by a random send script and a server
        that acknowledges per protocol never violate sequencing."""
        rng = random.Random(seed)
        server = ConnectionMachine(is_controlling=True)
        outstation = ConnectionMachine(is_controlling=False)
        server.connection_opened(0.0)
        outstation.connection_opened(0.0)
        act = server.start_transfer()
        server.on_send(act, 0.0)
        for action in outstation.on_receive(act, 0.0):
            pass
        con = UFrame(UFunction.STARTDT_CON)
        outstation.on_send(con, 0.0)
        server.on_receive(con, 0.0)

        now = 1.0
        for step in script:
            now += rng.random()
            if step == "i":
                if not outstation.can_send_i:
                    continue
                asdu = ASDU(type_id=TypeID.M_SP_NA_1,
                            cause=Cause.SPONTANEOUS, common_address=1,
                            objects=(InformationObject(
                                1, SinglePoint(value=True)),))
                frame = outstation.next_i_frame(asdu)
                outstation.on_send(frame, now)
                for action in server.on_receive(frame, now):
                    if action.kind.name == "SEND_S_ACK":
                        ack = SFrame(recv_seq=action.recv_seq)
                        server.on_send(ack, now)
                        outstation.on_receive(ack, now)
            elif step == "s":
                ack = SFrame(recv_seq=server.recv_seq)
                server.on_send(ack, now)
                outstation.on_receive(ack, now)
            else:
                testfr = UFrame(UFunction.TESTFR_ACT)
                server.on_send(testfr, now)
                for action in outstation.on_receive(testfr, now):
                    reply = UFrame(UFunction.TESTFR_CON)
                    outstation.on_send(reply, now)
                    server.on_receive(reply, now)
        # Invariants: windows respected, counters consistent.
        assert 0 <= outstation.unacked_sent <= outstation.k
        assert server.recv_seq == outstation.send_seq
