"""ASDU model and codec tests, including legacy link profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.iec104.asdu import ASDU, InformationObject, measurement
from repro.iec104.constants import Cause, TypeID
from repro.iec104.errors import (InvalidIOAError, MalformedASDUError,
                                 UnknownTypeIDError)
from repro.iec104.information_elements import (InterrogationCommand,
                                               ShortFloat, SinglePoint)
from repro.iec104.profiles import (LEGACY_COT_PROFILE, LEGACY_IOA_PROFILE,
                                   STANDARD_PROFILE, LinkProfile)


def float_asdu(*addresses, cause=Cause.SPONTANEOUS, sequential=False):
    objects = tuple(InformationObject(a, ShortFloat(value=float(a)))
                    for a in addresses)
    return ASDU(type_id=TypeID.M_ME_NC_1, cause=cause, common_address=7,
                objects=objects, sequential=sequential)


class TestRoundtrip:
    def test_single_object(self):
        asdu = float_asdu(2001)
        assert ASDU.decode(asdu.encode()) == asdu

    def test_multi_object(self):
        asdu = float_asdu(2001, 2005, 9000)
        decoded = ASDU.decode(asdu.encode())
        assert [o.address for o in decoded.objects] == [2001, 2005, 9000]

    def test_sequential(self):
        asdu = float_asdu(100, 101, 102, sequential=True)
        encoded = asdu.encode()
        decoded = ASDU.decode(encoded)
        assert decoded.sequential
        assert [o.address for o in decoded.objects] == [100, 101, 102]
        # Sequential encoding carries the IOA once: it must be smaller.
        non_seq = float_asdu(100, 101, 102)
        assert len(encoded) < len(non_seq.encode())

    def test_negative_and_test_bits(self):
        asdu = ASDU(type_id=TypeID.C_IC_NA_1, cause=Cause.ACTIVATION_CON,
                    common_address=1,
                    objects=(InformationObject(0, InterrogationCommand()),),
                    negative=True, test=True)
        decoded = ASDU.decode(asdu.encode())
        assert decoded.negative and decoded.test

    def test_originator_roundtrip(self):
        asdu = ASDU(type_id=TypeID.M_SP_NA_1, cause=Cause.SPONTANEOUS,
                    common_address=3,
                    objects=(InformationObject(5, SinglePoint(True)),),
                    originator=42)
        assert ASDU.decode(asdu.encode()).originator == 42

    @given(st.lists(st.integers(min_value=1, max_value=2 ** 24 - 1),
                    min_size=1, max_size=20, unique=True))
    def test_roundtrip_property(self, addresses):
        asdu = float_asdu(*addresses)
        decoded = ASDU.decode(asdu.encode())
        assert [o.address for o in decoded.objects] == addresses


class TestProfiles:
    @pytest.mark.parametrize("profile", [
        STANDARD_PROFILE, LEGACY_COT_PROFILE, LEGACY_IOA_PROFILE,
        LinkProfile(cot_length=1, ioa_length=2),
    ])
    def test_roundtrip_under_profile(self, profile):
        asdu = float_asdu(100, 200)
        assert ASDU.decode(asdu.encode(profile), profile) == asdu

    def test_legacy_cot_is_one_octet_shorter_plus(self):
        asdu = float_asdu(100)
        standard = asdu.encode(STANDARD_PROFILE)
        legacy = asdu.encode(LEGACY_COT_PROFILE)
        assert len(standard) - len(legacy) == 1

    def test_legacy_ioa_shrinks_per_object(self):
        asdu = float_asdu(100, 200, 300)
        standard = asdu.encode(STANDARD_PROFILE)
        legacy = asdu.encode(LEGACY_IOA_PROFILE)
        assert len(standard) - len(legacy) == 3  # one octet per IOA

    def test_cross_profile_decode_fails(self):
        """A Wireshark-like standard decode of a legacy frame must fail
        (the paper's Section 6.1 observation)."""
        asdu = float_asdu(100, 200)
        with pytest.raises(MalformedASDUError):
            ASDU.decode(asdu.encode(LEGACY_COT_PROFILE), STANDARD_PROFILE)

    def test_ioa_exceeding_profile_rejected(self):
        asdu = float_asdu(70000)  # needs 3 octets
        with pytest.raises(InvalidIOAError):
            asdu.encode(LEGACY_IOA_PROFILE)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LinkProfile(cot_length=3)
        with pytest.raises(ValueError):
            LinkProfile(ioa_length=4)

    def test_profile_describe(self):
        assert "standard" in STANDARD_PROFILE.describe()
        assert "COT=1" in LEGACY_COT_PROFILE.describe()
        assert "IOA=2" in LEGACY_IOA_PROFILE.describe()


class TestValidation:
    def test_empty_objects_rejected(self):
        with pytest.raises(MalformedASDUError):
            ASDU(type_id=TypeID.M_ME_NC_1, cause=Cause.SPONTANEOUS,
                 common_address=1, objects=())

    def test_too_many_objects_rejected(self):
        objects = tuple(InformationObject(i + 1, ShortFloat(value=0.0))
                        for i in range(128))
        with pytest.raises(MalformedASDUError):
            ASDU(type_id=TypeID.M_ME_NC_1, cause=Cause.SPONTANEOUS,
                 common_address=1, objects=objects)

    def test_wrong_element_type_rejected(self):
        with pytest.raises(MalformedASDUError):
            ASDU(type_id=TypeID.M_SP_NA_1, cause=Cause.SPONTANEOUS,
                 common_address=1,
                 objects=(InformationObject(1, ShortFloat(value=0.0)),))

    def test_sequential_requires_consecutive(self):
        with pytest.raises(MalformedASDUError):
            float_asdu(10, 12, sequential=True)

    def test_negative_ioa_rejected(self):
        with pytest.raises(InvalidIOAError):
            InformationObject(-1, ShortFloat(value=0.0))


class TestDecodeErrors:
    def test_unknown_type_id(self):
        raw = bytearray(float_asdu(100).encode())
        raw[0] = 2  # typeID 2 is not part of IEC 104
        with pytest.raises(UnknownTypeIDError):
            ASDU.decode(bytes(raw))

    def test_zero_object_count(self):
        raw = bytearray(float_asdu(100).encode())
        raw[1] = 0
        with pytest.raises(MalformedASDUError):
            ASDU.decode(bytes(raw))

    def test_invalid_cause(self):
        raw = bytearray(float_asdu(100).encode())
        raw[2] = 63  # not a defined cause
        with pytest.raises(MalformedASDUError):
            ASDU.decode(bytes(raw))

    def test_trailing_bytes_reported(self):
        raw = float_asdu(100).encode() + b"\x00\x01"
        with pytest.raises(MalformedASDUError) as info:
            ASDU.decode(raw)
        assert info.value.trailing == 2

    def test_truncated_header(self):
        with pytest.raises(MalformedASDUError):
            ASDU.decode(b"\x0d\x01\x03")

    def test_truncated_ioa(self):
        raw = float_asdu(100).encode()
        with pytest.raises(MalformedASDUError):
            ASDU.decode(raw[:7])


class TestConvenience:
    def test_measurement_helper(self):
        asdu = measurement(TypeID.M_ME_NC_1, 2001, ShortFloat(value=1.0))
        assert asdu.cause is Cause.SPONTANEOUS
        assert asdu.objects[0].address == 2001

    def test_token(self):
        assert float_asdu(1).token == "I13"
        asdu = measurement(TypeID.C_IC_NA_1, 0, InterrogationCommand())
        assert asdu.token == "I100"

    def test_is_command(self):
        assert measurement(TypeID.C_IC_NA_1, 0,
                           InterrogationCommand()).is_command
        assert not float_asdu(1).is_command
