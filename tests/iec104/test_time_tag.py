"""CP56Time2a / CP16Time2a encoding tests."""

import pytest
from hypothesis import given, strategies as st

from repro.iec104.errors import MalformedASDUError
from repro.iec104.time_tag import CP16Time2a, CP56Time2a


class TestCP56Roundtrip:
    def test_encode_size(self):
        assert len(CP56Time2a().encode()) == 7

    def test_roundtrip_simple(self):
        tag = CP56Time2a(milliseconds=45123, minute=12, hour=9,
                         day_of_month=17, day_of_week=3, month=6, year=21)
        assert CP56Time2a.decode(tag.encode()) == tag

    def test_roundtrip_flags(self):
        tag = CP56Time2a(invalid=True, summer_time=True)
        decoded = CP56Time2a.decode(tag.encode())
        assert decoded.invalid and decoded.summer_time

    def test_decode_at_offset(self):
        tag = CP56Time2a(minute=5)
        data = b"\xff\xff" + tag.encode()
        assert CP56Time2a.decode(data, offset=2) == tag

    def test_truncated_raises(self):
        with pytest.raises(MalformedASDUError):
            CP56Time2a.decode(b"\x00\x01\x02")

    @given(st.floats(min_value=0.0, max_value=3.0e9,
                     allow_nan=False, allow_infinity=False))
    def test_from_seconds_roundtrip(self, seconds):
        tag = CP56Time2a.from_seconds(seconds)
        # Millisecond quantization is the only loss allowed.
        assert abs(tag.to_seconds() - seconds) < 0.001

    @given(st.floats(min_value=0.0, max_value=3.0e9, allow_nan=False),
           st.floats(min_value=0.0, max_value=3.0e9, allow_nan=False))
    def test_from_seconds_monotonic(self, a, b):
        low, high = min(a, b), max(a, b)
        assert (CP56Time2a.from_seconds(low)
                <= CP56Time2a.from_seconds(high))

    def test_from_seconds_rejects_negative(self):
        with pytest.raises(ValueError):
            CP56Time2a.from_seconds(-1.0)

    def test_from_seconds_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CP56Time2a.from_seconds(4e9)  # year > 99


class TestCP56Validation:
    @pytest.mark.parametrize("field,value", [
        ("milliseconds", 60000), ("milliseconds", -1),
        ("minute", 60), ("hour", 24), ("day_of_month", 0),
        ("day_of_month", 32), ("month", 0), ("month", 13),
        ("year", 100), ("day_of_week", 8),
    ])
    def test_out_of_range_fields(self, field, value):
        with pytest.raises(ValueError):
            CP56Time2a(**{field: value})

    def test_ordering(self):
        early = CP56Time2a(minute=1)
        late = CP56Time2a(minute=2)
        assert early < late

    def test_decode_masks_reserved_bits(self):
        # Octet 6 (month) high nibble is reserved; it must be ignored.
        tag = CP56Time2a(month=5)
        raw = bytearray(tag.encode())
        raw[5] |= 0xF0
        assert CP56Time2a.decode(bytes(raw)).month == 5


class TestCP16:
    def test_roundtrip(self):
        tag = CP16Time2a(milliseconds=31999)
        assert CP16Time2a.decode(tag.encode()) == tag

    def test_bounds(self):
        with pytest.raises(ValueError):
            CP16Time2a(milliseconds=60000)

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(MalformedASDUError):
            CP16Time2a.decode(b"\xff\xff")

    def test_truncated(self):
        with pytest.raises(MalformedASDUError):
            CP16Time2a.decode(b"\x01")
