"""Endpoints over real OS sockets."""

import socket
import threading

import pytest

from repro.iec104.constants import Cause, TypeID
from repro.iec104.endpoint import OutstationEndpoint
from repro.iec104.information_elements import SetpointFloat, ShortFloat
from repro.iec104.socket_transport import (SocketTransport,
                                           connect_master,
                                           serve_outstation,
                                           socketpair_endpoints)


class TestSocketpair:
    def test_full_conversation(self):
        master, outstation, pump = socketpair_endpoints()
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=59.98))
        master.start_data_transfer()
        pump()
        assert master.started and outstation.started

        master.interrogate()
        pump()
        assert [m.ioa for m in master.measurements] == [2001]

        outstation.update_point(2001, ShortFloat(value=60.01))
        pump()
        assert master.measurements[-1].cause is Cause.SPONTANEOUS

        master.send_command(TypeID.C_SE_NC_1, 100,
                            SetpointFloat(value=42.0))
        pump()
        assert master.stats.received_i >= 3

    def test_byte_accounting(self):
        master, outstation, pump = socketpair_endpoints()
        master.start_data_transfer()
        pump()
        assert master.transport.bytes_sent == 6      # STARTDT act
        assert master.transport.bytes_received == 6  # STARTDT con

    def test_closed_transport_raises(self):
        master, _, pump = socketpair_endpoints()
        master.transport.close()
        with pytest.raises(OSError):
            master.send_test_frame()


class TestRealTcp:
    def test_master_connects_over_loopback(self):
        ready = threading.Event()
        bound = {}

        def note_port(port):
            bound["port"] = port
            ready.set()

        result = {}

        def server():
            outstation = serve_outstation(
                lambda transport: OutstationEndpoint(transport),
                port=0, ready=note_port)
            outstation.define_point(1, TypeID.M_ME_NC_1,
                                    ShortFloat(value=1.25))
            outstation.transport.pump_until_idle(timeout=0.2)
            result["outstation"] = outstation

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        assert ready.wait(5.0)
        master = connect_master(port=bound["port"])
        master.start_data_transfer()
        master.transport.pump_until_idle(timeout=0.2)
        thread.join(5.0)
        assert master.started
        assert result["outstation"].started
        master.transport.close()

    def test_pump_timeout_returns_zero(self):
        left, right = socket.socketpair()
        transport = SocketTransport(left)
        assert transport.pump(timeout=0.01) == 0
        left.close(), right.close()

    def test_peer_close_raises(self):
        left, right = socket.socketpair()
        transport = SocketTransport(left)
        right.close()
        with pytest.raises(ConnectionError):
            transport.pump(timeout=0.5)

    def test_receive_size_validation(self):
        left, right = socket.socketpair()
        with pytest.raises(ValueError):
            SocketTransport(left, receive_size=0)
        left.close(), right.close()
