"""High-level master/outstation endpoint tests."""

import pytest

from repro.iec104.constants import Cause, ProtocolTimers, TypeID
from repro.iec104.endpoint import (MasterEndpoint, OutstationEndpoint,
                                   PipeTransport, connect_pair)
from repro.iec104.errors import IEC104Error, StateError
from repro.iec104.information_elements import (DoublePoint, SetpointFloat,
                                               ShortFloat, SinglePoint)
from repro.iec104.profiles import LEGACY_COT_PROFILE
from repro.iec104.time_tag import CP56Time2a


def started_pair(**kwargs):
    master, outstation, pump = connect_pair(**kwargs)
    master.start_data_transfer()
    pump()
    assert master.started and outstation.started
    return master, outstation, pump


class TestStartStop:
    def test_startdt_handshake(self):
        master, outstation, pump = connect_pair()
        assert not master.started
        master.start_data_transfer()
        pump()
        assert master.started and outstation.started

    def test_stopdt(self):
        master, outstation, pump = started_pair()
        master.stop_data_transfer()
        pump()
        assert not master.started and not outstation.started

    def test_testfr_answered(self):
        master, outstation, pump = started_pair()
        master.send_test_frame()
        pump()
        assert outstation.stats.received_u >= 1
        assert master.stats.received_u >= 2  # STARTDT con + TESTFR con


class TestPointDatabase:
    def test_define_and_count(self):
        _, outstation, _ = connect_pair()[0], None, None
        transport, _ = PipeTransport.pair()
        outstation = OutstationEndpoint(transport)
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=1.0))
        outstation.define_point(2002, TypeID.M_SP_NA_1,
                                SinglePoint(value=False))
        assert outstation.point_count == 2

    def test_define_wrong_element_type(self):
        transport, _ = PipeTransport.pair()
        outstation = OutstationEndpoint(transport)
        with pytest.raises(TypeError):
            outstation.define_point(1, TypeID.M_SP_NA_1,
                                    ShortFloat(value=1.0))

    def test_update_unknown_point(self):
        transport, _ = PipeTransport.pair()
        outstation = OutstationEndpoint(transport)
        with pytest.raises(KeyError):
            outstation.update_point(99, ShortFloat(value=1.0))

    def test_update_before_start_is_silent(self):
        master, outstation, pump = connect_pair()
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=1.0))
        sent = outstation.update_point(2001, ShortFloat(value=2.0))
        pump()
        assert not sent
        assert master.measurements == []


class TestReporting:
    def test_spontaneous_report_reaches_master(self):
        master, outstation, pump = started_pair()
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=59.97))
        assert outstation.update_point(2001, ShortFloat(value=60.02))
        pump()
        assert len(master.measurements) == 1
        measurement = master.measurements[0]
        assert measurement.ioa == 2001
        assert measurement.cause is Cause.SPONTANEOUS
        assert measurement.element.value == pytest.approx(60.02)

    def test_master_acknowledges_after_w(self):
        master, outstation, pump = started_pair()
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=0.0))
        for index in range(10):
            outstation.update_point(2001,
                                    ShortFloat(value=float(index)))
            pump()
        assert master.stats.sent_s >= 1
        assert outstation.machine.unacked_sent < 10

    def test_measurement_callback(self):
        received = []
        master, outstation, pump = connect_pair()
        master.on_measurement = received.append
        master.start_data_transfer()
        pump()
        outstation.define_point(1, TypeID.M_SP_NA_1,
                                SinglePoint(value=False))
        outstation.update_point(1, SinglePoint(value=True))
        pump()
        assert len(received) == 1 and received[0].element.value is True


class TestInterrogation:
    def test_full_cycle(self):
        master, outstation, pump = started_pair()
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=1.5))
        outstation.define_point(2002, TypeID.M_ME_NC_1,
                                ShortFloat(value=2.5))
        outstation.define_point(3001, TypeID.M_DP_NA_1,
                                DoublePoint(state=2))
        master.interrogate()
        pump()
        assert master.interrogation_progress == [
            Cause.ACTIVATION_CON, Cause.ACTIVATION_TERMINATION]
        assert {m.ioa for m in master.measurements} \
            == {2001, 2002, 3001}
        assert all(m.cause is Cause.INTERROGATED_BY_STATION
                   for m in master.measurements)

    def test_many_points_chunked(self):
        master, outstation, pump = started_pair()
        for ioa in range(2001, 2031):
            outstation.define_point(ioa, TypeID.M_ME_NC_1,
                                    ShortFloat(value=float(ioa)))
        master.interrogate()
        pump()
        assert len(master.measurements) == 30

    def test_interrogate_requires_start(self):
        master, _, _ = connect_pair()
        with pytest.raises(StateError):
            master.interrogate()


class TestCommands:
    def test_setpoint_confirmed_and_delivered(self):
        commands = []
        master, outstation, pump = started_pair()
        outstation.on_command = commands.append
        master.send_command(TypeID.C_SE_NC_1, 100,
                            SetpointFloat(value=250.5))
        pump()
        assert len(commands) == 1
        assert commands[0].objects[0].element.value \
            == pytest.approx(250.5)
        # The master got the mirrored activation confirmation.
        assert master.stats.received_i >= 1

    def test_command_requires_start(self):
        master, _, _ = connect_pair()
        with pytest.raises(StateError):
            master.send_command(TypeID.C_SE_NC_1, 1,
                                SetpointFloat(value=1.0))


class TestLegacyProfiles:
    def test_mismatched_profiles_interoperate(self):
        """A legacy-COT outstation behind a tolerant master — §6.1."""
        master, outstation, pump = started_pair(
            outstation_profile=LEGACY_COT_PROFILE)
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=132.6))
        outstation.update_point(2001, ShortFloat(value=133.0))
        pump()
        assert master.measurements[0].element.value \
            == pytest.approx(133.0)


class TestTimers:
    def test_idle_master_sends_testfr(self):
        timers = ProtocolTimers(t3=5.0)
        master, outstation, pump = started_pair(timers=timers)
        sent_u_before = master.stats.sent_u
        master.tick(20.0)
        pump()
        assert master.stats.sent_u > sent_u_before

    def test_unanswered_testfr_requests_close(self):
        closed = []
        timers = ProtocolTimers(t1=10.0, t2=5.0, t3=5.0)
        a, _ = PipeTransport.pair()  # peer never answers
        master = MasterEndpoint(a, timers=timers)
        master.on_close_request = lambda: closed.append(True)
        master.tick(6.0)   # T3 -> TESTFR act (never answered)
        master.tick(17.0)  # T1 expiry
        assert closed == [True]
        assert master.closed
        with pytest.raises(IEC104Error):
            master.send_test_frame()

    def test_time_cannot_go_backwards(self):
        master, _, _ = connect_pair()
        master.tick(5.0)
        with pytest.raises(ValueError):
            master.tick(1.0)
