"""Information element codec tests: every typeID round-trips."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.iec104.constants import TypeID
from repro.iec104.errors import MalformedASDUError
from repro.iec104.information_elements import (
    ELEMENT_CODECS, AckFile, Bitstring32, Bitstring32Command, CallFile,
    ClockSyncCommand, CounterInterrogationCommand, Directory,
    DoubleCommand, DoublePoint, EndOfInitialization, FileReady,
    IntegratedTotals, InterrogationCommand, LastSection, NormalizedValue,
    PackedSinglePoints, ParameterActivation, ParameterFloat,
    ParameterNormalized, ParameterScaled, ProtectionEvent,
    ProtectionOutputCircuit, ProtectionStartEvents, Quality, QueryLog,
    ReadCommand, RegulatingStep, ResetProcessCommand, ScaledValue,
    SectionReady, Segment, SetpointFloat, SetpointNormalized,
    SetpointScaled, ShortFloat, SingleCommand, SinglePoint, StepPosition,
    TestCommand, codec_for, strip_time, with_time)
from repro.iec104.time_tag import CP16Time2a, CP56Time2a

TAG = CP56Time2a(milliseconds=1234, minute=5, hour=6, day_of_month=7,
                 month=8, year=20)

#: One representative element per typeID.
SAMPLES = {
    TypeID.M_SP_NA_1: SinglePoint(value=True),
    TypeID.M_DP_NA_1: DoublePoint(state=2),
    TypeID.M_ST_NA_1: StepPosition(value=-17, transient=True),
    TypeID.M_BO_NA_1: Bitstring32(bits=0xDEADBEEF),
    TypeID.M_ME_NA_1: NormalizedValue(value=0.5),
    TypeID.M_ME_NB_1: ScaledValue(value=-1234),
    TypeID.M_ME_NC_1: ShortFloat(value=59.97),
    TypeID.M_IT_NA_1: IntegratedTotals(counter=-99999, sequence=7,
                                       carry=True),
    TypeID.M_PS_NA_1: PackedSinglePoints(status=0xAAAA, change=0x0F0F),
    TypeID.M_ME_ND_1: NormalizedValue(value=-0.25),
    TypeID.M_SP_TB_1: SinglePoint(value=False, time=TAG),
    TypeID.M_DP_TB_1: DoublePoint(state=1, time=TAG),
    TypeID.M_ST_TB_1: StepPosition(value=63, time=TAG),
    TypeID.M_BO_TB_1: Bitstring32(bits=1, time=TAG),
    TypeID.M_ME_TD_1: NormalizedValue(value=0.125, time=TAG),
    TypeID.M_ME_TE_1: ScaledValue(value=32767, time=TAG),
    TypeID.M_ME_TF_1: ShortFloat(value=-0.5, time=TAG),
    TypeID.M_IT_TB_1: IntegratedTotals(counter=42, time=TAG),
    TypeID.M_EP_TD_1: ProtectionEvent(event_state=2,
                                      elapsed=CP16Time2a(100), time=TAG),
    TypeID.M_EP_TE_1: ProtectionStartEvents(start_events=0x15,
                                            duration=CP16Time2a(5),
                                            time=TAG),
    TypeID.M_EP_TF_1: ProtectionOutputCircuit(output_circuits=0x9,
                                              operating_time=CP16Time2a(9),
                                              time=TAG),
    TypeID.C_SC_NA_1: SingleCommand(state=True, qualifier=3, select=True),
    TypeID.C_DC_NA_1: DoubleCommand(state=2, qualifier=1),
    TypeID.C_RC_NA_1: RegulatingStep(step=1, qualifier=2),
    TypeID.C_SE_NA_1: SetpointNormalized(value=-0.75, ql=5),
    TypeID.C_SE_NB_1: SetpointScaled(value=100, select=True),
    TypeID.C_SE_NC_1: SetpointFloat(value=250.5, ql=1),
    TypeID.C_BO_NA_1: Bitstring32Command(bits=0x12345678),
    TypeID.C_SC_TA_1: SingleCommand(state=False, time=TAG),
    TypeID.C_DC_TA_1: DoubleCommand(state=1, time=TAG),
    TypeID.C_RC_TA_1: RegulatingStep(step=2, time=TAG),
    TypeID.C_SE_TA_1: SetpointNormalized(value=0.0, time=TAG),
    TypeID.C_SE_TB_1: SetpointScaled(value=-5, time=TAG),
    TypeID.C_SE_TC_1: SetpointFloat(value=-1.5, time=TAG),
    TypeID.C_BO_TA_1: Bitstring32Command(bits=7, time=TAG),
    TypeID.M_EI_NA_1: EndOfInitialization(cause=2,
                                          after_parameter_change=True),
    TypeID.C_IC_NA_1: InterrogationCommand(qoi=20),
    TypeID.C_CI_NA_1: CounterInterrogationCommand(request=5, freeze=1),
    TypeID.C_RD_NA_1: ReadCommand(),
    TypeID.C_CS_NA_1: ClockSyncCommand(time=TAG),
    TypeID.C_RP_NA_1: ResetProcessCommand(qrp=1),
    TypeID.C_TS_TA_1: TestCommand(counter=0xABCD, time=TAG),
    TypeID.P_ME_NA_1: ParameterNormalized(value=0.25, qpm=3),
    TypeID.P_ME_NB_1: ParameterScaled(value=77, qpm=2),
    TypeID.P_ME_NC_1: ParameterFloat(value=3.25, qpm=1),
    TypeID.P_AC_NA_1: ParameterActivation(qpa=2),
    TypeID.F_FR_NA_1: FileReady(file_name=10, file_length=0xABCDE,
                                qualifier=1),
    TypeID.F_SR_NA_1: SectionReady(file_name=10, section=2,
                                   section_length=500),
    TypeID.F_SC_NA_1: CallFile(file_name=10, section=1, qualifier=2),
    TypeID.F_LS_NA_1: LastSection(file_name=10, section=3, qualifier=1,
                                  checksum=0x7F),
    TypeID.F_AF_NA_1: AckFile(file_name=10, section=3, qualifier=3),
    TypeID.F_SG_NA_1: Segment(file_name=10, section=3,
                              data=b"hello segment"),
    TypeID.F_DR_TA_1: Directory(file_name=10, file_length=99, status=1,
                                time=TAG),
    TypeID.F_SC_NB_1: QueryLog(file_name=10, start=TAG, stop=TAG),
}


def test_sample_catalog_is_complete():
    assert set(SAMPLES) == set(ELEMENT_CODECS)
    assert len(ELEMENT_CODECS) == 54


@pytest.mark.parametrize("type_id", sorted(ELEMENT_CODECS),
                         ids=lambda t: t.name)
def test_roundtrip_every_type_id(type_id):
    codec = codec_for(type_id)
    element = SAMPLES[type_id]
    encoded = codec.encode(element)
    if codec.size is not None:
        assert len(encoded) == codec.size
    decoded, consumed = codec.decode(memoryview(encoded), 0)
    assert consumed == len(encoded)
    if isinstance(element, (ShortFloat, SetpointFloat, ParameterFloat)):
        assert math.isclose(decoded.value, element.value, rel_tol=1e-6)
    elif isinstance(element, (NormalizedValue, SetpointNormalized,
                              ParameterNormalized)):
        assert math.isclose(decoded.value, element.value, abs_tol=2e-5)
    else:
        assert decoded == element


@pytest.mark.parametrize("type_id", sorted(ELEMENT_CODECS),
                         ids=lambda t: t.name)
def test_truncated_decode_raises(type_id):
    codec = codec_for(type_id)
    encoded = codec.encode(SAMPLES[type_id])
    if not encoded:
        pytest.skip("zero-size element cannot be truncated")
    with pytest.raises(MalformedASDUError):
        codec.decode(memoryview(encoded[:-1]), 0)


class TestQuality:
    def test_roundtrip_all_bits(self):
        quality = Quality(overflow=True, blocked=True, substituted=True,
                          not_topical=True, invalid=True)
        assert Quality.decode(quality.encode()) == quality

    def test_good_predicate(self):
        assert Quality().good
        assert not Quality(invalid=True).good
        assert not Quality(blocked=True).good
        assert Quality(overflow=True).good  # overflow alone is usable

    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans(),
           st.booleans())
    def test_roundtrip_property(self, ov, bl, sb, nt, iv):
        quality = Quality(overflow=ov, blocked=bl, substituted=sb,
                          not_topical=nt, invalid=iv)
        assert Quality.decode(quality.encode()) == quality


class TestValidation:
    def test_double_point_range(self):
        with pytest.raises(ValueError):
            DoublePoint(state=4)

    def test_step_position_range(self):
        with pytest.raises(ValueError):
            StepPosition(value=64)
        with pytest.raises(ValueError):
            StepPosition(value=-65)

    def test_normalized_range(self):
        with pytest.raises(ValueError):
            NormalizedValue(value=1.5)

    def test_scaled_range(self):
        with pytest.raises(ValueError):
            ScaledValue(value=40000)

    def test_command_qualifier_range(self):
        with pytest.raises(ValueError):
            SingleCommand(state=True, qualifier=32)

    def test_segment_size_limit(self):
        with pytest.raises(ValueError):
            Segment(file_name=1, section=1, data=b"x" * 256)

    def test_timed_codec_requires_time(self):
        codec = codec_for(TypeID.M_ME_TF_1)
        with pytest.raises(ValueError):
            codec.encode(ShortFloat(value=1.0))  # no time tag

    def test_untimed_codec_rejects_time(self):
        codec = codec_for(TypeID.M_ME_NC_1)
        with pytest.raises(ValueError):
            codec.encode(ShortFloat(value=1.0, time=TAG))


class TestTimeHelpers:
    def test_strip_time(self):
        element = ShortFloat(value=2.0, time=TAG)
        assert strip_time(element).time is None

    def test_strip_time_noop(self):
        element = ShortFloat(value=2.0)
        assert strip_time(element) is element

    def test_with_time(self):
        element = with_time(ShortFloat(value=2.0), TAG)
        assert element.time == TAG


class TestFloatProperties:
    @given(st.floats(width=32, allow_nan=False, allow_infinity=False))
    def test_short_float_roundtrip(self, value):
        codec = codec_for(TypeID.M_ME_NC_1)
        encoded = codec.encode(ShortFloat(value=value))
        decoded, _ = codec.decode(memoryview(encoded), 0)
        assert decoded.value == pytest.approx(value, rel=1e-6, abs=1e-38)

    @given(st.integers(min_value=-32768, max_value=32767))
    def test_scaled_roundtrip(self, value):
        codec = codec_for(TypeID.M_ME_NB_1)
        encoded = codec.encode(ScaledValue(value=value))
        decoded, _ = codec.decode(memoryview(encoded), 0)
        assert decoded.value == value

    @given(st.integers(min_value=-32768, max_value=32767))
    def test_normalized_raw_roundtrip(self, raw):
        element = NormalizedValue.from_raw(raw)
        assert element.raw == raw
