"""Capture tap, windows, behaviour validation, network map tests."""

import pytest

from repro.iec104.constants import TypeID
from repro.netstack.addresses import IPv4Address, MacAddress
from repro.netstack.packet import CapturedPacket
from repro.netstack.tcp import SYN, TCPSegment
from repro.simnet.behaviors import (OutstationBehavior, OutstationType,
                                    PointConfig, RejectMode)
from repro.simnet.capture import CaptureTap, CaptureWindow
from repro.simnet.topology import NetworkMap


def packet(t):
    segment = TCPSegment(src_port=1000, dst_port=2404, seq=0, flags=SYN)
    return CapturedPacket.build(t, MacAddress(1), MacAddress(2),
                                IPv4Address(1), IPv4Address(2), segment)


class TestCaptureWindow:
    def test_contains(self):
        window = CaptureWindow(start=10.0, end=20.0)
        assert window.contains(10.0)
        assert window.contains(19.999)
        assert not window.contains(20.0)
        assert not window.contains(9.999)

    def test_duration(self):
        assert CaptureWindow(start=1.0, end=4.0).duration == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CaptureWindow(start=5.0, end=5.0)


class TestCaptureTap:
    def test_no_windows_records_everything(self):
        tap = CaptureTap()
        tap.observe(packet(1.0))
        tap.observe(packet(1e6))
        assert len(tap.packets) == 2

    def test_windows_filter(self):
        tap = CaptureTap(windows=(CaptureWindow(10.0, 20.0),
                                  CaptureWindow(30.0, 40.0)))
        for t in (5.0, 15.0, 25.0, 35.0, 45.0):
            tap.observe(packet(t))
        assert [p.timestamp for p in tap.packets] == [15.0, 35.0]
        assert tap.dropped == 3

    def test_window_packets(self):
        first = CaptureWindow(10.0, 20.0)
        tap = CaptureTap(windows=(first, CaptureWindow(30.0, 40.0)))
        tap.observe(packet(15.0))
        tap.observe(packet(35.0))
        assert len(tap.window_packets(first)) == 1

    def test_total_duration(self):
        tap = CaptureTap(windows=(CaptureWindow(0.0, 5.0),
                                  CaptureWindow(10.0, 12.0)))
        assert tap.total_duration == 7.0

    def test_pcap_export(self, tmp_path):
        import io
        from repro.netstack.pcap import PcapReader
        tap = CaptureTap()
        tap.observe(packet(3.0))
        buffer = io.BytesIO()
        assert tap.to_pcap(buffer) == 1
        buffer.seek(0)
        assert len(list(PcapReader(buffer))) == 1


class TestBehaviors:
    def make_point(self, ioa=1):
        return PointConfig(ioa=ioa, type_id=TypeID.M_ME_NC_1, symbol="P")

    def test_duplicate_ioa_rejected(self):
        with pytest.raises(ValueError):
            OutstationBehavior(name="O1", substation="S1",
                               outstation_type=OutstationType.IDEAL,
                               points=[self.make_point(1),
                                       self.make_point(1)])

    def test_reject_type_requires_mode(self):
        with pytest.raises(ValueError):
            OutstationBehavior(
                name="O1", substation="S1",
                outstation_type=OutstationType.BACKUP_REJECTS)

    def test_sends_i_frames(self):
        primary = OutstationBehavior(
            name="O1", substation="S1",
            outstation_type=OutstationType.IDEAL,
            points=[self.make_point()])
        backup = OutstationBehavior(
            name="O2", substation="S1",
            outstation_type=OutstationType.BACKUP_U_ONLY)
        assert primary.sends_i_frames
        assert not backup.sends_i_frames

    def test_point_validation(self):
        with pytest.raises(ValueError):
            PointConfig(ioa=0, type_id=TypeID.M_ME_NC_1, symbol="P")
        with pytest.raises(ValueError):
            PointConfig(ioa=1, type_id=TypeID.M_ME_NC_1, symbol="P",
                        period=0.0)

    def test_ioa_count(self):
        behavior = OutstationBehavior(
            name="O1", substation="S1",
            outstation_type=OutstationType.IDEAL,
            points=[self.make_point(i) for i in range(1, 6)])
        assert behavior.ioa_count == 5


class TestNetworkMap:
    def test_unique_addresses(self):
        network = NetworkMap()
        hosts = [network.add_server(f"C{i}") for i in range(1, 5)]
        hosts += [network.add_outstation(f"O{i}") for i in range(1, 30)]
        ips = {host.ip for host in hosts}
        macs = {host.mac for host in hosts}
        assert len(ips) == len(hosts)
        assert len(macs) == len(hosts)

    def test_duplicate_name_rejected(self):
        network = NetworkMap()
        network.add_server("C1")
        with pytest.raises(ValueError):
            network.add_server("C1")

    def test_reverse_lookup(self):
        network = NetworkMap()
        host = network.add_outstation("O7")
        assert network.name_of(host.ip) == "O7"
        assert network.name_of(IPv4Address(0xDEADBEEF)) is None

    def test_address_book(self):
        network = NetworkMap()
        network.add_server("C1")
        network.add_outstation("O1")
        book = network.address_book()
        assert set(book.values()) == {"C1", "O1"}
