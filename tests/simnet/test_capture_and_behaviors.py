"""Capture tap, windows, behaviour validation, network map tests."""

import pytest

from repro.iec104.constants import TypeID
from repro.netstack.addresses import IPv4Address, MacAddress
from repro.netstack.packet import CapturedPacket
from repro.netstack.tcp import SYN, TCPSegment
from repro.simnet.behaviors import (OutstationBehavior, OutstationType,
                                    PointConfig, RejectMode)
from repro.simnet.capture import CaptureTap, CaptureWindow
from repro.simnet.topology import NetworkMap


def packet(time_us):
    segment = TCPSegment(src_port=1000, dst_port=2404, seq=0, flags=SYN)
    return CapturedPacket.build(time_us, MacAddress(1), MacAddress(2),
                                IPv4Address(1), IPv4Address(2), segment)


class TestCaptureWindow:
    def test_contains(self):
        window = CaptureWindow(start_us=10_000_000, end_us=20_000_000)
        assert window.contains(10_000_000)
        assert window.contains(19_999_999)
        assert not window.contains(20_000_000)
        assert not window.contains(9_999_999)

    def test_duration(self):
        window = CaptureWindow(start_us=1_000_000, end_us=4_000_000)
        assert window.duration_us == 3_000_000
        assert window.duration == 3.0

    def test_from_seconds(self):
        window = CaptureWindow.from_seconds(10.0, 20.0, label="Y1")
        assert window.start_us == 10_000_000
        assert window.end_us == 20_000_000
        assert window.start == 10.0 and window.end == 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CaptureWindow(start_us=5_000_000, end_us=5_000_000)
        with pytest.raises(TypeError):
            CaptureWindow(start_us=5.0, end_us=6.0)


class TestCaptureTap:
    def test_no_windows_records_everything(self):
        tap = CaptureTap()
        tap.observe(packet(1_000_000))
        tap.observe(packet(10**12))
        assert len(tap.packets) == 2

    def test_windows_filter(self):
        tap = CaptureTap(windows=(
            CaptureWindow(10_000_000, 20_000_000),
            CaptureWindow(30_000_000, 40_000_000)))
        for t in (5, 15, 25, 35, 45):
            tap.observe(packet(t * 1_000_000))
        assert [p.time_us for p in tap.packets]             == [15_000_000, 35_000_000]
        assert tap.dropped == 3

    def test_window_packets(self):
        first = CaptureWindow(10_000_000, 20_000_000)
        tap = CaptureTap(windows=(first,
                                  CaptureWindow(30_000_000, 40_000_000)))
        tap.observe(packet(15_000_000))
        tap.observe(packet(35_000_000))
        assert len(tap.window_packets(first)) == 1

    def test_total_duration(self):
        tap = CaptureTap(windows=(CaptureWindow(0, 5_000_000),
                                  CaptureWindow(10_000_000, 12_000_000)))
        assert tap.total_duration == 7.0

    def test_pcap_export(self, tmp_path):
        import io
        from repro.netstack.pcap import PcapReader
        tap = CaptureTap()
        tap.observe(packet(3_000_000))
        buffer = io.BytesIO()
        assert tap.to_pcap(buffer) == 1
        buffer.seek(0)
        assert len(list(PcapReader(buffer))) == 1


class TestBehaviors:
    def make_point(self, ioa=1):
        return PointConfig(ioa=ioa, type_id=TypeID.M_ME_NC_1, symbol="P")

    def test_duplicate_ioa_rejected(self):
        with pytest.raises(ValueError):
            OutstationBehavior(name="O1", substation="S1",
                               outstation_type=OutstationType.IDEAL,
                               points=[self.make_point(1),
                                       self.make_point(1)])

    def test_reject_type_requires_mode(self):
        with pytest.raises(ValueError):
            OutstationBehavior(
                name="O1", substation="S1",
                outstation_type=OutstationType.BACKUP_REJECTS)

    def test_sends_i_frames(self):
        primary = OutstationBehavior(
            name="O1", substation="S1",
            outstation_type=OutstationType.IDEAL,
            points=[self.make_point()])
        backup = OutstationBehavior(
            name="O2", substation="S1",
            outstation_type=OutstationType.BACKUP_U_ONLY)
        assert primary.sends_i_frames
        assert not backup.sends_i_frames

    def test_point_validation(self):
        with pytest.raises(ValueError):
            PointConfig(ioa=0, type_id=TypeID.M_ME_NC_1, symbol="P")
        with pytest.raises(ValueError):
            PointConfig(ioa=1, type_id=TypeID.M_ME_NC_1, symbol="P",
                        period=0.0)

    def test_ioa_count(self):
        behavior = OutstationBehavior(
            name="O1", substation="S1",
            outstation_type=OutstationType.IDEAL,
            points=[self.make_point(i) for i in range(1, 6)])
        assert behavior.ioa_count == 5


class TestNetworkMap:
    def test_unique_addresses(self):
        network = NetworkMap()
        hosts = [network.add_server(f"C{i}") for i in range(1, 5)]
        hosts += [network.add_outstation(f"O{i}") for i in range(1, 30)]
        ips = {host.ip for host in hosts}
        macs = {host.mac for host in hosts}
        assert len(ips) == len(hosts)
        assert len(macs) == len(hosts)

    def test_duplicate_name_rejected(self):
        network = NetworkMap()
        network.add_server("C1")
        with pytest.raises(ValueError):
            network.add_server("C1")

    def test_reverse_lookup(self):
        network = NetworkMap()
        host = network.add_outstation("O7")
        assert network.name_of(host.ip) == "O7"
        assert network.name_of(IPv4Address(0xDEADBEEF)) is None

    def test_address_book(self):
        network = NetworkMap()
        network.add_server("C1")
        network.add_outstation("O1")
        book = network.address_book()
        assert set(book.values()) == {"C1", "O1"}
