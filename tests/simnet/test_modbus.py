"""Modbus/TCP link agent: polling, writes, exceptions, determinism."""

from __future__ import annotations

import random

import pytest

from repro.netstack.addresses import IPv4Address, MacAddress
from repro.protocols.modbus import (MODBUS_PORT, ModbusParser,
                                    READ_HOLDING_REGISTERS)
from repro.simnet.capture import CaptureTap
from repro.simnet.clock import Simulator
from repro.simnet.modbus import ModbusLink
from repro.simnet.tcpsim import SimHost

START_US = 1_000_000

REGISTERS = {
    100: lambda t: 50.0 + (t % 5),
    101: lambda t: 230.0,
    102: lambda t: 0.0,
}


def make_link(seed: int = 11, registers=None, **kwargs):
    sim = Simulator()
    tap = CaptureTap()
    master = SimHost(name="C1", ip=IPv4Address(0x0A000001),
                     mac=MacAddress(0x020000000001))
    outstation = SimHost(name="M1", ip=IPv4Address(0x0A010001),
                         mac=MacAddress(0x020000000002))
    link = ModbusLink(sim=sim, tap=tap, rng=random.Random(seed),
                      master_host=master, outstation_host=outstation,
                      master_name="C1", outstation_name="M1",
                      registers=registers if registers is not None
                      else REGISTERS, **kwargs)
    return sim, tap, link


def decoded_adus(tap):
    """Decode every ADU in the tap, in time order."""
    parser = ModbusParser()
    adus = []
    for packet in sorted(tap.packets, key=lambda p: p.time_us):
        if not packet.payload:
            continue
        for result in parser.parse_stream(packet.payload):
            assert result.ok, result.error
            adus.append(result.apdu)
    return adus


class TestPolling:
    def test_poll_cycle_pairs_requests_with_responses(self):
        sim, tap, link = make_link()
        link.run_until(START_US + 20_000_000)
        link.start_polling(START_US, 100, 3)
        sim.run()
        assert link.stats.requests >= 5
        assert link.stats.responses == link.stats.requests
        assert link.stats.exceptions == 0
        adus = decoded_adus(tap)
        # Request and response alternate, pairing by transaction id.
        for request, response in zip(adus[::2], adus[1::2]):
            assert request.function == READ_HOLDING_REGISTERS
            assert response.transaction == request.transaction
            assert response.unit == request.unit
            assert not response.is_exception
            # fc3 response: byte count + one word per register.
            assert response.data[0] == 2 * 3

    def test_traffic_rides_port_502(self):
        sim, tap, link = make_link()
        link.run_until(START_US + 10_000_000)
        link.start_polling(START_US, 100, 3)
        sim.run()
        assert tap.packets
        for packet in tap.packets:
            assert MODBUS_PORT in (packet.tcp.src_port,
                                   packet.tcp.dst_port)

    def test_identical_seeds_identical_captures(self):
        captures = []
        for _ in range(2):
            sim, tap, link = make_link(seed=23)
            link.run_until(START_US + 15_000_000)
            link.start_polling(START_US, 100, 3)
            sim.run()
            captures.append([(p.time_us, p.encode())
                             for p in tap.packets])
        assert captures[0] == captures[1]

    def test_close_stops_the_poll_loop(self):
        sim, tap, link = make_link()
        link.run_until(START_US + 60_000_000)
        link.start_polling(START_US, 100, 3)
        sim.schedule(START_US + 8_000_000,
                     lambda: link.close(START_US + 8_000_000))
        sim.run()
        assert not link.connected
        last = max(p.time_us for p in tap.packets)
        assert last < START_US + 10_000_000


class TestRequests:
    def test_unmapped_read_draws_an_exception(self):
        sim, tap, link = make_link()
        done = link.connect(START_US)
        link.send_read(done, 900, 2)
        sim.run()
        assert link.stats.exceptions == 1
        response = decoded_adus(tap)[-1]
        assert response.is_exception
        assert response.token == "X3"

    def test_write_single_overrides_the_source(self):
        sim, tap, link = make_link()
        done = link.connect(START_US)
        done = link.send_write_single(done, 101, 0xBEEF)
        link.send_read(done, 101, 1)
        sim.run()
        assert link.stats.writes == 1
        read_response = decoded_adus(tap)[-1]
        assert read_response.data == bytes((2, 0xBE, 0xEF))

    def test_write_multiple_overrides_a_block(self):
        sim, tap, link = make_link()
        done = link.connect(START_US)
        done = link.send_write_multiple(done, 100, [1, 2, 3])
        link.send_read(done, 100, 3)
        sim.run()
        assert link.stats.writes == 3
        read_response = decoded_adus(tap)[-1]
        assert read_response.data \
            == bytes((6, 0, 1, 0, 2, 0, 3))

    def test_double_connect_is_an_error(self):
        sim, tap, link = make_link()
        link.connect(START_US)
        with pytest.raises(RuntimeError, match="already connected"):
            link.connect(START_US + 1_000_000)
