"""Discrete-event simulator core tests (integer-microsecond ticks)."""

import pytest

from repro.simnet.clock import (
    SimulationError,
    Simulator,
    seconds_to_ticks,
    ticks_to_seconds,
)


class TestTickConversions:
    def test_round_trip_whole_seconds(self):
        assert seconds_to_ticks(2.0) == 2_000_000
        assert ticks_to_seconds(2_000_000) == 2.0

    def test_rounds_to_nearest_microsecond(self):
        assert seconds_to_ticks(0.0000007) == 1
        assert seconds_to_ticks(1.2345678) == 1_234_568


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3_000_000, lambda: fired.append("c"))
        sim.schedule(1_000_000, lambda: fired.append("a"))
        sim.schedule(2_000_000, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1_000_000, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_in(1_000_000, lambda: fired.append("second"))

        sim.schedule(0, first)
        sim.run()
        assert fired == ["first", "second"]

    def test_now_tracks_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2_500_000, lambda: seen.append(sim.now_us))
        sim.run()
        assert seen == [2_500_000]

    def test_now_is_derived_float_seconds(self):
        sim = Simulator(start_us=2_500_000)
        assert sim.now == 2.5

    def test_scheduling_in_past_rejected(self):
        sim = Simulator(start_us=10_000_000)
        with pytest.raises(SimulationError):
            sim.schedule(5_000_000, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1_000_000, lambda: None)

    def test_float_time_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_in(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_bool_time_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(True, lambda: None)


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1_000_000, lambda: fired.append(1))
        sim.schedule(5_000_000, lambda: fired.append(5))
        count = sim.run_until(2_000_000)
        assert count == 1 and fired == [1]
        assert sim.now_us == 2_000_000
        assert sim.pending == 1

    def test_clock_advances_even_when_queue_empty(self):
        sim = Simulator()
        sim.run_until(100_000_000)
        assert sim.now_us == 100_000_000

    def test_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2_000_000, lambda: fired.append(2))
        sim.run_until(2_000_000)
        assert fired == [2]

    def test_resume_after_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1_000_000, lambda: fired.append(1))
        sim.schedule(3_000_000, lambda: fired.append(3))
        sim.run_until(2_000_000)
        sim.run_until(4_000_000)
        assert fired == [1, 3]
