"""Discrete-event simulator core tests."""

import pytest

from repro.simnet.clock import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_in(1.0, lambda: fired.append("second"))

        sim.schedule(0.0, first)
        sim.run()
        assert fired == ["first", "second"]

    def test_now_tracks_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        count = sim.run_until(2.0)
        assert count == 1 and fired == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_clock_advances_even_when_queue_empty(self):
        sim = Simulator()
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(2.0)
        assert fired == [2]

    def test_resume_after_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run_until(2.0)
        sim.run_until(4.0)
        assert fired == [1, 3]
