"""IEC 104 link agent tests: the protocol behaviours of Table 6."""

import random

import pytest

from repro.iec104.constants import TypeID
from repro.netstack.addresses import IPv4Address, MacAddress
from repro.simnet.agents import IEC104Link, build_element
from repro.simnet.behaviors import (OutstationBehavior, OutstationType,
                                    PointConfig, RejectMode, ReportMode)
from repro.simnet.capture import CaptureTap
from repro.simnet.clock import Simulator
from repro.simnet.tcpsim import SimHost


def make_behavior(outstation_type=OutstationType.IDEAL, points=None,
                  reject_mode=RejectMode.NONE, **kwargs):
    if points is None:
        points = [
            PointConfig(ioa=2001, type_id=TypeID.M_ME_NC_1, symbol="P",
                        source=lambda t: 100.0 + (t % 7), threshold=0.5),
            PointConfig(ioa=2002, type_id=TypeID.M_ME_TF_1, symbol="U",
                        source=lambda t: 130.0, threshold=0.5,
                        mode=ReportMode.PERIODIC, period=4.0),
        ]
    return OutstationBehavior(name="O1", substation="S1",
                              outstation_type=outstation_type,
                              points=points, reject_mode=reject_mode,
                              **kwargs)


def make_link(behavior, seed=3, **kwargs):
    sim = Simulator()
    tap = CaptureTap()
    server = SimHost(name="C1", ip=IPv4Address(0x0A000001),
                     mac=MacAddress(0x020000000001))
    outstation = SimHost(name="O1", ip=IPv4Address(0x0A010001),
                         mac=MacAddress(0x020000000002))
    link = IEC104Link(sim=sim, tap=tap, rng=random.Random(seed),
                      server_host=server, outstation_host=outstation,
                      behavior=behavior, server_name="C1", **kwargs)
    return sim, tap, link


def decoded_tokens(tap):
    """Decode all APDUs in the tap, in time order, as Table 4 tokens."""
    from repro.iec104.codec import TolerantParser
    parser = TolerantParser()
    tokens = []
    for packet in sorted(tap.packets, key=lambda p: p.time_us):
        if not packet.payload:
            continue
        for result in parser.parse_stream(packet.payload,
                                          link_key=packet.flow_key):
            assert result.ok, result.error
            tokens.append(result.apdu.token)
    return tokens


class TestBuildElement:
    def test_short_float_untimed(self):
        element = build_element(TypeID.M_ME_NC_1, 1.5, 100_000_000)
        assert element.value == 1.5 and element.time is None

    def test_short_float_timed(self):
        element = build_element(TypeID.M_ME_TF_1, 1.5, 100_000_000)
        assert element.time is not None

    def test_double_point(self):
        assert build_element(TypeID.M_DP_NA_1, 2.0, 0).state == 2

    def test_normalized_clamped(self):
        element = build_element(TypeID.M_ME_NA_1, 5.0, 0)
        assert element.value <= 1.0

    def test_unsupported_raises(self):
        with pytest.raises(ValueError):
            build_element(TypeID.C_IC_NA_1, 0.0, 0)


class TestPrimaryLink:
    def test_startdt_then_interrogation(self):
        sim, tap, link = make_link(make_behavior())
        link.run_until(30_000_000)
        link.start_primary(1_000_000)
        sim.run_until(5_000_000)
        tokens = decoded_tokens(tap)
        assert tokens[0] == "U1"
        assert tokens[1] == "U2"
        assert "I100" in tokens
        # Interrogation answers come as I13/I36 bursts.
        assert any(t in ("I13", "I36") for t in tokens)

    def test_reporting_continues(self):
        sim, tap, link = make_link(make_behavior())
        link.run_until(60_000_000)
        link.start_primary(1_000_000)
        sim.run_until(60_000_000)
        tokens = decoded_tokens(tap)
        # The periodic U-voltage point fires every ~4s: expect >= 10
        # I36 frames over ~55s of reporting.
        assert tokens.count("I36") >= 10

    def test_server_acknowledges_with_s(self):
        sim, tap, link = make_link(make_behavior())
        link.run_until(120_000_000)
        link.start_primary(1_000_000)
        sim.run_until(120_000_000)
        tokens = decoded_tokens(tap)
        assert "S" in tokens

    def test_sequence_numbers_consistent(self):
        """Whole exchange decodes with per-frame sequence checking."""
        sim, tap, link = make_link(make_behavior())
        link.run_until(40_000_000)
        link.start_primary(1_000_000)
        sim.run_until(40_000_000)
        from repro.iec104.codec import TolerantParser
        from repro.iec104.apci import IFrame
        parser = TolerantParser()
        send_seqs = []
        for packet in sorted(tap.packets, key=lambda p: p.time_us):
            if not packet.payload or packet.flow_key.src.port == 2404:
                continue  # server->outstation only has commands/acks
        # outstation->server I-frames must have strictly increasing N(S)
        for packet in sorted(tap.packets, key=lambda p: p.time_us):
            if not packet.payload:
                continue
            if packet.flow_key.src.port != 2404:
                continue
            for result in parser.parse_stream(packet.payload,
                                              link_key="o"):
                if result.ok and isinstance(result.apdu, IFrame):
                    send_seqs.append(result.apdu.send_seq)
        assert send_seqs == sorted(send_seqs)
        assert len(set(send_seqs)) == len(send_seqs)

    def test_stats(self):
        sim, tap, link = make_link(make_behavior())
        link.run_until(30_000_000)
        link.start_primary(1_000_000)
        sim.run_until(30_000_000)
        assert link.stats.connections == 1
        assert link.stats.i_frames > 0


class TestSecondaryLink:
    def test_keepalive_pairs(self):
        behavior = make_behavior(OutstationType.BACKUP_U_ONLY,
                                 keepalive_period=10.0)
        sim, tap, link = make_link(behavior)
        link.run_until(65_000_000)
        link.start_secondary(1_000_000)
        sim.run_until(65_000_000)
        tokens = decoded_tokens(tap)
        assert tokens.count("U16") >= 5
        assert tokens.count("U16") == tokens.count("U32")
        assert not any(t.startswith("I") for t in tokens)

    def test_promotion_switchover_pattern(self):
        """Fig. 16: keep-alives, then STARTDT + I100 on the same
        connection."""
        behavior = make_behavior(OutstationType.SWITCHOVER_OBSERVED,
                                 keepalive_period=10.0)
        sim, tap, link = make_link(behavior)
        link.run_until(120_000_000)
        link.start_secondary(1_000_000)
        sim.schedule(45_000_000, lambda: link.promote(sim.now_us))
        sim.run_until(100_000_000)
        tokens = decoded_tokens(tap)
        first_u16 = tokens.index("U16")
        start = tokens.index("U1")
        assert first_u16 < start
        assert "I100" in tokens[start:]
        assert "U32" in tokens[:start]


class TestRejectLoop:
    def test_rst_rejects(self):
        """Fig. 9 / Fig. 14: establish, one U16, then RST."""
        behavior = make_behavior(OutstationType.BACKUP_REJECTS,
                                 reject_mode=RejectMode.RST_AFTER_TESTFR,
                                 reject_retry_period=10.0)
        sim, tap, link = make_link(behavior)
        link.run_until(55_000_000)
        link.start_reject_loop(1_000_000)
        sim.run_until(55_000_000)
        tokens = decoded_tokens(tap)
        assert set(tokens) == {"U16"}
        assert tokens.count("U16") >= 4
        rst = [p for p in tap.packets if p.flags.rst]
        assert len(rst) == tokens.count("U16")
        # RSTs come from the outstation.
        assert all(p.flow_key.src.port == 2404 for p in rst)

    def test_fin_rejects(self):
        behavior = make_behavior(OutstationType.BACKUP_REJECTS,
                                 reject_mode=RejectMode.FIN_AFTER_TESTFR,
                                 reject_retry_period=10.0)
        sim, tap, link = make_link(behavior)
        link.run_until(35_000_000)
        link.start_reject_loop(1_000_000)
        sim.run_until(35_000_000)
        fin = [p for p in tap.packets if p.flags.fin]
        assert fin, "expected FIN teardown"
        assert not any(p.flags.rst for p in tap.packets)

    def test_ignore_mode_mostly_silent(self):
        behavior = make_behavior(OutstationType.BACKUP_REJECTS,
                                 reject_mode=RejectMode.IGNORE_SYN,
                                 reject_retry_period=5.0)
        sim, tap, link = make_link(behavior, seed=5)
        link.run_until(200_000_000)
        link.start_reject_loop(1_000_000)
        sim.run_until(200_000_000)
        syn_only = [p for p in tap.packets if p.flags.syn
                    and not p.flags.ack]
        payload = [p for p in tap.packets if p.payload]
        # The vast majority of attempts are unanswered SYNs.
        assert len(syn_only) > 3 * max(1, len(payload))

    def test_requires_mode(self):
        behavior = make_behavior()
        _, _, link = make_link(behavior)
        with pytest.raises(RuntimeError):
            link.start_reject_loop(0)


class TestCommands:
    def test_setpoint_act_con(self):
        applied = []
        behavior = make_behavior(agc_setpoint_ioa=100)
        sim, tap, link = make_link(behavior,
                                   on_setpoint=applied.append)
        link.run_until(30_000_000)
        link.start_primary(1_000_000)
        sim.schedule(10_000_000,
                     lambda: link.send_setpoint(sim.now_us, 250.5))
        sim.run_until(15_000_000)
        assert applied == [250.5]
        tokens = decoded_tokens(tap)
        assert tokens.count("I50") == 2  # act + con

    def test_setpoint_without_ioa_raises(self):
        behavior = make_behavior()
        sim, _, link = make_link(behavior)
        link.run_until(30_000_000)
        link.start_primary(1_000_000)
        sim.run_until(5_000_000)
        with pytest.raises(RuntimeError):
            link.send_setpoint(6_000_000, 1.0)

    def test_clock_sync(self):
        sim, tap, link = make_link(make_behavior())
        link.run_until(30_000_000)
        link.start_primary(1_000_000)
        sim.schedule(10_000_000,
                     lambda: link.send_clock_sync(sim.now_us))
        sim.run_until(15_000_000)
        assert decoded_tokens(tap).count("I103") == 2


class TestIdleKeepalive:
    def test_quiet_primary_sends_testfr(self):
        """Type 5: stale thresholds force in-band TESTFR after T3."""
        points = [PointConfig(ioa=2001, type_id=TypeID.M_ME_NC_1,
                              symbol="P", source=lambda t: 100.0,
                              threshold=50.0)]  # never fires
        behavior = make_behavior(points=points)
        sim, tap, link = make_link(behavior)
        link.run_until(120_000_000)
        link.start_primary(1_000_000)
        sim.run_until(120_000_000)
        tokens = decoded_tokens(tap)
        assert "U16" in tokens and "U32" in tokens


class TestClose:
    def test_fin_close_stops_loops(self):
        behavior = make_behavior()
        sim, tap, link = make_link(behavior)
        link.run_until(100_000_000)
        link.start_primary(1_000_000)
        sim.run_until(20_000_000)
        link.close(20_500_000)
        before = len(tap.packets)
        sim.run_until(100_000_000)
        # Only the FIN handshake may follow; no new app data.
        assert len([p for p in tap.packets if p.payload
                    and p.time_us > 21_000_000]) == 0
        assert not link.connected
