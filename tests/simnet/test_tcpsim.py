"""Simulated TCP layer tests: the emitted packets must be real TCP."""

import random

import pytest

from repro.netstack.addresses import IPv4Address, MacAddress
from repro.netstack.flows import FlowKind, FlowTable
from repro.netstack.reassembly import StreamReassembler
from repro.simnet.capture import CaptureTap
from repro.simnet.clock import Simulator
from repro.simnet.tcpsim import (RetransmissionModel, SimConnection,
                                 SimHost)


def make_hosts():
    client = SimHost(name="C1", ip=IPv4Address(0x0A000001),
                     mac=MacAddress(0x020000000001))
    server = SimHost(name="O1", ip=IPv4Address(0x0A010001),
                     mac=MacAddress(0x020000000002))
    return client, server


def make_conn(tap=None, seed=1, retransmission=None):
    client, server = make_hosts()
    tap = tap if tap is not None else CaptureTap()
    conn = SimConnection(Simulator(), tap, client, server,
                         server_port=2404, rng=random.Random(seed),
                         retransmission=retransmission)
    return conn, tap


class TestHandshake:
    def test_three_packets(self):
        conn, tap = make_conn()
        done = conn.establish(10_000_000)
        assert len(tap.packets) == 3
        assert done > 10_000_000
        flags = [str(p.flags) for p in tap.packets]
        assert flags == ["SYN", "SYN|ACK", "ACK"]

    def test_flow_table_sees_one_connection(self):
        conn, tap = make_conn()
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=b"hello")
        conn.close_fin(2_000_000, from_client=True)
        table = FlowTable()
        table.add_all(tap.packets)
        assert len(table) == 1
        assert table.flows[0].kind is FlowKind.SHORT_LIVED

    def test_cannot_establish_twice(self):
        conn, _ = make_conn()
        conn.establish(0)
        with pytest.raises(RuntimeError):
            conn.establish(1_000_000)

    def test_float_time_rejected(self):
        from repro.simnet.clock import SimulationError
        conn, _ = make_conn()
        with pytest.raises(SimulationError):
            conn.establish(0.0)


class TestDataTransfer:
    def test_payload_reassembles(self):
        conn, tap = make_conn()
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=b"part one ")
        conn.send(2_000_000, from_client=True, payload=b"part two")
        reassembler = StreamReassembler()
        for packet in tap.packets:
            if packet.flow_key.src.port != 2404 and packet.payload:
                reassembler.feed(packet.tcp.seq, packet.payload)
        # Feed SYN separately for ISN accounting
        out = b""
        reassembler2 = StreamReassembler()
        for packet in tap.packets:
            if packet.flow_key.src.port != 2404:
                out += reassembler2.feed(packet.tcp.seq, packet.payload,
                                         syn=packet.flags.syn)
        assert out == b"part one part two"

    def test_seq_numbers_advance_by_payload(self):
        conn, tap = make_conn()
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=b"12345")
        conn.send(2_000_000, from_client=True, payload=b"678")
        data = [p for p in tap.packets if p.payload]
        assert data[1].tcp.seq == data[0].tcp.seq + 5

    def test_bidirectional_ack_tracking(self):
        conn, tap = make_conn()
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=b"ping")
        conn.send(2_000_000, from_client=False, payload=b"pong")
        reply = [p for p in tap.packets if p.payload][-1]
        request = [p for p in tap.packets if p.payload][0]
        assert reply.tcp.ack == request.tcp.seq + 4

    def test_empty_payload_rejected(self):
        conn, _ = make_conn()
        conn.establish(0)
        with pytest.raises(ValueError):
            conn.send(1_000_000, from_client=True, payload=b"")

    def test_send_before_establish_rejected(self):
        conn, _ = make_conn()
        with pytest.raises(RuntimeError):
            conn.send(0, from_client=True, payload=b"x")


class TestRetransmission:
    def test_injection_duplicates_packet(self):
        model = RetransmissionModel(probability=1.0, delay=0.2)
        conn, tap = make_conn(retransmission=model)
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=b"dup")
        data = [p for p in tap.packets if p.payload]
        assert len(data) == 2
        assert data[0].tcp.seq == data[1].tcp.seq
        assert data[0].payload == data[1].payload
        # delay=0.2 s quantizes to exactly 200_000 ticks.
        assert data[1].time_us == 1_200_000

    def test_zero_probability_no_duplicates(self):
        conn, tap = make_conn(
            retransmission=RetransmissionModel(probability=0.0))
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=b"once")
        assert len([p for p in tap.packets if p.payload]) == 1

    def test_model_validation(self):
        with pytest.raises(ValueError):
            RetransmissionModel(probability=1.5)
        with pytest.raises(ValueError):
            RetransmissionModel(delay=0.0)


class TestTeardown:
    def test_fin_sequence(self):
        conn, tap = make_conn()
        conn.establish(0)
        conn.close_fin(1_000_000, from_client=True)
        flags = [str(p.flags) for p in tap.packets[3:]]
        assert flags == ["ACK|FIN", "ACK|FIN", "ACK"]
        assert conn.closed

    def test_rst(self):
        conn, tap = make_conn()
        conn.establish(0)
        conn.close_rst(1_000_000, from_client=False)
        assert str(tap.packets[-1].flags) == "ACK|RST"

    def test_refuse(self):
        conn, tap = make_conn()
        conn.refuse(0)
        flags = [str(p.flags) for p in tap.packets]
        assert flags == ["SYN", "ACK|RST"]
        assert conn.closed

    def test_ignored_syn_retries(self):
        conn, tap = make_conn()
        conn.send_syn_unanswered(0, retries=2, backoff=1.0)
        flags = [str(p.flags) for p in tap.packets]
        assert flags == ["SYN", "SYN", "SYN"]
        # Exponential backoff: 0, 1, 3 seconds in exact ticks.
        times = [p.time_us for p in tap.packets]
        assert times == [0, 1_000_000, 3_000_000]
        # Same ISN on every retry.
        assert len({p.tcp.seq for p in tap.packets}) == 1

    def test_send_after_close_rejected(self):
        conn, _ = make_conn()
        conn.establish(0)
        conn.close_fin(1_000_000, from_client=True)
        with pytest.raises(RuntimeError):
            conn.send(2_000_000, from_client=True, payload=b"late")


class TestEverythingDecodes:
    def test_all_packets_valid_tcp(self):
        """Every emitted packet must decode through the real netstack
        parsers with checksums verified."""
        from repro.netstack.packet import CapturedPacket
        model = RetransmissionModel(probability=0.5)
        conn, tap = make_conn(retransmission=model, seed=7)
        conn.establish(0)
        for index in range(10):
            conn.send((1 + index) * 1_000_000,
                      from_client=index % 2 == 0,
                      payload=bytes([index]) * (index + 1))
        conn.close_fin(20_000_000, from_client=False)
        for packet in tap.packets:
            decoded = CapturedPacket.decode(packet.time_us,
                                            packet.encode(), verify=True)
            assert decoded is not None
            assert decoded.tcp == packet.tcp


class TestDelayedAcks:
    def test_pure_acks_emitted(self):
        client, server = make_hosts()
        tap = CaptureTap()
        conn = SimConnection(Simulator(), tap, client, server, 2404,
                             rng=random.Random(4),
                             ack_policy="delayed", ack_every=2)
        conn.establish(0)
        for index in range(4):
            conn.send((1 + index) * 1_000_000, from_client=True,
                      payload=b"data")
        pure_acks = [p for p in tap.packets
                     if str(p.flags) == "ACK" and not p.payload
                     and p.time_us > 500_000]
        assert len(pure_acks) == 2  # one per two data segments
        # ACKs come from the receiving side.
        assert all(p.flow_key.src.port == 2404 for p in pure_acks)

    def test_ack_numbers_cover_received_data(self):
        client, server = make_hosts()
        tap = CaptureTap()
        conn = SimConnection(Simulator(), tap, client, server, 2404,
                             rng=random.Random(4),
                             ack_policy="delayed", ack_every=1)
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=b"12345")
        data = [p for p in tap.packets if p.payload][-1]
        ack = [p for p in tap.packets
               if str(p.flags) == "ACK" and p.time_us > 1_000_000][-1]
        assert ack.tcp.ack == data.tcp.seq + 5

    def test_default_policy_no_pure_acks(self):
        client, server = make_hosts()
        tap = CaptureTap()
        conn = SimConnection(Simulator(), tap, client, server, 2404,
                             rng=random.Random(4))
        conn.establish(0)
        conn.send(1_000_000, from_client=True, payload=b"x")
        late_acks = [p for p in tap.packets
                     if str(p.flags) == "ACK" and p.time_us > 500_000]
        assert late_acks == []

    def test_policy_validation(self):
        client, server = make_hosts()
        with pytest.raises(ValueError):
            SimConnection(Simulator(), CaptureTap(), client, server,
                          2404, rng=random.Random(1),
                          ack_policy="bogus")
        with pytest.raises(ValueError):
            SimConnection(Simulator(), CaptureTap(), client, server,
                          2404, rng=random.Random(1), ack_every=0)
