"""Industroyer-style attack generation tests (paper §6.3.1)."""

import pytest

from repro.analysis import extract_apdus, tokenize
from repro.iec104.constants import TypeID
from repro.simnet.attacker import (AttackResult, ReconnaissanceMode,
                                   run_attack)
from repro.simnet.behaviors import (OutstationBehavior, OutstationType,
                                    PointConfig)


def victim(n_points=5):
    points = [PointConfig(ioa=2001 + i, type_id=TypeID.M_ME_NC_1,
                          symbol="P", source=lambda t: 100.0,
                          threshold=1000.0)  # quiet during the attack
              for i in range(n_points)]
    return OutstationBehavior(name="O99", substation="S99",
                              outstation_type=OutstationType.IDEAL,
                              points=points)


def attack_tokens(result: AttackResult):
    extraction = extract_apdus(result)
    return tokenize(extraction.events), extraction


class TestIterativeScan:
    def test_discovers_exactly_the_defined_points(self):
        result = run_attack(victim(5),
                            ReconnaissanceMode.ITERATIVE_SCAN,
                            scan_range=(2001, 2020))
        assert result.discovered_ioas == [2001, 2002, 2003, 2004, 2005]
        assert result.probes_sent == 20

    def test_probe_traffic_visible_on_wire(self):
        result = run_attack(victim(3),
                            ReconnaissanceMode.ITERATIVE_SCAN,
                            scan_range=(2001, 2010))
        tokens, _ = attack_tokens(result)
        # 10 read requests + 7 negative replies (the 3 hits answer
        # with the point's own data typeID instead).
        assert tokens.count("I102") == 10 + 7
        assert "I45" in tokens  # the command phase

    def test_unknown_ioa_negatives(self):
        result = run_attack(victim(2),
                            ReconnaissanceMode.ITERATIVE_SCAN,
                            scan_range=(2001, 2006))
        _, extraction = attack_tokens(result)
        from repro.iec104.apci import IFrame
        negatives = [event for event in extraction.events
                     if isinstance(event.apdu, IFrame)
                     and event.apdu.asdu.negative]
        assert len(negatives) == 4  # 6 probed - 2 existing

    def test_commands_capped(self):
        result = run_attack(victim(10),
                            ReconnaissanceMode.ITERATIVE_SCAN,
                            scan_range=(2001, 2015), command_count=3)
        assert result.commands_sent == 3


class TestInterrogationShortcut:
    def test_single_message_discovers_everything(self):
        result = run_attack(victim(8),
                            ReconnaissanceMode.INTERROGATION)
        assert len(result.discovered_ioas) == 8
        assert result.probes_sent == 1

    def test_far_fewer_packets_than_scanning(self):
        """The paper's point: one I100 replaces the whole sweep."""
        scan = run_attack(victim(8),
                          ReconnaissanceMode.ITERATIVE_SCAN,
                          scan_range=(2001, 2060))
        shortcut = run_attack(victim(8),
                              ReconnaissanceMode.INTERROGATION)
        assert len(shortcut.packets) < 0.5 * len(scan.packets)

    def test_interrogation_tokens_present(self):
        result = run_attack(victim(4),
                            ReconnaissanceMode.INTERROGATION)
        tokens, _ = attack_tokens(result)
        assert "I100" in tokens


class TestDetection:
    def test_whitelist_flags_the_scan(self, y1_extraction):
        """Close the loop: the IDS trained on clean traffic flags the
        attack capture."""
        from repro.analysis.whitelist import CyberWhitelist
        whitelist = CyberWhitelist(per_connection=False)
        for events in y1_extraction.by_connection().values():
            whitelist.fit_sequence(tokenize(events))
        result = run_attack(victim(5),
                            ReconnaissanceMode.ITERATIVE_SCAN,
                            scan_range=(2001, 2030))
        tokens, _ = attack_tokens(result)
        verdict = whitelist.score(tokens)
        assert verdict.is_alert()
        # Read commands never appear in the operational network.
        assert "I102" in verdict.unknown_tokens
