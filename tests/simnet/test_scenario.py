"""Scenario-level behaviour tests (capture windows, lifecycles)."""

import pytest

from repro.analysis import extract_apdus, tokenize
from repro.datasets import CaptureConfig, generate_capture
from repro.netstack.flows import FlowKind, FlowTable
from repro.simnet.capture import CaptureWindow
from repro.simnet.scenario import Scenario, WARMUP_S


class TestWindowSemantics:
    def test_first_window_needs_warmup_room(self, y1_capture):
        with pytest.raises(ValueError):
            Scenario(year=1, plans=y1_capture.plans,
                     grid=y1_capture.grid, network=y1_capture.network,
                     windows=(CaptureWindow(10_000_000, 100_000_000),))

    def test_warmup_constant_sane(self):
        assert WARMUP_S > 60.0


class TestLifecycles:
    def test_persistent_links_look_long_lived(self, y1_capture):
        """Type 1/2 primaries connect before the window opens: the
        capture must contain their data but not their SYN."""
        table = FlowTable()
        table.add_all(y1_capture.packets)
        o1 = y1_capture.network["O1"].ip
        o1_flows = [flow for flow in table.flows
                    if o1 in (flow.key.src.address,
                              flow.key.dst.address)]
        data_flows = [flow for flow in o1_flows
                      if flow.forward.payload_bytes
                      + flow.reverse.payload_bytes > 100]
        assert data_flows
        assert all(flow.kind is FlowKind.LONG_LIVED
                   for flow in data_flows)

    def test_type4_reconnects_inside_each_window(self, y1_capture):
        """Type 4 links SYN and FIN inside the capture windows."""
        table = FlowTable()
        table.add_all(y1_capture.packets)
        o27 = y1_capture.network["O27"].ip
        o27_flows = [flow for flow in table.flows
                     if o27 in (flow.key.src.address,
                                flow.key.dst.address)]
        short = [flow for flow in o27_flows
                 if flow.kind is FlowKind.SHORT_LIVED]
        assert len(short) == len(y1_capture.windows)
        assert all(flow.duration > 1.0 for flow in short)

    def test_type4_alternates_servers(self, y1_extraction):
        sessions = y1_extraction.by_session()
        i_senders = {dst for (src, dst) in sessions
                     if src == "O27"}
        assert i_senders == {"C1", "C2"}

    def test_test_rtu_exchanges_two_keepalive_pairs(self, y1_capture,
                                                    y1_extraction):
        """C4-O22: the paper's four-packet test RTU."""
        events = [event for event in y1_extraction.events
                  if "O22" in (event.src, event.dst)]
        tokens = tokenize(events)
        assert tokens == ["U16", "U32", "U16", "U32"]
        # Its two exchanges are far apart: the cluster-0 signature.
        times = sorted(event.time_us / 1_000_000 for event in events)
        assert times[2] - times[1] > 0.3 * y1_capture.windows[0].duration

    def test_o30_retries_slowly(self, y1_capture):
        """C2-O30's 430 s retry: far fewer attempts than its peers."""
        table = FlowTable()
        table.add_all(y1_capture.packets)
        def attempts(name):
            address = y1_capture.network[name].ip
            return sum(1 for flow in table.flows
                       if address in (flow.key.src.address,
                                      flow.key.dst.address)
                       and flow.saw_syn)
        assert attempts("O30") < attempts("O35") / 5

    def test_agc_only_at_participants(self, y1_extraction):
        setpoint_targets = {event.dst for event in y1_extraction.events
                            if event.token == "I50"
                            and event.src.startswith("C")}
        assert setpoint_targets == {"O1", "O10", "O19", "O26"}

    def test_switchover_direction_alternates(self, y1_extraction):
        """Across windows, both pair members get promoted (Fig. 13
        ellipse pairs)."""
        sessions = y1_extraction.by_session()
        promoting = set()
        for (src, dst), events in sessions.items():
            if dst == "O29" and src.startswith("C"):
                if any(event.token == "U1" for event in events):
                    promoting.add(src)
        assert promoting == {"C1", "C2"}
