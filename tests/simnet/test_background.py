"""ICCP / C37.118 background traffic tests (paper §5)."""

import random

import pytest

from repro.analysis import FlowAnalysis, extract_apdus
from repro.datasets import CaptureConfig, generate_capture
from repro.simnet.background import (BackgroundTraffic, C37_118_PORT,
                                     ICCP_PORT, _c37_data_frame)
from repro.simnet.capture import CaptureTap
from repro.simnet.clock import Simulator
from repro.simnet.topology import NetworkMap


@pytest.fixture(scope="module")
def mixed_capture():
    return generate_capture(
        1, CaptureConfig(time_scale=0.005, max_outstations=8,
                         include_background=True))


class TestGenerators:
    def test_c37_frame_structure(self):
        frame = _c37_data_frame(7, rng=random.Random(1))
        assert frame[:2] == b"\xaa\x01"
        size = int.from_bytes(frame[2:4], "big")
        assert size == len(frame)

    def test_traffic_lands_on_right_ports(self):
        sim = Simulator()
        tap = CaptureTap()
        network = NetworkMap()
        server = network.add_server("C1")
        external = network.add_auxiliary("EXT1")
        pmu = network.add_auxiliary("PMU1")
        background = BackgroundTraffic(sim=sim, tap=tap,
                                       rng=random.Random(2))
        background.add_iccp_peering(server, external,
                                    start_us=1_000_000,
                                    end_us=30_000_000)
        background.add_pmu_stream(pmu, server, start_us=1_000_000,
                                  end_us=30_000_000, rate_hz=2.0)
        sim.run_until(35_000_000)
        ports = {packet.tcp.dst_port for packet in tap.packets
                 if packet.payload}
        assert ICCP_PORT in ports
        assert C37_118_PORT in ports
        pmu_frames = [p for p in tap.packets
                      if p.tcp.dst_port == C37_118_PORT and p.payload]
        assert len(pmu_frames) >= 50  # ~2 Hz over ~29 s, both dirs n/a


class TestPipelineFiltering:
    def test_background_present_in_capture(self, mixed_capture):
        ports = {packet.tcp.dst_port for packet in
                 mixed_capture.packets}
        assert ICCP_PORT in ports and C37_118_PORT in ports

    def test_extraction_ignores_background(self, mixed_capture):
        extraction = extract_apdus(mixed_capture)
        # No parse failures and no events from auxiliary hosts.
        assert not extraction.failures
        hosts = {event.src for event in extraction.events} \
            | {event.dst for event in extraction.events}
        assert not any(host.startswith(("PMU", "EXT"))
                       for host in hosts)

    def test_flow_analysis_default_excludes_background(self,
                                                       mixed_capture):
        iec = FlowAnalysis.from_packets("x", mixed_capture)
        everything = FlowAnalysis.from_packets(
            "x", mixed_capture, iec104_only=False)
        assert len(everything.flows) > len(iec.flows)
        iec_ports = {flow.key.src.port for flow in iec.flows} \
            | {flow.key.dst.port for flow in iec.flows}
        assert ICCP_PORT not in iec_ports
        assert C37_118_PORT not in iec_ports

    def test_background_optional(self):
        quiet = generate_capture(
            1, CaptureConfig(time_scale=0.003, max_outstations=4,
                             include_background=False))
        ports = {packet.tcp.dst_port for packet in quiet.packets}
        assert ICCP_PORT not in ports and C37_118_PORT not in ports


class TestAckPolicyOption:
    def test_delayed_acks_increase_packet_count(self):
        from repro.datasets import CaptureConfig, generate_capture
        base = generate_capture(
            1, CaptureConfig(time_scale=0.003, max_outstations=4,
                             include_background=False))
        acked = generate_capture(
            1, CaptureConfig(time_scale=0.003, max_outstations=4,
                             include_background=False,
                             ack_policy="delayed"))
        assert len(acked.packets) > len(base.packets)
        pure_acks = [p for p in acked.packets
                     if str(p.flags) == "ACK" and not p.payload]
        assert pure_acks
        # The APDU-level analysis is unaffected by pure ACKs.
        from repro.analysis import extract_apdus, tokenize
        assert tokenize(extract_apdus(acked).events)
