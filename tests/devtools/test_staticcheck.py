"""Regression tests for the staticcheck linter.

Each rule gets at least one positive fixture (the rule fires) and one
negative fixture (clean code passes).  The reporters are checked for
format stability, the constants-consistency rule against deliberately
broken fixture tables, and the CLI for its exit-code contract
(``repro lint --self`` must exit 0 on this tree).
"""

from __future__ import annotations

import io
import json
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.staticcheck import (Finding, Severity,
                                        SuppressionIndex, build_rules,
                                        format_json, format_sarif,
                                        format_text, lint_paths,
                                        registered_rule_ids)
from repro.devtools.staticcheck.engine import module_path_for
from repro.devtools.staticcheck.rules.consistency import (
    ConstantsConsistencyRule)

ALL_RULES = ("bare-except", "constants-consistency", "determinism",
             "float-timestamp-eq", "mutable-default", "silent-swallow",
             "struct-format")


def lint_snippet(tmp_path: Path, code: str, *, rule: str,
                 package: str = "simnet") -> list[Finding]:
    """Lint ``code`` as a file inside a synthetic ``package``."""
    pkg = tmp_path / package
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "snippet.py").write_text(textwrap.dedent(code))
    result = lint_paths([pkg], select=[rule])
    return result.findings


def test_registry_lists_expected_rules():
    assert set(ALL_RULES) <= set(registered_rule_ids())


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError):
        build_rules(["no-such-rule"])


# -- determinism -----------------------------------------------------

DETERMINISM_BAD = """
    import random
    import time


    def sample():
        return time.time() + random.random()
"""

DETERMINISM_GOOD = """
    import random


    def sample(rng: random.Random, now: float):
        generator = random.Random(7)
        return now + rng.random() + generator.gauss(0.0, 1.0)
"""


def test_determinism_flags_wall_clock_and_ambient_rng(tmp_path):
    findings = lint_snippet(tmp_path, DETERMINISM_BAD,
                            rule="determinism")
    messages = [finding.message for finding in findings]
    assert len(findings) == 2
    assert any("wall clock" in message for message in messages)
    assert any("module-level RNG" in message for message in messages)


def test_determinism_accepts_injected_rng(tmp_path):
    assert lint_snippet(tmp_path, DETERMINISM_GOOD,
                        rule="determinism") == []


def test_determinism_ignores_files_outside_scoped_packages(tmp_path):
    assert lint_snippet(tmp_path, DETERMINISM_BAD, rule="determinism",
                        package="analysis") == []


def test_determinism_flags_from_random_import(tmp_path):
    findings = lint_snippet(
        tmp_path, "from random import randint\n", rule="determinism")
    assert len(findings) == 1
    assert "from random import randint" in findings[0].message


# -- struct-format ---------------------------------------------------

def test_struct_native_order_flagged(tmp_path):
    findings = lint_snippet(
        tmp_path, "import struct\nstruct.pack('HH', 1, 2)\n",
        rule="struct-format")
    assert len(findings) == 1
    assert "native byte order" in findings[0].message


def test_struct_invalid_format_flagged(tmp_path):
    findings = lint_snippet(
        tmp_path, "import struct\nstruct.calcsize('<Z')\n",
        rule="struct-format")
    assert len(findings) == 1
    assert "invalid struct format" in findings[0].message


def test_struct_pack_arity_mismatch_flagged(tmp_path):
    findings = lint_snippet(
        tmp_path, "import struct\nstruct.pack('<HH', 1)\n",
        rule="struct-format")
    assert [f.message for f in findings] \
        == ["struct.pack('<HH', ...) takes 2 value(s) but 1 supplied"]


def test_struct_unpack_target_arity_flagged(tmp_path):
    code = """
        import struct
        a, b = struct.unpack('<HHH', data)
    """
    findings = lint_snippet(tmp_path, code, rule="struct-format")
    assert len(findings) == 1
    assert "3 value(s) into 2 target(s)" in findings[0].message


def test_struct_width_annotation_enforced(tmp_path):
    code = """
        import struct
        _F = struct.Struct('<f')  # staticcheck: width=7
    """
    findings = lint_snippet(tmp_path, code, rule="struct-format")
    assert len(findings) == 1
    assert "annotated width=7" in findings[0].message
    assert "computes to 4" in findings[0].message


def test_struct_clean_wire_formats_pass(tmp_path):
    code = """
        import struct
        _H = struct.Struct('!HHIIBBHHH')  # staticcheck: width=20
        payload = struct.pack('<HH', 1, 2)
        a, b = struct.unpack('<HH', payload)
        values = struct.unpack(endianness + 'IIII', raw)
    """
    assert lint_snippet(tmp_path, code, rule="struct-format") == []


# -- hygiene: bare-except / silent-swallow ---------------------------

def test_bare_except_flagged(tmp_path):
    code = """
        try:
            decode()
        except:
            count += 1
    """
    findings = lint_snippet(tmp_path, code, rule="bare-except")
    assert len(findings) == 1


def test_narrow_except_passes(tmp_path):
    code = """
        try:
            decode()
        except ValueError:
            count += 1
    """
    assert lint_snippet(tmp_path, code, rule="bare-except") == []


def test_silent_swallow_flagged(tmp_path):
    code = """
        try:
            decode()
        except Exception:
            pass
    """
    findings = lint_snippet(tmp_path, code, rule="silent-swallow")
    assert len(findings) == 1


def test_broad_except_with_handling_passes(tmp_path):
    code = """
        try:
            decode()
        except Exception as exc:
            errors.append(exc)
    """
    assert lint_snippet(tmp_path, code, rule="silent-swallow") == []


# -- hygiene: mutable-default ----------------------------------------

def test_mutable_default_flagged(tmp_path):
    code = """
        def collect(into=[], lookup={}, *, seen=set()):
            return into
    """
    findings = lint_snippet(tmp_path, code, rule="mutable-default")
    assert len(findings) == 3


def test_none_default_passes(tmp_path):
    code = """
        def collect(into=None, count=0, name="x", key=()):
            return into
    """
    assert lint_snippet(tmp_path, code, rule="mutable-default") == []


# -- hygiene: float-timestamp-eq -------------------------------------

def test_float_timestamp_eq_flagged(tmp_path):
    code = """
        def due(event, now):
            return event.timestamp == now
    """
    findings = lint_snippet(tmp_path, code, rule="float-timestamp-eq")
    assert len(findings) == 1
    assert findings[0].severity is Severity.ERROR


def test_tick_names_exempt_from_timestamp_eq(tmp_path):
    code = """
        def due(event, now_us):
            return event.time_us == now_us or event.start_us != now_us
    """
    findings = lint_snippet(tmp_path, code, rule="float-timestamp-eq")
    assert findings == []


def test_timestamp_tolerance_compare_passes(tmp_path):
    code = """
        def due(event, now, eps=1e-9):
            return abs(event.timestamp - now) < eps \\
                and event.timestamp is not None
    """
    assert lint_snippet(tmp_path, code,
                        rule="float-timestamp-eq") == []


def test_non_time_names_pass(tmp_path):
    code = """
        def check(count, total):
            return count == total
    """
    assert lint_snippet(tmp_path, code,
                        rule="float-timestamp-eq") == []


# -- constants-consistency -------------------------------------------

BROKEN_CONSTANTS = """
    import enum


    class TypeID(enum.IntEnum):
        M_SP_NA_1 = 1
        M_DP_NA_1 = 3
        M_ME_TF_1 = 36

    TYPE_ID_DESCRIPTIONS = {TypeID.M_SP_NA_1: "Single-point"}
    OBSERVED_TYPE_IDS = (TypeID.M_ME_TF_1,)
    TYPE_ID_SYMBOLS = {TypeID.M_DP_NA_1: ("Bogus",)}
"""

BROKEN_CODECS = """
    from staticcheck_fixture_constants import TypeID


    class _Codec:
        def encode(self, element):
            return b""

        def decode(self, data, offset):
            return None, 0

    ELEMENT_CODECS = {TypeID.M_SP_NA_1: _Codec(), 99: _Codec()}
"""


@pytest.fixture
def broken_tables(tmp_path, monkeypatch):
    (tmp_path / "staticcheck_fixture_constants.py").write_text(
        textwrap.dedent(BROKEN_CONSTANTS))
    (tmp_path / "staticcheck_fixture_codecs.py").write_text(
        textwrap.dedent(BROKEN_CODECS))
    monkeypatch.syspath_prepend(str(tmp_path))
    for name in ("staticcheck_fixture_constants",
                 "staticcheck_fixture_codecs"):
        sys.modules.pop(name, None)
    yield ConstantsConsistencyRule(
        constants_module="staticcheck_fixture_constants",
        codecs_module="staticcheck_fixture_codecs")
    for name in ("staticcheck_fixture_constants",
                 "staticcheck_fixture_codecs"):
        sys.modules.pop(name, None)


def test_consistency_rule_flags_broken_fixture(broken_tables):
    messages = [finding.message
                for finding in broken_tables.check_project([])]
    assert any("has no ELEMENT_CODECS dispatch entry" in message
               for message in messages)
    assert any("orphan dispatch entry" in message
               for message in messages)
    assert any("has no Table 5 description" in message
               for message in messages)
    assert any("has no Table 8 physical-symbol row" in message
               for message in messages)
    assert any("orphan symbol row" in message for message in messages)
    assert any("unknown physical symbol 'Bogus'" in message
               for message in messages)


def test_consistency_rule_passes_on_real_tables():
    rule = ConstantsConsistencyRule()
    assert list(rule.check_project([])) == []


def test_consistency_rule_reports_unimportable_module():
    rule = ConstantsConsistencyRule(
        constants_module="repro.no_such_module")
    findings = list(rule.check_project([]))
    assert len(findings) == 1
    assert "cannot import" in findings[0].message


# -- suppressions ----------------------------------------------------

def test_line_suppression_by_rule_id(tmp_path):
    code = """
        import random
        import time

        now = time.time()  # staticcheck: ignore[determinism]
        jitter = random.random()
    """
    findings = lint_snippet(tmp_path, code, rule="determinism")
    assert len(findings) == 1
    assert "random.random" in findings[0].message


def test_line_suppression_without_ids_covers_all_rules(tmp_path):
    code = """
        import time

        now = time.time()  # staticcheck: ignore
    """
    assert lint_snippet(tmp_path, code, rule="determinism") == []


def test_file_wide_suppression(tmp_path):
    code = """
        # staticcheck: ignore-file[determinism]
        import time

        now = time.time()
    """
    assert lint_snippet(tmp_path, code, rule="determinism") == []


def test_suppressions_are_counted(tmp_path):
    pkg = tmp_path / "simnet"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import time\n"
        "now = time.time()  # staticcheck: ignore[determinism]\n")
    result = lint_paths([pkg], select=["determinism"])
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_index_parses_id_lists():
    index = SuppressionIndex.scan(
        "x = 1  # staticcheck: ignore[a, b]\n")
    assert index.by_line[1] == frozenset({"a", "b"})


# -- engine ----------------------------------------------------------

def test_syntax_error_becomes_parse_error_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    result = lint_paths([bad])
    assert [finding.rule_id for finding in result.findings] \
        == ["parse-error"]
    assert result.exit_code == 1


def test_module_path_for_maps_src_layout():
    path = Path(__file__).resolve().parents[2] \
        / "src" / "repro" / "simnet" / "clock.py"
    assert module_path_for(path) == "repro.simnet.clock"


def test_findings_sorted_by_location(tmp_path):
    code = """
        import time

        def f(xs=[]):
            return time.time()
    """
    pkg = tmp_path / "simnet"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(textwrap.dedent(code))
    result = lint_paths([pkg],
                        select=["determinism", "mutable-default"])
    lines = [finding.line for finding in result.findings]
    assert lines == sorted(lines)


# -- reporters -------------------------------------------------------

@pytest.fixture
def sample_result(tmp_path):
    pkg = tmp_path / "simnet"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import time\nnow = time.time()\n")
    return lint_paths([pkg], select=["determinism"],
                      root=tmp_path)


def test_text_reporter_format(sample_result):
    report = format_text(sample_result)
    assert "simnet/mod.py:2:7: error [determinism]" in report
    assert "1 finding(s) (1 error, 0 warning, 0 note)" in report


def test_json_reporter_schema(sample_result):
    document = json.loads(format_json(sample_result))
    assert document["tool"]["name"] == "repro-staticcheck"
    assert document["files_checked"] == 2
    assert document["rules"] == ["determinism"]
    (finding,) = document["findings"]
    assert finding["path"] == "simnet/mod.py"
    assert finding["line"] == 2
    assert finding["rule"] == "determinism"
    assert finding["severity"] == "error"
    assert "wall clock" in finding["message"]


def test_sarif_reporter_schema(sample_result):
    document = json.loads(format_sarif(sample_result))
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-staticcheck"
    assert {rule["id"] for rule in driver["rules"]} \
        >= {"determinism"}
    (result,) = run["results"]
    assert result["ruleId"] == "determinism"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "simnet/mod.py"
    assert location["region"]["startLine"] == 2


def test_sarif_on_clean_run_has_no_results(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    document = json.loads(format_sarif(lint_paths([clean])))
    assert document["runs"][0]["results"] == []


# -- CLI -------------------------------------------------------------

def test_cli_self_lint_is_clean():
    out = io.StringIO()
    assert repro_main(["lint", "--self"], out=out) == 0
    assert "0 finding(s)" in out.getvalue()


def test_cli_exits_nonzero_on_findings(tmp_path):
    pkg = tmp_path / "grid"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import time\nnow = time.time()\n")
    out = io.StringIO()
    assert repro_main(["lint", str(pkg)], out=out) == 1
    assert "[determinism]" in out.getvalue()


def test_cli_json_format_and_output_file(tmp_path):
    target = tmp_path / "report.json"
    out = io.StringIO()
    code = repro_main(["lint", "--self", "--format", "json",
                       "--output", str(target)], out=out)
    assert code == 0
    document = json.loads(target.read_text())
    assert document["findings"] == []
    assert "0 finding(s)" in out.getvalue()


def test_cli_list_rules():
    out = io.StringIO()
    assert repro_main(["lint", "--list-rules"], out=out) == 0
    for rule_id in ALL_RULES:
        assert rule_id in out.getvalue()


def test_cli_unknown_select_is_usage_error():
    assert repro_main(["lint", "--self",
                       "--select", "no-such-rule"]) == 2


def test_cli_seeded_violation_per_rule_fails(tmp_path):
    """Acceptance: a fixture violating each rule must exit non-zero."""
    fixtures = {
        "determinism": "import time\nnow = time.time()\n",
        "struct-format": "import struct\nstruct.pack('HH', 1, 2)\n",
        "bare-except":
            "try:\n    x = 1\nexcept:\n    x = 2\n",
        "silent-swallow":
            "try:\n    x = 1\nexcept Exception:\n    pass\n",
        "mutable-default": "def f(xs=[]):\n    return xs\n",
        "float-timestamp-eq":
            "def f(timestamp, now):\n"
            "    return timestamp == now\n",
    }
    for rule_id, code in fixtures.items():
        pkg = tmp_path / rule_id.replace("-", "_") / "simnet"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(code)
        exit_code = repro_main(
            ["lint", str(pkg), "--select", rule_id])
        assert exit_code == 1, rule_id


class TestResultCache:
    """The mtime-keyed per-file findings cache (cache.py)."""

    @staticmethod
    def _write_pkg(tmp_path: Path, body: str) -> Path:
        pkg = tmp_path / "simnet"
        pkg.mkdir(exist_ok=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(textwrap.dedent(body))
        return pkg

    @staticmethod
    def _cache(tmp_path: Path):
        from repro.devtools.staticcheck.cache import ResultCache
        return ResultCache(path=tmp_path / "store" / "cache.json")

    def test_hit_reproduces_findings(self, tmp_path):
        pkg = self._write_pkg(tmp_path, """
            import time
            def now():
                return time.time()
        """)
        cache = self._cache(tmp_path)
        fresh = lint_paths([pkg], select=["determinism"], cache=cache)
        assert fresh.findings
        cache.save()
        rerun = lint_paths([pkg], select=["determinism"],
                           cache=self._cache(tmp_path))
        assert rerun.findings == fresh.findings
        assert rerun.files_checked == fresh.files_checked

    def test_edit_invalidates(self, tmp_path):
        import os
        pkg = self._write_pkg(tmp_path, """
            import time
            def now():
                return time.time()
        """)
        cache = self._cache(tmp_path)
        assert lint_paths([pkg], select=["determinism"],
                          cache=cache).findings
        target = pkg / "mod.py"
        target.write_text("def now():\n    return 0.0\n")
        os.utime(target, ns=(12345, 12345))  # force a new signature
        clean = lint_paths([pkg], select=["determinism"], cache=cache)
        assert clean.findings == []

    def test_rule_set_changes_signature(self, tmp_path):
        from repro.devtools.staticcheck.cache import rules_signature
        assert rules_signature(["determinism"]) \
            != rules_signature(["determinism", "bare-except"])
        assert rules_signature(["b", "a"]) == rules_signature(["a", "b"])

    def test_suppressions_cached(self, tmp_path):
        pkg = self._write_pkg(tmp_path, """
            import time
            def now():
                return time.time()  # staticcheck: ignore[determinism]
        """)
        cache = self._cache(tmp_path)
        first = lint_paths([pkg], select=["determinism"], cache=cache)
        assert (first.findings, first.suppressed) == ([], 1)
        second = lint_paths([pkg], select=["determinism"], cache=cache)
        assert (second.findings, second.suppressed) == ([], 1)

    def test_custom_rule_objects_bypass_cache(self, tmp_path):
        pkg = self._write_pkg(tmp_path, "x = 1\n")
        cache = self._cache(tmp_path)
        rules = build_rules(["determinism"])
        lint_paths([pkg], rules=rules, cache=cache)
        cache.save()
        assert not (tmp_path / "store" / "cache.json").exists()

    def test_cli_no_cache_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cc"))
        pkg = self._write_pkg(tmp_path, "x = 1\n")
        out = io.StringIO()
        assert repro_main(["lint", str(pkg)], out=out) == 0
        assert (tmp_path / "cc" / "staticcheck-cache.json").exists()
        (tmp_path / "cc" / "staticcheck-cache.json").unlink()
        out = io.StringIO()
        assert repro_main(["lint", "--no-cache", str(pkg)],
                          out=out) == 0
        assert not (tmp_path / "cc"
                    / "staticcheck-cache.json").exists()
