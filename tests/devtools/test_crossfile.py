"""Tests for the whole-program (phase 2) side of staticcheck.

Covers the project model (import graph, deep digests, callable
resolution), each cross-file rule family against a seeded fixture
mini-package where the violation fires exactly once, the
dependency-aware cache invalidation (editing an imported module
re-analyses the importer even though its mtime never moved), the
baseline ratchet, phase-1 parallelism parity, and the CLI flags.
"""

from __future__ import annotations

import ast
import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.staticcheck import (Baseline, Finding,
                                        ModuleSummary, ProjectModel,
                                        RelatedLocation, RunResult,
                                        Severity, extract_summary,
                                        fingerprint, format_sarif,
                                        format_text, lint_paths)
from repro.devtools.staticcheck.cache import (ResultCache,
                                              rules_signature)
from repro.devtools.staticcheck.cli import main as lint_main
from repro.devtools.staticcheck.engine import (discover_files,
                                               module_path_for)
from repro.devtools.staticcheck.rules.crossfile.deprecation import (
    DeprecationExpiryRule)
from repro.devtools.staticcheck.rules.crossfile.schemadrift import (
    SchemaDriftRule, parse_schema_table)
from repro.devtools.staticcheck.rules.crossfile.shardsafety import (
    ShardSafetyRule)
from repro.devtools.staticcheck.rules.crossfile.timeflow import (
    TimeUnitFlowRule)
from repro.devtools.staticcheck.suppressions import SuppressionIndex


def write_package(root: Path, name: str,
                  files: dict[str, str]) -> Path:
    """Materialise a fixture mini-package under ``root``."""
    pkg = root / name
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for rel, code in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code))
    return pkg


def build_model(pkg: Path) -> ProjectModel:
    """Phase 1 by hand: summaries for every file under ``pkg``."""
    summaries: dict[str, ModuleSummary] = {}
    for path in discover_files([pkg]):
        source = path.read_text()
        module = module_path_for(path)
        summaries[module] = extract_summary(
            str(path), source, ast.parse(source), module)
    return ProjectModel(summaries)


# -- project model ---------------------------------------------------

MODEL_FILES = {
    "b.py": """
        VALUE = 1


        def helper(time_us):
            return VALUE + time_us
    """,
    "a.py": """
        from . import b
        from .b import helper


        def top():
            return helper(b.VALUE)
    """,
    "c.py": "OTHER = 2\n",
}


def test_import_graph_and_closure(tmp_path):
    model = build_model(write_package(tmp_path, "pkg", MODEL_FILES))
    assert "pkg.b" in model.graph["pkg.a"]
    assert model.closure("pkg.a") >= {"pkg.b"}
    assert "pkg.b" not in model.closure("pkg.c")


def test_deep_digest_tracks_transitive_imports(tmp_path):
    pkg = write_package(tmp_path, "pkg", MODEL_FILES)
    before = build_model(pkg).deep_digest("pkg.a")
    (pkg / "b.py").write_text("VALUE = 22\n")
    after = build_model(pkg).deep_digest("pkg.a")
    assert before != after


def test_resolve_callable_through_bindings(tmp_path):
    model = build_model(write_package(tmp_path, "pkg", MODEL_FILES))
    direct = model.resolve_callable("pkg.a", "helper")
    assert direct is not None and direct[0] == "pkg.b"
    dotted = model.resolve_callable("pkg.a", "b.helper")
    assert dotted is not None and dotted[0] == "pkg.b"
    assert dotted[1].params == ("time_us",)
    assert model.resolve_callable("pkg.a", "json.dumps") is None


def test_reachable_from_covers_package_and_imports(tmp_path):
    model = build_model(write_package(tmp_path, "pkg", MODEL_FILES))
    reachable = model.reachable_from("pkg")
    assert {"pkg", "pkg.a", "pkg.b", "pkg.c"} <= reachable
    assert model.reachable_from("elsewhere") == frozenset()


# -- shard-safety ----------------------------------------------------

MUTATED_REGISTRY = """
    REGISTRY: dict = {}


    def remember(key, value):
        REGISTRY[key] = value
"""


def test_shard_safety_flags_runtime_mutated_global(tmp_path):
    pkg = write_package(tmp_path, "fleet",
                        {"state.py": MUTATED_REGISTRY})
    result = lint_paths([pkg], rules=[ShardSafetyRule(root="fleet")])
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert "REGISTRY" in finding.message
    assert finding.related and finding.related[0].line > 0


def test_shard_safety_allows_import_time_population(tmp_path):
    pkg = write_package(tmp_path, "fleet", {"tables.py": """
        DISPATCH = {}
        DISPATCH["m_sp_na"] = 1
        FROZEN = {"a": 1}
    """})
    result = lint_paths([pkg], rules=[ShardSafetyRule(root="fleet")])
    assert result.findings == []


def test_shard_safety_ignores_unreachable_modules(tmp_path):
    pkg = write_package(tmp_path, "other",
                        {"state.py": MUTATED_REGISTRY})
    result = lint_paths([pkg], rules=[ShardSafetyRule(root="fleet")])
    assert result.findings == []


def test_shard_safety_requires_frozen_slots_snapshot(tmp_path):
    pkg = write_package(tmp_path, "fleet", {"snap.py": """
        from dataclasses import dataclass


        @dataclass
        class WorkerSnapshot:
            count: int
    """})
    result = lint_paths([pkg], rules=[ShardSafetyRule(root="fleet")])
    assert len(result.findings) == 1
    message = result.findings[0].message
    assert "frozen=True" in message and "slots=True" in message


def test_shard_safety_flags_unpicklable_snapshot_field(tmp_path):
    pkg = write_package(tmp_path, "fleet", {"snap.py": """
        from dataclasses import dataclass
        from threading import Lock


        @dataclass(frozen=True, slots=True)
        class WorkerSnapshot:
            count: int
            guard: Lock
    """})
    result = lint_paths([pkg], rules=[ShardSafetyRule(root="fleet")])
    assert len(result.findings) == 1
    assert "pickle-safe" in result.findings[0].message


def test_shard_safety_follows_field_annotation_closure(tmp_path):
    # StageDetail is not Snapshot-suffixed but is referenced from a
    # snapshot field, so it joins the wire format and must comply.
    pkg = write_package(tmp_path, "fleet", {"snap.py": """
        from dataclasses import dataclass


        @dataclass
        class StageDetail:
            count: int


        @dataclass(frozen=True, slots=True)
        class LinkSnapshot:
            detail: StageDetail
    """})
    result = lint_paths([pkg], rules=[ShardSafetyRule(root="fleet")])
    assert len(result.findings) == 1
    assert "StageDetail" in result.findings[0].message


SHARD_ENTRYPOINT_FILES = {
    "shard.py": """
        from dataclasses import dataclass


        class ShardedFleetSupervisor:
            def __init__(self, factory, *, workers, path=None):
                self.factory = factory


        @dataclass(frozen=True)
        class WorkerConfig:
            shard: int
            shards: int
            factory: object


        def run_shard_worker(config, conn):
            return config
    """,
    "caller.py": """
        from .shard import (ShardedFleetSupervisor, WorkerConfig,
                            run_shard_worker)


        def module_factory(link, source):
            return None


        def bad_lambda(path):
            return ShardedFleetSupervisor(lambda link, source: None,
                                          workers=2, path=path)


        def bad_closure():
            def local_factory(link, source):
                return None
            return WorkerConfig(shard=0, shards=1,
                                factory=local_factory)


        def bad_worker(conn):
            return run_shard_worker(lambda: None, conn)


        def fine(path):
            return ShardedFleetSupervisor(module_factory, workers=2,
                                          path=path)
    """,
}


def test_shard_safety_flags_unpicklable_factories(tmp_path):
    pkg = write_package(tmp_path, "fleet", SHARD_ENTRYPOINT_FILES)
    result = lint_paths([pkg], rules=[ShardSafetyRule(root="fleet")])
    messages = sorted(f.message for f in result.findings)
    assert len(messages) == 3
    assert any("`ShardedFleetSupervisor` ships `factory`" in m
               and "a lambda" in m for m in messages)
    assert any("`WorkerConfig` ships `factory`" in m
               and "local function `local_factory`" in m
               for m in messages)
    assert any("`run_shard_worker` ships `config`" in m
               for m in messages)
    # The module-level factory in fine() is never flagged.
    assert all("module_factory" not in m for m in messages)


def test_shard_safety_factory_check_is_project_wide(tmp_path):
    # Callers outside the stream closure still hit the process
    # boundary: root does not reach caller.py, yet the lambda is
    # flagged (while the reachability-gated checks stay silent).
    pkg = write_package(tmp_path, "fleet", SHARD_ENTRYPOINT_FILES)
    rule = ShardSafetyRule(root="fleet.nothing",
                           shard_module="fleet.shard")
    result = lint_paths([pkg], rules=[rule])
    assert len(result.findings) == 3
    assert all("worker process" in f.message
               for f in result.findings)


# -- schema-drift ----------------------------------------------------

WIRE_SNAPSHOT = """
    from dataclasses import dataclass


    @dataclass(frozen=True, slots=True)
    class ItemSnapshot:
        name: str
        count: int
        extra: int

        def to_json(self):
            return {"name": self.name, "count": self.count,
                    "undocumented": 1}
"""

DOCS_TABLE = """\
# wire schema

<!-- staticcheck: schema-table -->

| Key | Item |
| --- | --- |
| `name` | ✓ |
| `count` | ✓ |
| `legacy` | ✓ |
"""


def schema_rule(tmp_path: Path, docs: str) -> SchemaDriftRule:
    docs_path = tmp_path / "schema.md"
    docs_path.write_text(docs, encoding="utf-8")
    return SchemaDriftRule(package="wire", docs_path=docs_path,
                           columns={"ItemSnapshot": "Item"})


def test_schema_drift_three_way(tmp_path):
    pkg = write_package(tmp_path, "wire",
                        {"snap.py": WIRE_SNAPSHOT})
    rule = schema_rule(tmp_path, DOCS_TABLE)
    result = lint_paths([pkg], rules=[rule])
    messages = sorted(f.message for f in result.findings)
    assert len(messages) == 3
    assert any("`ItemSnapshot.extra` is not emitted" in m
               for m in messages)
    assert any("key `undocumented` emitted" in m for m in messages)
    assert any("documented key `legacy` is not emitted" in m
               for m in messages)


def test_schema_drift_clean_when_all_three_agree(tmp_path):
    pkg = write_package(tmp_path, "wire", {"snap.py": """
        from dataclasses import dataclass


        @dataclass(frozen=True, slots=True)
        class ItemSnapshot:
            name: str

            def to_json(self):
                return {"name": self.name}
    """})
    docs = ("<!-- staticcheck: schema-table -->\n\n"
            "| Key | Item |\n| --- | --- |\n| `name` | ✓ |\n")
    result = lint_paths([pkg], rules=[schema_rule(tmp_path, docs)])
    assert result.findings == []


def test_schema_drift_missing_marker_is_one_finding(tmp_path):
    pkg = write_package(tmp_path, "wire",
                        {"snap.py": WIRE_SNAPSHOT})
    rule = schema_rule(tmp_path, "# no table here\n")
    result = lint_paths([pkg], rules=[rule])
    # fields-vs-wire drift still fires; the docs side collapses to
    # one missing-marker finding instead of per-key noise.
    markers = [f for f in result.findings
               if "schema table marker" in f.message]
    assert len(markers) == 1


def test_schema_drift_skips_partial_serializers(tmp_path):
    pkg = write_package(tmp_path, "wire", {"snap.py": """
        from dataclasses import dataclass


        @dataclass(frozen=True, slots=True)
        class ItemSnapshot:
            name: str

            def to_json(self):
                if self.name:
                    return {"name": self.name}
                return dict(name="")
    """})
    docs = ("<!-- staticcheck: schema-table -->\n\n"
            "| Key | Item |\n| --- | --- |\n| `name` | ✓ |\n")
    result = lint_paths([pkg], rules=[schema_rule(tmp_path, docs)])
    assert result.findings == []


def test_parse_schema_table():
    table = parse_schema_table(DOCS_TABLE)
    assert table is not None
    assert set(table["Item"]) == {"name", "count", "legacy"}
    assert table["Item"]["name"] == 7  # 1-based doc line
    assert parse_schema_table("# nothing\n") is None


# -- deprecation-expiry ----------------------------------------------

def test_deprecation_without_remove_in_is_flagged(tmp_path):
    pkg = write_package(tmp_path, "legacy", {"shim.py": """
        import warnings


        def old_api():
            warnings.warn("old_api is deprecated",
                          DeprecationWarning, stacklevel=2)
    """})
    rule = DeprecationExpiryRule(current_version="1.0.0")
    result = lint_paths([pkg], rules=[rule])
    assert len(result.findings) == 1
    assert "remove-in" in result.findings[0].message


def test_expired_deprecation_lists_surviving_call_sites(tmp_path):
    pkg = write_package(tmp_path, "legacy", {
        "shim.py": """
            import warnings


            def old_api():
                warnings.warn(  # staticcheck: remove-in=0.9
                    "old_api is deprecated", DeprecationWarning)
        """,
        "user.py": """
            from .shim import old_api


            def use():
                return old_api()
        """,
    })
    rule = DeprecationExpiryRule(current_version="1.0.0")
    result = lint_paths([pkg], rules=[rule])
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert "due for removal in 0.9" in finding.message
    assert any(loc.path.endswith("user.py")
               for loc in finding.related)


def test_future_deprecation_is_clean(tmp_path):
    pkg = write_package(tmp_path, "legacy", {"shim.py": """
        import warnings


        def old_api():
            warnings.warn(  # staticcheck: remove-in=9.0
                "old_api is deprecated", DeprecationWarning)
    """})
    rule = DeprecationExpiryRule(current_version="1.0.0")
    result = lint_paths([pkg], rules=[rule])
    assert result.findings == []


# -- time-unit-flow --------------------------------------------------

TIMEFLOW_FILES = {
    "clockapi.py": """
        def schedule(event, time_us):
            return (event, time_us)
    """,
    "caller.py": """
        from .clockapi import schedule


        def run(timestamp):
            return schedule("x", timestamp)
    """,
}


def test_time_unit_flow_flags_seconds_into_us_param(tmp_path):
    pkg = write_package(tmp_path, "timing", TIMEFLOW_FILES)
    result = lint_paths([pkg], rules=[TimeUnitFlowRule()])
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.path.endswith("caller.py")
    assert "`time_us`" in finding.message
    assert finding.related[0].path.endswith("clockapi.py")


def test_time_unit_flow_keyword_argument(tmp_path):
    pkg = write_package(tmp_path, "timing", {
        "clockapi.py": TIMEFLOW_FILES["clockapi.py"],
        "caller.py": """
            from . import clockapi


            def run(deadline):
                return clockapi.schedule("x", time_us=deadline)
        """,
    })
    result = lint_paths([pkg], rules=[TimeUnitFlowRule()])
    assert len(result.findings) == 1
    assert "`deadline`" in result.findings[0].message


def test_time_unit_flow_accepts_tick_named_values(tmp_path):
    pkg = write_package(tmp_path, "timing", {
        "clockapi.py": TIMEFLOW_FILES["clockapi.py"],
        "caller.py": """
            from .clockapi import schedule


            def run(start_us):
                return schedule("x", start_us)
        """,
    })
    result = lint_paths([pkg], rules=[TimeUnitFlowRule()])
    assert result.findings == []


def test_time_unit_flow_ignores_unresolved_callees(tmp_path):
    pkg = write_package(tmp_path, "timing", {"caller.py": """
        import sched


        def run(timestamp):
            return sched.delay("x", timestamp)
    """})
    result = lint_paths([pkg], rules=[TimeUnitFlowRule()])
    assert result.findings == []


# -- suppressions on cross-file findings -----------------------------

def test_crossfile_finding_respects_suppression_with_reason(tmp_path):
    suppressed_registry = (
        "REGISTRY: dict = {}  "
        "# staticcheck: ignore[shard-safety] -- process-local\n"
        "\n"
        "\n"
        "def remember(key, value):\n"
        "    REGISTRY[key] = value\n")
    pkg = write_package(tmp_path, "fleet",
                        {"state.py": suppressed_registry})
    result = lint_paths([pkg], rules=[ShardSafetyRule(root="fleet")])
    assert result.findings == []
    assert result.suppressed == 1
    index = SuppressionIndex.scan((pkg / "state.py").read_text())
    assert "process-local" in "".join(index.reasons.values())


# -- dependency-aware invalidation -----------------------------------

def test_editing_imported_module_reanalyzes_importer(tmp_path):
    pkg = write_package(tmp_path, "pkg", {
        "b.py": "VALUE = 1\n",
        "a.py": "from . import b\n\n\ndef get():\n"
                "    return b.VALUE\n",
        "c.py": "OTHER = 2\n",
    })
    cache_path = tmp_path / "cache.json"

    def run() -> RunResult:
        return lint_paths([pkg], select=["shard-safety"],
                          cache=ResultCache(path=cache_path))

    first = run()
    assert set(first.reanalyzed) == {"pkg", "pkg.a", "pkg.b",
                                     "pkg.c"}
    second = run()
    assert second.reanalyzed == []  # everything served from cache
    (pkg / "b.py").write_text("VALUE = 22\n")
    third = run()
    # pkg.a's mtime never moved, but its deep digest changed through
    # the edited import — the cross-file verdict is recomputed.
    assert "pkg.a" in third.reanalyzed
    assert "pkg.b" in third.reanalyzed
    assert "pkg.c" not in third.reanalyzed


def test_rule_version_is_part_of_the_signature():
    assert rules_signature([("x", 1)]) != rules_signature([("x", 2)])
    assert rules_signature(["x"]) == rules_signature([("x", 1)])


def test_cache_rejects_entries_from_other_rule_version(tmp_path):
    cache = ResultCache(path=tmp_path / "cache.json")
    target = tmp_path / "m.py"
    target.write_text("x = 1\n")
    old = rules_signature([("r", 1)])
    new = rules_signature([("r", 2)])
    cache.put(target, old, [], 0)
    assert cache.get(target, old) is not None
    assert cache.get(target, new) is None


def test_cache_entry_without_summary_misses_when_needed(tmp_path):
    cache = ResultCache(path=tmp_path / "cache.json")
    target = tmp_path / "m.py"
    target.write_text("x = 1\n")
    signature = rules_signature(["r"])
    cache.put(target, signature, [], 0, summary=None)
    assert cache.get(target, signature) is not None
    assert cache.get(target, signature, need_summary=True) is None


# -- baseline ratchet ------------------------------------------------

def sample_finding(path: str = "src/x.py",
                   message: str = "boom") -> Finding:
    return Finding(path=path, line=3, col=1, rule_id="shard-safety",
                   message=message, severity=Severity.ERROR)


def test_baseline_roundtrip_and_apply(tmp_path):
    findings = [sample_finding(), sample_finding(),
                sample_finding(message="other")]
    baseline = Baseline.from_findings(findings)
    assert len(baseline) == 3
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    new, grandfathered = loaded.apply(findings)
    assert new == [] and grandfathered == 3
    # one extra occurrence of a known fingerprint is new
    new, grandfathered = loaded.apply(findings + [sample_finding()])
    assert len(new) == 1 and grandfathered == 3


def test_baseline_missing_file_is_empty_and_corrupt_raises(tmp_path):
    assert len(Baseline.load(tmp_path / "absent.json")) == 0
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("not json")
    with pytest.raises(ValueError):
        Baseline.load(corrupt)


def test_baseline_file_is_human_auditable(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([sample_finding()]).save(path)
    document = json.loads(path.read_text())
    entry = document["entries"][0]
    assert entry["fingerprint"] == fingerprint(sample_finding())
    assert entry["path"] == "src/x.py"
    assert entry["rule"] == "shard-safety"


def test_lint_paths_applies_baseline(tmp_path):
    pkg = write_package(tmp_path, "fleet",
                        {"state.py": MUTATED_REGISTRY})
    rules = [ShardSafetyRule(root="fleet")]
    first = lint_paths([pkg], rules=rules)
    assert len(first.findings) == 1
    baseline = Baseline.from_findings(first.findings)
    second = lint_paths([pkg], rules=rules, baseline=baseline)
    assert second.findings == [] and second.baselined == 1


# -- phase-1 parallelism ---------------------------------------------

def test_parallel_phase1_matches_serial(tmp_path):
    files = {
        f"mod{index}.py": """
            def f():
                try:
                    return 1
                except:
                    raise
        """
        for index in range(5)}
    pkg = write_package(tmp_path, "simnet", files)
    serial = lint_paths([pkg], select=["bare-except"])
    parallel = lint_paths([pkg], select=["bare-except"], jobs=2)
    assert [f.render() for f in parallel.findings] \
        == [f.render() for f in serial.findings]
    assert len(serial.findings) == 5


# -- reporters: related locations ------------------------------------

def related_result() -> RunResult:
    finding = Finding(
        path="src/a.py", line=4, col=1, rule_id="time-unit-flow",
        message="seconds into ticks", severity=Severity.ERROR,
        related=(RelatedLocation(path="src/b.py", line=9,
                                 message="callee defined here"),))
    return RunResult(findings=[finding], files_checked=2,
                     rule_ids=["time-unit-flow"])


def test_sarif_carries_related_locations():
    document = json.loads(format_sarif(related_result()))
    result = document["runs"][0]["results"][0]
    related = result["relatedLocations"]
    assert related[0]["physicalLocation"]["artifactLocation"][
        "uri"] == "src/b.py"
    assert related[0]["message"]["text"] == "callee defined here"


def test_text_report_renders_related_and_baselined():
    run = related_result()
    run.baselined = 2
    text = format_text(run)
    assert "related: src/b.py:9" in text
    assert "2 baselined" in text


# -- CLI: baseline flags ---------------------------------------------

BARE_EXCEPT = """
    def f():
        try:
            return 1
        except:
            raise
"""


def test_cli_baseline_ratchet_flow(tmp_path):
    pkg = write_package(tmp_path, "simnet",
                        {"mod.py": BARE_EXCEPT})
    baseline_path = tmp_path / ".staticcheck-baseline.json"
    base_args = [str(pkg), "--select", "bare-except", "--no-cache"]
    assert lint_main(base_args, out=io.StringIO()) == 1
    assert lint_main(base_args + ["--update-baseline", "--baseline",
                                  str(baseline_path)],
                     out=io.StringIO()) == 0
    assert baseline_path.exists()
    buffer = io.StringIO()
    assert lint_main(base_args + ["--baseline",
                                  str(baseline_path)],
                     out=buffer) == 0
    assert "1 baselined" in buffer.getvalue()
    # a second violation is new relative to the ratchet
    write_package(tmp_path, "simnet", {"fresh.py": BARE_EXCEPT})
    assert lint_main(base_args + ["--baseline",
                                  str(baseline_path)]) == 1


def test_cli_corrupt_baseline_is_usage_error(tmp_path):
    pkg = write_package(tmp_path, "simnet",
                        {"mod.py": BARE_EXCEPT})
    corrupt = tmp_path / "bad.json"
    corrupt.write_text("not json")
    rc = lint_main([str(pkg), "--select", "bare-except",
                    "--no-cache", "--baseline", str(corrupt)])
    assert rc == 2


def test_repro_cli_accepts_baseline_flags(tmp_path):
    pkg = write_package(tmp_path, "simnet",
                        {"mod.py": BARE_EXCEPT})
    baseline_path = tmp_path / "ratchet.json"
    rc = repro_main(["lint", str(pkg), "--select", "bare-except",
                     "--no-cache", "--update-baseline",
                     "--baseline", str(baseline_path)])
    assert rc == 0
    rc = repro_main(["lint", str(pkg), "--select", "bare-except",
                     "--no-cache", "--baseline",
                     str(baseline_path)])
    assert rc == 0
