"""Smoke tests that keep the runnable examples from rotting.

The heavier capture-generating examples are exercised at a reduced
scale through their underlying APIs elsewhere; here the cheap,
pure-protocol examples are executed end to end.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestCheapExamples:
    def test_malformed_traffic_forensics(self, capsys):
        out = run_example("malformed_traffic_forensics.py", capsys)
        assert "non-compliant: IOA=2 octets" in out
        assert "PASSTHROUGH" in out

    def test_live_endpoints(self, capsys):
        out = run_example("live_endpoints.py", capsys)
        assert "data transfer running: master=True" in out
        assert "AGC set point" in out
        # Streaming half: learn on live traffic, stay quiet on routine
        # interrogation, alert on the never-seen AGC command.
        assert "routine interrogation: 0 alerts" in out
        assert "ALERT ('C1', 'O1'): never-seen tokens [I50]" in out
        assert "live Markov chain" in out

    def test_failover_drill(self, capsys):
        out = run_example("failover_drill.py", capsys)
        assert "active link: C2" in out
        assert "checksum OK" in out


class TestExamplesExist:
    @pytest.mark.parametrize("name", [
        "quickstart.py", "malformed_traffic_forensics.py",
        "agc_event_analysis.py", "whitelist_ids.py",
        "live_endpoints.py", "failover_drill.py",
        "operator_report.py", "fleet_monitor.py",
    ])
    def test_present_and_compiles(self, name):
        path = EXAMPLES / name
        assert path.exists()
        compile(path.read_text(), str(path), "exec")
