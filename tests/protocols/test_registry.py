"""The protocol registry: lookup, detection, spec invariants."""

from __future__ import annotations

import json

import pytest

from repro.iec104.codec import StreamDecoder, TolerantParser
from repro.iec104.constants import IEC104_PORT
from repro.protocols import (IEC104_SPEC, MODBUS_PORT, MODBUS_SPEC,
                             ProtocolSpec, all_protocols,
                             detect_protocol, get_protocol,
                             register_protocol, registered_names)
from repro.protocols.modbus import ModbusParser, ModbusStreamDecoder


class TestRegistry:
    def test_builtin_specs_are_registered(self):
        assert registered_names() == ("iec104", "modbus")
        assert get_protocol("iec104") is IEC104_SPEC
        assert get_protocol("modbus") is MODBUS_SPEC

    def test_all_protocols_sorted_by_name(self):
        specs = all_protocols()
        assert [spec.name for spec in specs] \
            == sorted(spec.name for spec in specs)

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ValueError) as excinfo:
            get_protocol("dnp3")
        message = str(excinfo.value)
        assert "unknown protocol 'dnp3'" in message
        assert "iec104" in message and "modbus" in message

    def test_identical_reregistration_is_idempotent(self):
        assert register_protocol(MODBUS_SPEC) is MODBUS_SPEC
        assert registered_names() == ("iec104", "modbus")

    def test_conflicting_registration_is_an_error(self):
        conflicting = ProtocolSpec(
            name="modbus", title="not the same", ports=(503,),
            tokens=(), _parser_factory=ModbusParser,
            _decoder_factory=lambda parser, key: None)
        with pytest.raises(ValueError, match="already registered"):
            register_protocol(conflicting)
        # The registry is untouched by the failed attempt.
        assert get_protocol("modbus") is MODBUS_SPEC


class TestDetection:
    def test_ports_map_to_their_specs(self):
        assert detect_protocol(49152, IEC104_PORT) is IEC104_SPEC
        assert detect_protocol(49152, MODBUS_PORT) is MODBUS_SPEC

    def test_detection_is_direction_agnostic(self):
        assert detect_protocol(MODBUS_PORT, 49152) is MODBUS_SPEC
        assert detect_protocol(IEC104_PORT, 49152) is IEC104_SPEC

    def test_unclaimed_ports_detect_nothing(self):
        assert detect_protocol(49152, 49153) is None

    def test_matches(self):
        assert MODBUS_SPEC.matches(1000, MODBUS_PORT)
        assert MODBUS_SPEC.matches(MODBUS_PORT, 1000)
        assert not MODBUS_SPEC.matches(1000, IEC104_PORT)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="needs a name"):
            ProtocolSpec(name="", title="x", ports=(1,), tokens=(),
                         _parser_factory=ModbusParser,
                         _decoder_factory=lambda parser, key: None)
        with pytest.raises(ValueError, match="at least one port"):
            ProtocolSpec(name="x", title="x", ports=(), tokens=(),
                         _parser_factory=ModbusParser,
                         _decoder_factory=lambda parser, key: None)

    def test_to_json_is_pure_metadata(self):
        for spec in all_protocols():
            document = spec.to_json()
            assert set(document) == {"name", "title", "ports",
                                     "tokens"}
            # Must be JSON-serializable as-is: no callables leak.
            assert json.loads(json.dumps(document)) == document

    def test_factories_build_the_protocol_stacks(self):
        iec_parser = IEC104_SPEC.new_parser()
        assert isinstance(iec_parser, TolerantParser)
        assert isinstance(
            IEC104_SPEC.new_stream_decoder(iec_parser, "L"),
            StreamDecoder)
        modbus_parser = MODBUS_SPEC.new_parser()
        assert isinstance(modbus_parser, ModbusParser)
        assert isinstance(
            MODBUS_SPEC.new_stream_decoder(modbus_parser, "L"),
            ModbusStreamDecoder)

    def test_parsers_are_fresh_per_call(self):
        assert IEC104_SPEC.new_parser() is not IEC104_SPEC.new_parser()
