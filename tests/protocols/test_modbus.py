"""Modbus/TCP codec: MBAP framing, PDU decode, stream resync."""

from __future__ import annotations

import pytest

from repro.protocols.modbus import (MAX_ADU_LENGTH, MBAP_HEADER,
                                    READ_HOLDING_REGISTERS,
                                    WRITE_SINGLE_REGISTER, ModbusAdu,
                                    ModbusParser, ModbusStreamDecoder,
                                    scan_mbap)


def read_request(transaction: int = 1, start: int = 100,
                 count: int = 4) -> ModbusAdu:
    return ModbusAdu(transaction=transaction, unit=1,
                     function=READ_HOLDING_REGISTERS,
                     data=bytes((start >> 8, start & 0xFF,
                                 count >> 8, count & 0xFF)))


class TestAdu:
    def test_encode_parse_round_trip(self):
        adu = read_request(transaction=0x1234)
        result = ModbusParser().parse_frame(adu.encode())
        assert result.ok and result.compliant
        assert result.apdu == adu

    def test_wire_layout(self):
        raw = read_request(transaction=0x0102).encode()
        # MBAP: transaction, protocol id 0, length = unit + PDU.
        assert raw[:2] == b"\x01\x02"
        assert raw[2:4] == b"\x00\x00"
        assert raw[4:6] == (len(raw) - 6).to_bytes(2, "big")
        assert len(raw) == MBAP_HEADER + 1 + 4

    def test_tokens(self):
        assert read_request().token == "F3"
        exception = ModbusAdu(transaction=1, unit=1,
                              function=READ_HOLDING_REGISTERS | 0x80,
                              data=b"\x02")
        assert exception.is_exception
        assert exception.token == "X3"
        assert not read_request().is_exception


class TestParser:
    def test_truncated_adu_is_an_error(self):
        result = ModbusParser().parse_frame(b"\x00\x01\x00\x00")
        assert not result.ok
        assert "truncated" in str(result.error)

    def test_nonzero_protocol_id_is_an_error(self):
        raw = bytearray(read_request().encode())
        raw[2] = 1
        result = ModbusParser().parse_frame(bytes(raw))
        assert not result.ok
        assert "protocol id" in str(result.error)

    def test_length_mismatch_is_an_error(self):
        raw = bytearray(read_request().encode())
        raw[5] += 3  # claim a longer PDU than is present
        result = ModbusParser().parse_frame(bytes(raw))
        assert not result.ok
        assert "disagrees" in str(result.error)

    def test_parse_stream_splits_back_to_back_adus(self):
        frames = [read_request(transaction=index)
                  for index in range(3)]
        payload = b"".join(frame.encode() for frame in frames)
        results = ModbusParser().parse_stream(payload)
        assert [result.apdu for result in results] == frames

    def test_parse_stream_reports_a_desynchronized_tail(self):
        payload = read_request().encode() + b"\x00\x01\x00\x99"
        results = ModbusParser().parse_stream(payload)
        assert results[0].ok
        assert not results[-1].ok
        assert "desynchronized" in str(results[-1].error)


class TestScan:
    def test_partial_frame_is_buffered_not_an_error(self):
        raw = read_request().encode()
        spans, stop, reason = scan_mbap(raw[:-2])
        assert spans == [] and stop == 0 and reason is None

    def test_implausible_length_is_a_desync(self):
        header = b"\x00\x01\x00\x00" \
            + (MAX_ADU_LENGTH + 1).to_bytes(2, "big") + b"\x01"
        spans, stop, reason = scan_mbap(header)
        assert spans == [] and stop == 0
        assert "implausible" in reason

    def test_offset_scan(self):
        raw = read_request().encode()
        spans, stop, reason = scan_mbap(b"\x00" * 0 + raw + raw,
                                        offset=len(raw))
        assert spans == [(len(raw), len(raw))]
        assert stop == 2 * len(raw) and reason is None


class TestStreamDecoder:
    def test_byte_by_byte_feed_recovers_every_frame(self):
        frames = [read_request(transaction=index)
                  for index in range(4)]
        payload = b"".join(frame.encode() for frame in frames)
        decoder = ModbusStreamDecoder()
        decoded = []
        for index in range(len(payload)):
            decoded.extend(decoder.feed(payload[index:index + 1]))
        assert [result.apdu for result in decoded] == frames
        assert decoder.pending == 0
        assert decoder.desync_bytes == 0

    def test_resync_after_garbage(self):
        good = read_request(transaction=7).encode()
        garbage = b"\xde\xad\x01\xbe\xef"
        decoder = ModbusStreamDecoder()
        results = decoder.feed(garbage + good)
        decoded = [result.apdu for result in results if result.ok]
        assert decoded and decoded[-1].transaction == 7
        assert decoder.desync_bytes > 0

    def test_pending_counts_the_buffered_partial(self):
        raw = read_request().encode()
        decoder = ModbusStreamDecoder()
        assert decoder.feed(raw[:5]) == []
        assert decoder.pending == 5
        results = decoder.feed(raw[5:])
        assert [result.apdu for result in results] \
            == [read_request()]
        assert decoder.pending == 0

    def test_write_request_round_trip(self):
        adu = ModbusAdu(transaction=9, unit=2,
                        function=WRITE_SINGLE_REGISTER,
                        data=b"\x00\x64\xff\x00")
        result = ModbusParser().parse_frame(adu.encode())
        assert result.ok
        assert result.apdu.token == "F6"

    @pytest.mark.parametrize("chunk", [1, 3, 7, 64])
    def test_chunking_is_invisible(self, chunk):
        frames = [read_request(transaction=index)
                  for index in range(6)]
        payload = b"".join(frame.encode() for frame in frames)
        decoder = ModbusStreamDecoder()
        decoded = []
        for offset in range(0, len(payload), chunk):
            decoded.extend(
                decoder.feed(payload[offset:offset + chunk]))
        assert [result.apdu for result in decoded] == frames
