"""The serve application: routing, sockets, lifecycle.

Two layers: ``ServeApp.respond`` is pure (request in, bytes out), so
most routing is pinned synchronously against a hand-fed hub; the
end-to-end class then runs the full ``serve_until`` stack — monitor
thread, hub, history store, asyncio server on a real ephemeral port —
and speaks actual HTTP and WebSocket to it.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.netstack.pcap import PcapRecord
from repro.serve import (ENDPOINTS, HistoryStore, ServeApp,
                         SnapshotHub, serve_until)
from repro.serve.wire import (OP_CLOSE, OP_PING, OP_PONG, OP_TEXT,
                              TEST_MASK_KEY, HttpRequest,
                              client_handshake, close_frame,
                              encode_frame, read_frame,
                              websocket_accept)
from repro.stream import (FleetSnapshot, LinkSnapshot, ListSource,
                          OnlineChains, StageCounters, StreamPipeline)


def get(path: str, query: dict | None = None,
        method: str = "GET") -> HttpRequest:
    return HttpRequest(method=method, target=path, path=path,
                       query=query or {}, headers={})


def parse(response: bytes) -> tuple[int, dict]:
    head, _sep, body = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body) if body else {}


def link_snapshot(link: str, time_us: int = 1_000_000,
                  packets: int = 3) -> LinkSnapshot:
    return LinkSnapshot(
        link=link, time_us=time_us, packets=packets, events=packets,
        failures=0, late_items=0, order_violations=0,
        reorder_pending=0, reassemblers=0,
        stages={"ingest": StageCounters(received=packets,
                                        emitted=packets)})


def fleet_snapshot(time_us: int = 2_000_000) -> FleetSnapshot:
    links = (link_snapshot("C1-O12", time_us),
             link_snapshot("C2-O3", time_us - 1_000))
    return FleetSnapshot.from_links(
        links, now_us=time_us,
        health={"C1-O12": "live", "C2-O3": "live"}, unrouted=1)


@pytest.fixture()
def served() -> tuple[ServeApp, SnapshotHub, HistoryStore]:
    hub = SnapshotHub()
    history = HistoryStore()
    app = ServeApp(hub, history=history)
    return app, hub, history


class TestRouting:
    def test_index_lists_every_endpoint(self, served):
        app, _hub, _history = served
        status, document = parse(app.respond(get("/")))
        assert status == 200
        assert document["endpoints"] == list(ENDPOINTS)

    def test_non_get_is_405(self, served):
        app, _hub, _history = served
        status, document = parse(app.respond(get("/fleet",
                                                 method="POST")))
        assert status == 405
        assert "POST" in document["error"]

    def test_unknown_route_is_404(self, served):
        app, _hub, _history = served
        status, _document = parse(app.respond(get("/nope")))
        assert status == 404

    def test_fleet_before_first_poll_is_503(self, served):
        app, _hub, _history = served
        status, document = parse(app.respond(get("/fleet")))
        assert status == 503
        assert "no snapshot" in document["error"]

    def test_fleet_serves_the_shared_bytes(self, served):
        app, hub, _history = served
        hub.publish(fleet_snapshot())
        responses = [app.respond(get("/fleet")) for _ in range(50)]
        # 50 requests, still exactly one serialization.
        assert hub.serializations == 1
        status, document = parse(responses[0])
        assert status == 200
        assert document["seq"] == 1
        assert document["snapshot"]["kind"] == "fleet"
        assert document["snapshot"]["schema"] == 2
        assert all(response == responses[0]
                   for response in responses)

    def test_links_union_of_live_and_history(self, served):
        app, hub, history = served
        history.record(fleet_snapshot())  # C1-O12, C2-O3 recorded
        hub.publish(link_snapshot("C9-O9", 3_000_000))  # live only
        status, document = parse(app.respond(get("/links")))
        assert status == 200
        assert document["links"] == ["C1-O12", "C2-O3", "C9-O9"]

    def test_link_latest_and_unknown(self, served):
        app, hub, _history = served
        hub.publish(fleet_snapshot())
        status, document = parse(
            app.respond(get("/links/C1-O12")))
        assert status == 200
        assert document == link_snapshot("C1-O12",
                                         2_000_000).to_json()
        status, _document = parse(app.respond(get("/links/ghost")))
        assert status == 404

    def test_link_history_endpoint(self, served):
        app, _hub, history = served
        for poll in range(3):
            history.record(fleet_snapshot(2_000_000
                                          + poll * 1_000_000))
        status, document = parse(app.respond(
            get("/links/C1-O12/history",
                {"since_us": "3000000", "limit": "1"})))
        assert status == 200
        assert document["link"] == "C1-O12"
        assert document["count"] == 1
        assert document["polls"][0]["poll_seq"] == 3
        assert document["polls"][0]["schema"] == 2

    def test_history_bad_query_is_400(self, served):
        app, _hub, _history = served
        status, document = parse(app.respond(
            get("/links/C1-O12/history", {"since_us": "yesterday"})))
        assert status == 400
        assert "since_us" in document["error"]

    def test_history_unknown_link_is_404(self, served):
        app, _hub, history = served
        history.record(fleet_snapshot())
        status, _document = parse(app.respond(
            get("/links/ghost/history")))
        assert status == 404

    def test_fleet_at_time_travel(self, served):
        app, _hub, history = served
        history.record(fleet_snapshot(2_000_000))
        history.record(fleet_snapshot(9_000_000))
        status, document = parse(app.respond(
            get("/fleet/at", {"time_us": "5000000"})))
        assert status == 200
        assert document["poll_seq"] == 1
        assert document["time_us"] == 2_000_000
        status, _document = parse(app.respond(
            get("/fleet/at", {"time_us": "1"})))
        assert status == 404
        status, document = parse(app.respond(get("/fleet/at")))
        assert status == 400
        assert "required" in document["error"]

    def test_history_endpoints_404_without_store(self):
        app = ServeApp(SnapshotHub())
        status, document = parse(app.respond(
            get("/fleet/at", {"time_us": "1"})))
        assert status == 404
        assert "--history" in document["error"]
        status, document = parse(app.respond(
            get("/links/C1-O12/history")))
        assert status == 404
        assert "--history" in document["error"]

    def test_healthz_counters(self, served):
        app, hub, history = served
        hub.publish(fleet_snapshot())
        history.record(fleet_snapshot())
        status, document = parse(app.respond(get("/healthz")))
        assert status == 200
        assert document["status"] == "serving"
        assert document["polls"] == 1
        assert document["history_polls"] == 1
        assert document["ws_accepted"] == 0
        # No runner wired in this shape: no liveness keys.
        assert "monitor_alive" not in document


class TestEndToEnd:
    """The whole stack on a real socket, driven by asyncio clients."""

    def _target(self, y1_capture) -> StreamPipeline:
        records = [PcapRecord(time_us=packet.time_us,
                              data=packet.encode())
                   for packet in y1_capture.packets]
        return StreamPipeline(ListSource(records),
                              names=y1_capture.host_names(),
                              analyzers=[OnlineChains()], link="y1")

    async def _http_get(self, port: int, target: str) -> bytes:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port)
        writer.write((f"GET {target} HTTP/1.1\r\n"
                      f"Host: 127.0.0.1:{port}\r\n\r\n"
                      ).encode("latin-1"))
        await writer.drain()
        response = await reader.read()
        writer.close()
        await writer.wait_closed()
        return response

    async def _stack(self, y1_capture):
        stop = asyncio.Event()
        listening = asyncio.Event()
        bound: dict = {}

        def on_listening(host: str, port: int) -> None:
            bound["port"] = port
            listening.set()

        history = HistoryStore()
        server = asyncio.ensure_future(serve_until(
            self._target(y1_capture), stop, port=0,
            history=history, interval_s=0.01, poll_sleep_s=0.001,
            on_listening=on_listening))
        await asyncio.wait_for(listening.wait(), timeout=30)
        port = bound["port"]

        async def fleet_ready() -> dict:
            for _attempt in range(1000):
                status, document = parse(
                    await self._http_get(port, "/fleet"))
                if status == 200:
                    return document
                await asyncio.sleep(0.01)
            raise TimeoutError("no snapshot within the deadline")

        results: dict = {"port": port}
        try:
            results["envelope"] = await fleet_ready()
            results["healthz"] = parse(
                await self._http_get(port, "/healthz"))
            results["links"] = parse(
                await self._http_get(port, "/links"))
            name = results["links"][1]["links"][0]
            results["history"] = parse(await self._http_get(
                port, f"/links/{name}/history"))
            results["missing"] = parse(
                await self._http_get(port, "/nope"))
            results["ws"] = await self._websocket_exchange(port)
        finally:
            stop.set()
            results["polls"] = await asyncio.wait_for(server,
                                                     timeout=60)
            history.close()
        return results

    async def _websocket_exchange(self, port: int) -> dict:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port)
        key = "c2VydmUtdGVzdC1rZXk="
        writer.write(client_handshake("127.0.0.1", port, key=key))
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        assert b"101 Switching Protocols" in head
        accept = websocket_accept(key).encode("latin-1")
        assert b"Sec-WebSocket-Accept: " + accept in head
        opcode, payload = await asyncio.wait_for(read_frame(reader),
                                                 timeout=30)
        assert opcode == OP_TEXT
        envelope = json.loads(payload.decode("utf-8"))
        # Liveness: a masked ping comes back as a pong.
        writer.write(encode_frame(b"hb", opcode=OP_PING,
                                  mask_key=TEST_MASK_KEY))
        await writer.drain()
        while True:
            opcode, payload = await asyncio.wait_for(
                read_frame(reader), timeout=30)
            if opcode == OP_PONG:
                assert payload == b"hb"
                break
            assert opcode == OP_TEXT  # later polls may interleave
        writer.write(close_frame(mask_key=TEST_MASK_KEY))
        await writer.drain()
        while True:
            frame = await asyncio.wait_for(read_frame(reader),
                                           timeout=30)
            if frame is None or frame[0] == OP_CLOSE:
                break
        writer.close()
        await writer.wait_closed()
        return envelope

    def test_full_stack_over_real_sockets(self, y1_capture):
        results = asyncio.run(self._stack(y1_capture))

        envelope = results["envelope"]
        assert envelope["snapshot"]["schema"] == 2
        assert envelope["snapshot"]["packets"] > 0

        status, health = results["healthz"]
        assert status == 200
        assert health["status"] == "serving"
        assert health["polls"] >= 1
        assert health["monitor_failed"] is False

        status, links = results["links"]
        assert status == 200
        assert links["links"]  # discovered from the live snapshot

        status, history = results["history"]
        assert status == 200
        assert history["count"] >= 1
        assert history["polls"][0]["schema"] == 2

        status, _body = results["missing"]
        assert status == 404

        ws_envelope = results["ws"]
        assert ws_envelope["snapshot"]["schema"] == 2
        assert ws_envelope["seq"] >= 1

        assert results["polls"] >= 1

    def test_ws_without_upgrade_is_426(self, y1_capture):
        async def main():
            stop = asyncio.Event()
            listening = asyncio.Event()
            bound: dict = {}

            def on_listening(host: str, port: int) -> None:
                bound["port"] = port
                listening.set()

            server = asyncio.ensure_future(serve_until(
                self._target(y1_capture), stop, port=0,
                interval_s=0.01, poll_sleep_s=0.001,
                on_listening=on_listening))
            await asyncio.wait_for(listening.wait(), timeout=30)
            try:
                response = await self._http_get(bound["port"], "/ws")
            finally:
                stop.set()
                await asyncio.wait_for(server, timeout=60)
            return response

        status, document = parse(asyncio.run(main()))
        assert status == 426
        assert "upgrade" in document["error"].lower()
