"""The snapshot hub and the monitor thread it bridges.

The headline test is the scaling invariant: 10 000 WebSocket
subscribers cost exactly one serialization per poll — the instrumented
``SnapshotHub.serializations`` counter equals the poll count, never
the subscriber count, and every subscriber holds the *same* payload
object by reference.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.netstack.pcap import PcapRecord
from repro.serve import MonitorRunner, SnapshotHub
from repro.stream import (LinkSnapshot, ListSource, OnlineChains,
                          StageCounters, StreamPipeline)


def run(coro):
    return asyncio.run(coro)


def link_snapshot(time_us: int, packets: int = 1) -> LinkSnapshot:
    return LinkSnapshot(
        link="C1-O12", time_us=time_us, packets=packets,
        events=packets, failures=0, late_items=0, order_violations=0,
        reorder_pending=0, reassemblers=0,
        stages={"ingest": StageCounters(received=packets,
                                        emitted=packets)})


class TestHubPublish:
    def test_publish_serializes_once_and_sets_latest(self):
        hub = SnapshotHub()
        snapshot = link_snapshot(1_000_000)
        payload = hub.publish(snapshot)
        assert hub.serializations == 1
        assert hub.latest is payload
        assert hub.seq == 1
        document = json.loads(payload.document.decode("utf-8"))
        assert document["seq"] == 1
        assert document["time_us"] == 1_000_000
        assert document["snapshot"] == snapshot.to_json()
        # The broadcast frame wraps exactly the shared document.
        assert payload.ws_frame.endswith(payload.document)

    def test_seq_increments_per_poll(self):
        hub = SnapshotHub()
        for poll in range(1, 4):
            payload = hub.publish(link_snapshot(poll * 1_000))
            assert payload.seq == poll
        assert hub.serializations == 3


class TestFanOut:
    def test_10k_subscribers_share_one_serialization(self):
        """The acceptance-bar invariant: 10 000 subscribers, one
        poll, exactly one serialization — all payloads one object."""
        clients = 10_000

        async def main():
            hub = SnapshotHub()
            hub.bind(asyncio.get_running_loop())
            received: list = []

            async def subscriber():
                async for payload, skipped in hub.subscribe():
                    received.append((payload, skipped))
                    return

            tasks = [asyncio.create_task(subscriber())
                     for _ in range(clients)]
            await asyncio.sleep(0)  # let every subscriber enqueue
            hub.publish(link_snapshot(5_000_000))
            await asyncio.gather(*tasks)
            return hub, received

        hub, received = run(main())
        assert len(received) == clients
        assert hub.serializations == 1
        payloads = {id(payload) for payload, _skipped in received}
        assert len(payloads) == 1  # the same object, by reference
        assert all(skipped == 0 for _payload, skipped in received)

    def test_slow_subscriber_conflates_with_skip_count(self):
        async def main():
            hub = SnapshotHub()
            hub.bind(asyncio.get_running_loop())
            hub.publish(link_snapshot(1_000))
            stream = hub.subscribe()
            first = await anext(stream)
            # Three more polls land while the consumer is away.
            for poll in range(2, 5):
                hub.publish(link_snapshot(poll * 1_000))
            second = await anext(stream)
            hub.close()
            with pytest.raises(StopAsyncIteration):
                await anext(stream)
            return first, second

        (first, first_skipped), (second, skipped) = run(main())
        assert first.seq == 1 and first_skipped == 0
        assert second.seq == 4
        assert skipped == 2  # polls 2 and 3 conflated away

    def test_close_ends_waiting_subscriber(self):
        async def main():
            hub = SnapshotHub()
            hub.bind(asyncio.get_running_loop())

            async def subscriber():
                return [payload async for payload, _ in
                        hub.subscribe()]

            task = asyncio.create_task(subscriber())
            await asyncio.sleep(0)
            hub.close()
            return await asyncio.wait_for(task, timeout=5)

        assert run(main()) == []

    def test_late_subscriber_starts_with_latest(self):
        async def main():
            hub = SnapshotHub()
            hub.bind(asyncio.get_running_loop())
            hub.publish(link_snapshot(1_000))
            hub.publish(link_snapshot(2_000))
            stream = hub.subscribe()
            payload, skipped = await anext(stream)
            return payload, skipped

        payload, skipped = run(main())
        assert payload.seq == 2
        assert skipped == 0  # nothing missed *since subscribing*


def pipeline_target(y1_capture) -> StreamPipeline:
    records = [PcapRecord(time_us=packet.time_us,
                          data=packet.encode())
               for packet in y1_capture.packets]
    return StreamPipeline(ListSource(records),
                          names=y1_capture.host_names(),
                          analyzers=[OnlineChains()])


class TestMonitorRunner:
    def test_drains_target_and_delivers_snapshots(self, y1_capture):
        snapshots = []
        runner = MonitorRunner(pipeline_target(y1_capture),
                               snapshots.append, interval_s=0.01,
                               poll_sleep_s=0.001)
        runner.start()
        runner.join(timeout=60)
        assert not runner.is_alive()
        runner.raise_if_failed()
        assert runner.polls >= 1
        assert len(snapshots) == runner.polls
        final = snapshots[-1]
        assert final.packets == len(y1_capture.packets)
        assert final.reorder_pending == 0  # flushed before the end

    def test_stop_interrupts_a_follow_run(self, y1_capture):
        seen = []
        runner = MonitorRunner(pipeline_target(y1_capture),
                               seen.append, follow=True,
                               interval_s=0.01, poll_sleep_s=0.001)
        runner.start()
        deadline = time.monotonic() + 60.0
        while not seen and time.monotonic() < deadline:
            time.sleep(0.01)
        runner.stop()
        runner.join(timeout=60)
        assert not runner.is_alive()
        runner.raise_if_failed()
        assert seen  # at least the final flushed snapshot

    def test_failure_is_surfaced_not_swallowed(self):
        class Exploding:
            exhausted = False

            def step(self, *args, **kwargs):
                raise RuntimeError("boom")

        runner = MonitorRunner(Exploding(), lambda snapshot: None,
                               interval_s=0.01, poll_sleep_s=0.001)
        runner.start()
        runner.join(timeout=60)
        assert runner.error is not None
        with pytest.raises(RuntimeError, match="monitor thread"):
            runner.raise_if_failed()
