"""The columnar history store: derived layout, time travel, bytes.

The byte-stability bar: record the same deterministic 8-hour synthetic
run into two independent stores and every query result —
``link_history`` windows and ``fleet_at`` time-travel rebuilds — must
serialize to byte-identical documents.  Nothing in the store may
depend on wall clock, dict order, or connection identity.
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3

import pytest

from repro.serve import HistoryStore, Retention, link_columns
from repro.serve.history import JSON_FIELDS, LINK_COLUMNS
from repro.serve.wire import dump_document
from repro.stream import (FleetSnapshot, LinkSnapshot, StageCounters)

#: Eight hours of stream time in microseconds.
EIGHT_HOURS_US = 8 * 3600 * 1_000_000


def link_snapshot(link: str, time_us: int, poll: int) -> LinkSnapshot:
    """A deterministic synthetic link snapshot for poll ``poll``."""
    return LinkSnapshot(
        link=link, time_us=time_us,
        packets=poll * 7 + len(link), events=poll * 5,
        failures=poll % 3, late_items=poll % 2,
        order_violations=poll % 5, reorder_pending=0,
        reassemblers=poll % 2,
        stages={"ingest": StageCounters(received=poll * 7,
                                        emitted=poll * 7),
                "decode": StageCounters(received=poll * 5,
                                        emitted=poll * 5)},
        eviction={"sweeps": poll, "flows_evicted": poll // 4},
        analyzers={"chains": {"connections": 1 + poll % 4},
                   "detector": {"alerts": poll % 6,
                                "mode": "detect"}})


def fleet_poll(poll: int, links=("C1-O12", "C2-O3",
                                 "C3-O7")) -> FleetSnapshot:
    """Poll ``poll`` of the synthetic 8-hour run (5-minute cadence)."""
    time_us = poll * 300_000_000  # one poll every 5 stream-minutes
    members = tuple(link_snapshot(name, time_us - index * 1_000,
                                  poll + index)
                    for index, name in enumerate(links))
    health = {name: "live" if poll % 4 else "idle"
              for name in links}
    return FleetSnapshot.from_links(members, now_us=time_us,
                                    health=health,
                                    unrouted=poll % 7)


class TestDerivedLayout:
    def test_every_snapshot_field_has_a_column(self):
        columns = dict(link_columns())
        fields = {field.name
                  for field in dataclasses.fields(LinkSnapshot)}
        assert set(columns) == fields

    def test_column_types_follow_annotations(self):
        columns = dict(LINK_COLUMNS)
        assert columns["link"] == "TEXT NOT NULL"
        assert columns["time_us"] == "INTEGER NOT NULL"
        assert columns["packets"] == "INTEGER NOT NULL"
        for name in JSON_FIELDS:
            assert columns[name] == "TEXT NOT NULL"


class TestRetentionValidation:
    def test_bounds_checked(self):
        with pytest.raises(ValueError, match="max_polls"):
            Retention(max_polls=0)
        with pytest.raises(ValueError, match="compact_every"):
            Retention(compact_every=0)
        assert Retention(max_polls=5).compact_every == 64


class TestRecordAndRead:
    def test_fleet_round_trip_is_exact(self):
        with HistoryStore() as store:
            fleet = fleet_poll(3)
            seq = store.record(fleet)
            document = store.fleet_at(fleet.time_us)
        expected = fleet.to_json()
        expected["poll_seq"] = seq
        assert document == expected

    def test_link_snapshot_records_as_one_link_poll(self):
        with HistoryStore() as store:
            snapshot = link_snapshot("C1-O12", 5_000_000, poll=2)
            store.record(snapshot)
            assert store.link_names() == ["C1-O12"]
            polls = store.link_history("C1-O12")
            assert len(polls) == 1
            assert polls[0]["packets"] == snapshot.packets
            fleet = store.fleet_at(5_000_000)
        assert fleet["link_count"] == 1
        assert fleet["unrouted"] == 0
        assert fleet["health"] == {}

    def test_fleet_at_picks_newest_at_or_before(self):
        with HistoryStore() as store:
            for poll in range(1, 6):
                store.record(fleet_poll(poll))
            at_poll_3 = store.fleet_at(fleet_poll(3).time_us)
            between = store.fleet_at(fleet_poll(3).time_us
                                     + 150_000_000)
            too_early = store.fleet_at(0)
            latest = store.fleet_at(EIGHT_HOURS_US)
        assert at_poll_3["poll_seq"] == 3
        assert between["poll_seq"] == 3  # newest <= T, not nearest
        assert too_early is None
        assert latest["poll_seq"] == 5

    def test_link_history_window_and_limit(self):
        with HistoryStore() as store:
            for poll in range(1, 11):
                store.record(fleet_poll(poll))
            full = store.link_history("C1-O12")
            window = store.link_history(
                "C1-O12", since_us=fleet_poll(4).time_us,
                until_us=fleet_poll(7).time_us)
            newest_two = store.link_history("C1-O12", limit=2)
        assert [poll["poll_seq"] for poll in full] == list(range(1, 11))
        assert [poll["poll_seq"] for poll in window] == [4, 5, 6, 7]
        # ``limit`` keeps the newest polls, returned oldest-first.
        assert [poll["poll_seq"] for poll in newest_two] == [9, 10]

    def test_span_and_polls(self):
        with HistoryStore() as store:
            assert store.span_us() is None
            for poll in (2, 5):
                store.record(fleet_poll(poll))
            assert store.span_us() == (2 * 300_000_000,
                                       5 * 300_000_000)
            assert list(store.polls()) == [(1, 600_000_000),
                                           (2, 1_500_000_000)]

    def test_unknown_link_history_is_empty(self):
        with HistoryStore() as store:
            store.record(fleet_poll(1))
            assert store.link_history("nope") == []


class TestSchemaGuard:
    def test_mismatched_store_refused(self, tmp_path):
        path = str(tmp_path / "fleet.db")
        HistoryStore(path).close()
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE meta SET value = '99' "
                         "WHERE key = 'snapshot_schema'")
        with pytest.raises(ValueError, match="fresh store"):
            HistoryStore(path)

    def test_reopening_a_matching_store_appends(self, tmp_path):
        path = str(tmp_path / "fleet.db")
        with HistoryStore(path) as store:
            store.record(fleet_poll(1))
        with HistoryStore(path) as store:
            store.record(fleet_poll(2))
            assert store.poll_count() == 2
            assert [seq for seq, _t in store.polls()] == [1, 2]


class TestRetention:
    def test_compaction_drops_oldest_whole_polls(self):
        retention = Retention(max_polls=10, compact_every=4)
        with HistoryStore(retention=retention) as store:
            for poll in range(1, 26):
                store.record(fleet_poll(poll))
            store.compact()
            assert store.poll_count() == 10
            kept = [seq for seq, _t in store.polls()]
            assert kept == list(range(16, 26))
            # No partial polls: every kept poll still has all links.
            for seq in kept:
                fleet = store.fleet_at(fleet_poll(seq).time_us)
                assert fleet["link_count"] == 3

    def test_auto_compaction_bounds_the_store(self):
        retention = Retention(max_polls=5, compact_every=1)
        with HistoryStore(retention=retention) as store:
            for poll in range(1, 21):
                store.record(fleet_poll(poll))
            assert store.poll_count() == 5

    def test_unbounded_store_never_compacts(self):
        with HistoryStore() as store:
            for poll in range(1, 8):
                store.record(fleet_poll(poll))
            assert store.compact() == 0
            assert store.poll_count() == 7

    def test_age_bound_drops_polls_behind_the_newest_clock(self):
        # One poll every 5 stream-minutes; a 25-minute window keeps
        # the newest poll plus the 5 polls within the bound.
        retention = Retention(max_age_us=25 * 60 * 1_000_000,
                              compact_every=100)
        with HistoryStore(retention=retention) as store:
            for poll in range(1, 21):
                store.record(fleet_poll(poll))
            assert store.compact() == 14
            assert [seq for seq, _t in store.polls()] \
                == list(range(15, 21))

    def test_age_zero_keeps_only_the_newest_poll(self):
        retention = Retention(max_age_us=0, compact_every=100)
        with HistoryStore(retention=retention) as store:
            for poll in range(1, 6):
                store.record(fleet_poll(poll))
            store.compact()
            assert [seq for seq, _t in store.polls()] == [5]

    def test_age_bound_triggers_auto_compaction(self):
        retention = Retention(max_age_us=25 * 60 * 1_000_000,
                              compact_every=1)
        with HistoryStore(retention=retention) as store:
            for poll in range(1, 21):
                store.record(fleet_poll(poll))
            assert store.poll_count() == 6

    def test_both_bounds_stricter_wins(self):
        # Count bound (3 polls) is stricter than the age bound
        # (25 minutes = 6 polls) — and vice versa when flipped.
        retention = Retention(max_polls=3,
                              max_age_us=25 * 60 * 1_000_000,
                              compact_every=100)
        with HistoryStore(retention=retention) as store:
            for poll in range(1, 21):
                store.record(fleet_poll(poll))
            store.compact()
            assert [seq for seq, _t in store.polls()] \
                == list(range(18, 21))
        retention = Retention(max_polls=10,
                              max_age_us=10 * 60 * 1_000_000,
                              compact_every=100)
        with HistoryStore(retention=retention) as store:
            for poll in range(1, 21):
                store.record(fleet_poll(poll))
            store.compact()
            assert [seq for seq, _t in store.polls()] \
                == list(range(18, 21))

    def test_age_validation(self):
        with pytest.raises(ValueError, match="max_age_us"):
            Retention(max_age_us=-1)
        assert Retention(max_age_us=0).bounded
        assert not Retention().bounded


class TestByteStability:
    """Two identical synthetic 8-hour runs → byte-identical queries."""

    @staticmethod
    def _run_store(store: HistoryStore) -> None:
        # 96 polls at 5-minute cadence: the last poll's fleet clock
        # lands exactly on the 8-hour mark.
        for poll in range(1, 97):
            store.record(fleet_poll(poll))

    def test_identical_runs_are_byte_identical(self):
        with HistoryStore() as first, HistoryStore() as second:
            self._run_store(first)
            self._run_store(second)
            assert first.span_us()[1] == EIGHT_HOURS_US
            probes = [1, 12 * 300_000_000, EIGHT_HOURS_US // 2,
                      EIGHT_HOURS_US]
            for time_us in probes:
                assert dump_document(first.fleet_at(time_us) or {}) \
                    == dump_document(second.fleet_at(time_us) or {})
            assert first.link_names() == second.link_names()
            windows = [dict(), dict(limit=13),
                       dict(since_us=EIGHT_HOURS_US // 4,
                            until_us=EIGHT_HOURS_US // 2)]
            for link in first.link_names():
                for window in windows:
                    assert [dump_document(doc) for doc
                            in first.link_history(link, **window)] \
                        == [dump_document(doc) for doc
                            in second.link_history(link, **window)]

    def test_rebuilt_fleet_equals_live_serialization(self):
        """A time-travel rebuild is byte-identical to what the live
        snapshot serialized to at record time."""
        with HistoryStore() as store:
            fleet = fleet_poll(42)
            seq = store.record(fleet)
            rebuilt = store.fleet_at(fleet.time_us)
        live = fleet.to_json()
        live["poll_seq"] = seq
        assert dump_document(rebuilt) == dump_document(live)
        # And the intermediate JSON is genuinely canonical.
        assert json.loads(dump_document(rebuilt)) == rebuilt
