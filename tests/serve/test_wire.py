"""The serve wire layer: HTTP parsing, WS framing, the envelope."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.wire import (MAX_REQUEST_BYTES, OP_BINARY, OP_CLOSE,
                              OP_CONT, OP_PING, OP_TEXT, TEST_MASK_KEY,
                              HttpRequest, SnapshotEnvelope, WireError,
                              client_handshake, close_frame,
                              dump_document, encode_frame,
                              handshake_response, http_response,
                              read_frame, read_request,
                              websocket_accept)
from repro.stream import LinkSnapshot, StageCounters


def run(coro):
    return asyncio.run(coro)


async def _reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def link_snapshot(link: str = "C1-O12",
                  time_us: int = 1_000_000) -> LinkSnapshot:
    return LinkSnapshot(
        link=link, time_us=time_us, packets=4, events=3, failures=0,
        late_items=0, order_violations=1, reorder_pending=0,
        reassemblers=0,
        stages={"ingest": StageCounters(received=4, emitted=4)},
        eviction={"sweeps": 1},
        analyzers={"chains": {"connections": 1}})


class TestEnvelope:
    def test_to_json_wraps_snapshot(self):
        snapshot = link_snapshot()
        envelope = SnapshotEnvelope(seq=7, time_us=snapshot.time_us,
                                    snapshot=snapshot)
        document = envelope.to_json()
        assert set(document) == {"seq", "time_us", "snapshot"}
        assert document["seq"] == 7
        assert document["snapshot"] == snapshot.to_json()

    def test_dump_document_is_canonical(self):
        document = {"b": 1, "a": {"z": [2, 3], "y": "x"}}
        first = dump_document(document)
        second = dump_document(json.loads(first.decode("utf-8")))
        assert first == second
        assert b" " not in first  # minimal separators
        assert first.index(b'"a"') < first.index(b'"b"')


class TestReadRequest:
    def test_parses_method_path_query_headers(self):
        head = (b"GET /links/C1-O12/history?since_us=5&limit= "
                b"HTTP/1.1\r\nHost: h\r\nX-Thing:  padded  \r\n\r\n")
        request = run(_request(head))
        assert request.method == "GET"
        assert request.path == "/links/C1-O12/history"
        assert request.query == {"since_us": "5", "limit": ""}
        assert request.header("x-thing") == "padded"
        assert request.header("X-Thing") == "padded"
        assert not request.wants_websocket

    def test_clean_eof_returns_none(self):
        assert run(_request(b"")) is None

    def test_partial_head_raises(self):
        with pytest.raises(WireError, match="mid-request"):
            run(_request(b"GET / HTTP/1.1\r\nHost:"))

    def test_malformed_request_line_raises(self):
        with pytest.raises(WireError, match="request line"):
            run(_request(b"GET /\r\n\r\n"))
        with pytest.raises(WireError, match="request line"):
            run(_request(b"GET / SPDY/3\r\n\r\n"))

    def test_malformed_header_raises(self):
        with pytest.raises(WireError, match="header"):
            run(_request(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"))

    def test_oversized_head_raises(self):
        filler = b"X-Pad: " + b"a" * MAX_REQUEST_BYTES + b"\r\n"
        with pytest.raises(WireError, match="too large"):
            run(_request(b"GET / HTTP/1.1\r\n" + filler + b"\r\n"))

    def test_websocket_upgrade_detected(self):
        request = run(_request(client_handshake("h", 1)))
        assert request.path == "/ws"
        assert request.wants_websocket


async def _request(data: bytes) -> HttpRequest | None:
    return await read_request(await _reader(data))


class TestHttpResponse:
    def test_head_and_body(self):
        response = http_response(200, b'{"x":1}')
        head, _sep, body = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 7" in head
        assert b"Connection: close" in head
        assert b"Content-Type: application/json" in head
        assert body == b'{"x":1}'

    def test_extra_headers_and_unknown_status(self):
        response = http_response(418, extra_headers={"X-A": "b"})
        assert response.startswith(b"HTTP/1.1 418 Unknown\r\n")
        assert b"X-A: b" in response


class TestWebSocketHandshake:
    def test_rfc6455_accept_vector(self):
        # The worked example from RFC 6455 section 1.3.
        assert websocket_accept("dGhlIHNhbXBsZSBub25jZQ==") \
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_handshake_response_echoes_accept(self):
        request = run(_request(client_handshake("h", 1, key="abc")))
        response = handshake_response(request)
        assert response.startswith(
            b"HTTP/1.1 101 Switching Protocols\r\n")
        accept = websocket_accept("abc").encode("latin-1")
        assert b"Sec-WebSocket-Accept: " + accept in response

    def test_handshake_without_key_raises(self):
        head = (b"GET /ws HTTP/1.1\r\nUpgrade: websocket\r\n"
                b"Connection: Upgrade\r\n\r\n")
        with pytest.raises(WireError, match="key"):
            handshake_response(run(_request(head)))


class TestFrames:
    @pytest.mark.parametrize("mask", [None, TEST_MASK_KEY])
    @pytest.mark.parametrize("size", [0, 5, 125, 126, 70_000])
    def test_round_trip(self, mask, size):
        payload = bytes(index % 251 for index in range(size))
        frame = encode_frame(payload, opcode=OP_BINARY,
                             mask_key=mask)
        assert run(_frame(frame)) == (OP_BINARY, payload)

    def test_unmasked_frame_bytes_are_deterministic(self):
        # The shared-broadcast invariant depends on one encoded frame
        # being valid for every client: no mask, no randomness.
        assert encode_frame(b"abc") == encode_frame(b"abc")
        assert encode_frame(b"abc")[0] == 0x80 | OP_TEXT
        assert encode_frame(b"abc")[1] == 3  # mask bit clear

    def test_bad_mask_key_rejected(self):
        with pytest.raises(WireError, match="4 bytes"):
            encode_frame(b"x", mask_key=b"\x00\x01")

    def test_continuation_fragments_assemble(self):
        frames = (encode_frame(b"hel", opcode=OP_TEXT, fin=False)
                  + encode_frame(b"lo ", opcode=OP_CONT, fin=False)
                  + encode_frame(b"fleet", opcode=OP_CONT, fin=True))
        assert run(_frame(frames)) == (OP_TEXT, b"hello fleet")

    def test_orphan_continuation_raises(self):
        with pytest.raises(WireError, match="continuation"):
            run(_frame(encode_frame(b"x", opcode=OP_CONT)))

    def test_clean_eof_returns_none(self):
        assert run(_frame(b"")) is None

    def test_truncated_frame_raises(self):
        frame = encode_frame(b"hello")[:3]
        with pytest.raises(WireError, match="mid-frame"):
            run(_frame(frame))

    def test_close_frame_carries_code(self):
        opcode, payload = run(_frame(close_frame(1001,
                                                 TEST_MASK_KEY)))
        assert opcode == OP_CLOSE
        assert payload == (1001).to_bytes(2, "big")

    def test_ping_frame_round_trip(self):
        frame = encode_frame(b"hb", opcode=OP_PING,
                             mask_key=TEST_MASK_KEY)
        assert run(_frame(frame)) == (OP_PING, b"hb")


async def _frame(data: bytes):
    return await read_frame(await _reader(data))
