"""pcapng reader tests (blocks are hand-assembled)."""

import io
import struct

import pytest

from repro.netstack.pcap import PcapRecord
from repro.netstack.pcapng import (PcapngError, PcapngReader,
                                   PcapngWriter, read_pcapng,
                                   sniff_format, write_pcapng)


def pad4(data: bytes) -> bytes:
    return data + b"\x00" * ((4 - len(data) % 4) % 4)


def block(block_type: int, body: bytes, endian="<") -> bytes:
    body = pad4(body)
    length = 12 + len(body)
    return (struct.pack(endian + "II", block_type, length) + body
            + struct.pack(endian + "I", length))


def shb(endian="<") -> bytes:
    body = struct.pack(endian + "IHHq", 0x1A2B3C4D, 1, 0, -1)
    return block(0x0A0D0D0A, body, endian)


def idb(linktype=1, options=b"", endian="<") -> bytes:
    body = struct.pack(endian + "HHI", linktype, 0, 0) + options
    return block(0x00000001, body, endian)


def epb(interface=0, ticks=5_000_000, data=b"\xAA" * 20,
        endian="<") -> bytes:
    body = struct.pack(endian + "IIIII", interface, ticks >> 32,
                       ticks & 0xFFFFFFFF, len(data), len(data))
    return block(0x00000006, body + pad4(data), endian)


class TestReader:
    def test_single_packet(self):
        stream = io.BytesIO(shb() + idb() + epb())
        records = list(PcapngReader(stream))
        assert len(records) == 1
        assert records[0].time_us == 5_000_000
        assert records[0].data == b"\xAA" * 20

    def test_multiple_packets_and_interfaces(self):
        stream = io.BytesIO(shb() + idb() + idb()
                            + epb(interface=0, ticks=1_000_000)
                            + epb(interface=1, ticks=2_000_000))
        records = list(PcapngReader(stream))
        assert [r.time_us for r in records] == [1_000_000, 2_000_000]

    def test_tsresol_option(self):
        # if_tsresol = 3 (milliseconds).
        options = struct.pack("<HH", 9, 1) + b"\x03\x00\x00\x00"
        options += struct.pack("<HH", 0, 0)
        stream = io.BytesIO(shb() + idb(options=options)
                            + epb(ticks=1500))
        records = list(PcapngReader(stream))
        assert records[0].time_us == 1_500_000

    def test_big_endian_section(self):
        stream = io.BytesIO(shb(">") + idb(endian=">")
                            + epb(ticks=3_000_000, endian=">"))
        records = list(PcapngReader(stream))
        assert records[0].time_us == 3_000_000

    def test_simple_packet_block(self):
        data = b"\x01\x02\x03\x04"
        body = struct.pack("<I", len(data)) + pad4(data)
        stream = io.BytesIO(shb() + idb() + block(0x00000003, body))
        records = list(PcapngReader(stream))
        assert records[0].data == data

    def test_unknown_blocks_skipped(self):
        name_block = block(0x00000004, b"\x00" * 8)  # NRB
        stream = io.BytesIO(shb() + idb() + name_block + epb())
        assert len(list(PcapngReader(stream))) == 1

    def test_new_section_resets_interfaces(self):
        stream = io.BytesIO(shb() + idb() + epb()
                            + shb() + idb() + epb(ticks=9_000_000))
        records = list(PcapngReader(stream))
        assert len(records) == 2


class TestErrors:
    def test_not_pcapng(self):
        with pytest.raises(PcapngError):
            PcapngReader(io.BytesIO(b"\xd4\xc3\xb2\xa1" + b"\x00" * 20))

    def test_epb_unknown_interface(self):
        stream = io.BytesIO(shb() + epb(interface=3))
        with pytest.raises(PcapngError):
            list(PcapngReader(stream))

    def test_trailer_mismatch(self):
        bad = bytearray(shb() + idb())
        bad[-4:] = b"\xff\xff\xff\xff"
        with pytest.raises(PcapngError):
            list(PcapngReader(io.BytesIO(bytes(bad))))

    def test_truncated(self):
        data = shb() + idb() + epb()
        with pytest.raises(PcapngError):
            list(PcapngReader(io.BytesIO(data[:-10])))


class TestSniff:
    def test_detects_pcapng(self):
        stream = io.BytesIO(shb())
        assert sniff_format(stream) == "pcapng"
        assert stream.tell() == 0  # non-consuming

    def test_detects_pcap(self):
        import io as _io
        from repro.netstack.pcap import PcapWriter
        buffer = _io.BytesIO()
        PcapWriter(buffer)
        buffer.seek(0)
        assert sniff_format(buffer) == "pcap"

    def test_unknown(self):
        assert sniff_format(io.BytesIO(b"\x00\x00\x00\x00")) \
            == "unknown"


class TestFileHelper:
    def test_read_pcapng_path(self, tmp_path):
        path = tmp_path / "capture.pcapng"
        path.write_bytes(shb() + idb() + epb())
        assert len(read_pcapng(path)) == 1


class TestWriter:
    def records(self, count=4):
        return [PcapRecord(time_us=1_000_000 + index * 250_000,
                           data=bytes([index]) * (20 + index))
                for index in range(count)]

    def test_round_trip(self):
        wanted = self.records()
        stream = io.BytesIO()
        writer = PcapngWriter(stream)
        for record in wanted:
            writer.write_record(record)
        stream.seek(0)
        got = list(PcapngReader(stream))
        assert [(r.time_us, r.data, r.original_length) for r in got] \
            == [(r.time_us, r.data, len(r.data)) for r in wanted]

    def test_written_stream_sniffs_as_pcapng(self):
        stream = io.BytesIO()
        PcapngWriter(stream)
        stream.seek(0)
        assert sniff_format(stream) == "pcapng"

    def test_write_pcapng_path_round_trip(self, tmp_path):
        wanted = self.records(3)
        path = tmp_path / "out.pcapng"
        assert write_pcapng(path, wanted) == 3
        got = read_pcapng(path)
        assert [(r.time_us, r.data) for r in got] \
            == [(r.time_us, r.data) for r in wanted]

    def test_snaplen_truncates_but_keeps_original_length(self):
        stream = io.BytesIO()
        writer = PcapngWriter(stream, snaplen=8)
        writer.write(5_000_000, b"\xAB" * 32)
        stream.seek(0)
        [record] = list(PcapngReader(stream))
        assert record.data == b"\xAB" * 8
        assert record.original_length == 32

    def test_large_timestamp_spans_32_bits(self):
        time_us = (1 << 40) + 123  # > 32 bits of microseconds
        stream = io.BytesIO()
        PcapngWriter(stream).write(time_us, b"\x00" * 16)
        stream.seek(0)
        [record] = list(PcapngReader(stream))
        assert record.time_us == time_us
