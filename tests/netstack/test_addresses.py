"""MAC/IPv4 address value type tests."""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.addresses import IPv4Address, MacAddress, ipv4, mac


class TestMacAddress:
    def test_parse_format_roundtrip(self):
        address = mac("02:00:ab:CD:00:01")
        assert str(address) == "02:00:ab:cd:00:01"

    def test_bytes_roundtrip(self):
        address = MacAddress(0x0200AB00CD01)
        assert MacAddress.from_bytes(address.to_bytes()) == address

    @pytest.mark.parametrize("bad", ["", "02:00:00:00:00",
                                     "02:00:00:00:00:00:00",
                                     "gg:00:00:00:00:00"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            MacAddress.parse(bad)

    def test_range(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_roundtrip_property(self, value):
        address = MacAddress(value)
        assert MacAddress.parse(str(address)) == address


class TestIPv4Address:
    def test_parse_format_roundtrip(self):
        address = ipv4("10.1.0.42")
        assert str(address) == "10.1.0.42"
        assert address.value == (10 << 24) | (1 << 16) | 42

    def test_bytes_roundtrip(self):
        address = IPv4Address(0x0A0B0C0D)
        assert IPv4Address.from_bytes(address.to_bytes()) == address

    @pytest.mark.parametrize("bad", ["", "10.0.0", "10.0.0.0.1",
                                     "256.0.0.1", "10.0.0.01", "a.b.c.d"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            IPv4Address.parse(bad)

    def test_ordering(self):
        assert ipv4("10.0.0.1") < ipv4("10.0.0.2") < ipv4("10.1.0.0")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        address = IPv4Address(value)
        assert IPv4Address.parse(str(address)) == address

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            IPv4Address.from_bytes(b"\x01\x02\x03")
