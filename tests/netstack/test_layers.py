"""Ethernet / IPv4 / TCP codec tests, including checksums."""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.addresses import ipv4, mac
from repro.netstack.checksum import internet_checksum, verify_checksum
from repro.netstack.ethernet import (ETHERTYPE_IPV4, EthernetError,
                                     EthernetFrame)
from repro.netstack.ip import IPv4Error, IPv4Packet, PROTO_TCP
from repro.netstack.packet import CapturedPacket, Endpoint, FlowKey
from repro.netstack.tcp import (PSH_ACK, SYN, TCPError, TCPFlags,
                                TCPSegment)

SRC_IP = ipv4("10.0.0.1")
DST_IP = ipv4("10.1.0.7")
SRC_MAC = mac("02:00:00:00:00:01")
DST_MAC = mac("02:00:00:00:00:02")


class TestChecksum:
    def test_rfc1071_example(self):
        # RFC 1071 worked example.
        data = bytes((0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7))
        assert internet_checksum(data) == ~0xDDF2 & 0xFFFF

    def test_verify_of_valid_block(self):
        data = b"\x45\x00\x00\x14"
        checksum = internet_checksum(data)
        assert verify_checksum(data + checksum.to_bytes(2, "big"))

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    @given(st.binary(min_size=0, max_size=200))
    def test_checksum_then_verify(self, data):
        checksum = internet_checksum(data)
        padded = data if len(data) % 2 == 0 else data + b"\x00"
        assert verify_checksum(padded + checksum.to_bytes(2, "big"))


class TestEthernet:
    def test_roundtrip(self):
        frame = EthernetFrame(dst=DST_MAC, src=SRC_MAC,
                              ethertype=ETHERTYPE_IPV4, payload=b"abc")
        assert EthernetFrame.decode(frame.encode()) == frame

    def test_too_short(self):
        with pytest.raises(EthernetError):
            EthernetFrame.decode(b"\x00" * 13)

    def test_ethertype_range(self):
        with pytest.raises(ValueError):
            EthernetFrame(dst=DST_MAC, src=SRC_MAC, ethertype=0x10000,
                          payload=b"")


class TestIPv4:
    def test_roundtrip(self):
        packet = IPv4Packet(src=SRC_IP, dst=DST_IP, payload=b"hello",
                            identification=99, ttl=33)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded == packet

    def test_checksum_verified(self):
        raw = bytearray(IPv4Packet(src=SRC_IP, dst=DST_IP,
                                   payload=b"x").encode())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(IPv4Error):
            IPv4Packet.decode(bytes(raw))
        # verify=False tolerates it
        assert IPv4Packet.decode(bytes(raw), verify=False).ttl != 64

    def test_total_length_respected(self):
        # Ethernet padding after the IP datagram must be stripped.
        packet = IPv4Packet(src=SRC_IP, dst=DST_IP, payload=b"abc")
        decoded = IPv4Packet.decode(packet.encode() + b"\x00" * 10)
        assert decoded.payload == b"abc"

    def test_rejects_non_v4(self):
        raw = bytearray(IPv4Packet(src=SRC_IP, dst=DST_IP,
                                   payload=b"").encode())
        raw[0] = (6 << 4) | 5
        with pytest.raises(IPv4Error):
            IPv4Packet.decode(bytes(raw))

    def test_rejects_truncated(self):
        with pytest.raises(IPv4Error):
            IPv4Packet.decode(b"\x45\x00")

    def test_rejects_fragment(self):
        raw = bytearray(IPv4Packet(src=SRC_IP, dst=DST_IP,
                                   payload=b"abc",
                                   dont_fragment=False).encode())
        raw[6] = 0x00
        raw[7] = 0x10  # fragment offset 16
        # fix checksum
        raw[10:12] = b"\x00\x00"
        checksum = internet_checksum(bytes(raw[:20]))
        raw[10:12] = checksum.to_bytes(2, "big")
        with pytest.raises(IPv4Error):
            IPv4Packet.decode(bytes(raw))


class TestTCP:
    def test_roundtrip(self):
        segment = TCPSegment(src_port=40000, dst_port=2404, seq=1000,
                             ack=2000, flags=PSH_ACK, window=8192,
                             payload=b"data")
        decoded = TCPSegment.decode(segment.encode(SRC_IP, DST_IP),
                                    SRC_IP, DST_IP)
        assert decoded == segment

    def test_checksum_covers_pseudo_header(self):
        segment = TCPSegment(src_port=1, dst_port=2, seq=0, flags=SYN)
        raw = segment.encode(SRC_IP, DST_IP)
        # Decoding against the wrong addresses must fail verification.
        with pytest.raises(TCPError):
            TCPSegment.decode(raw, SRC_IP, ipv4("10.9.9.9"))

    def test_flags_roundtrip(self):
        flags = TCPFlags(syn=True, fin=True, psh=True, urg=True)
        assert TCPFlags.decode(flags.encode()) == flags

    def test_flags_str(self):
        assert str(TCPFlags(syn=True, ack=True)) == "SYN|ACK"
        assert str(TCPFlags()) == "-"

    def test_sequence_space(self):
        assert TCPSegment(src_port=1, dst_port=2, seq=0,
                          flags=SYN).sequence_space == 1
        assert TCPSegment(src_port=1, dst_port=2, seq=0,
                          payload=b"ab").sequence_space == 2

    def test_port_range(self):
        with pytest.raises(ValueError):
            TCPSegment(src_port=70000, dst_port=1, seq=0)

    def test_truncated(self):
        with pytest.raises(TCPError):
            TCPSegment.decode(b"\x00" * 10, SRC_IP, DST_IP)


class TestCapturedPacket:
    def build(self, payload=b"\x68\x04\x43\x00\x00\x00"):
        segment = TCPSegment(src_port=40001, dst_port=2404, seq=7,
                             ack=3, flags=PSH_ACK, payload=payload)
        return CapturedPacket.build(1_250_000, SRC_MAC, DST_MAC, SRC_IP,
                                    DST_IP, segment)

    def test_build_decode_roundtrip(self):
        packet = self.build()
        decoded = CapturedPacket.decode(1_250_000, packet.encode())
        assert decoded.tcp == packet.tcp
        assert decoded.ip.src == SRC_IP

    def test_flow_key(self):
        packet = self.build()
        key = packet.flow_key
        assert key.src == Endpoint(SRC_IP, 40001)
        assert key.dst == Endpoint(DST_IP, 2404)
        assert key.reversed.src == key.dst
        assert key.canonical == key.canonical.reversed.canonical

    def test_decode_ignores_non_ipv4(self):
        frame = EthernetFrame(dst=DST_MAC, src=SRC_MAC, ethertype=0x0806,
                              payload=b"\x00" * 28)  # ARP
        assert CapturedPacket.decode(0, frame.encode()) is None

    def test_decode_ignores_non_tcp(self):
        ip_packet = IPv4Packet(src=SRC_IP, dst=DST_IP, payload=b"\x00" * 8,
                               protocol=17)  # UDP
        frame = EthernetFrame(dst=DST_MAC, src=SRC_MAC,
                              ethertype=ETHERTYPE_IPV4,
                              payload=ip_packet.encode())
        assert CapturedPacket.decode(0, frame.encode()) is None

    def test_wire_length(self):
        packet = self.build(payload=b"")
        assert packet.wire_length == 14 + 20 + 20

    def test_endpoint_validation(self):
        with pytest.raises(ValueError):
            Endpoint(SRC_IP, 99999)

    def test_flow_key_str(self):
        assert "->" in str(FlowKey(Endpoint(SRC_IP, 1),
                                   Endpoint(DST_IP, 2)))


class TestTCPOptions:
    from repro.netstack.tcp import TCPOption

    def seg(self, options):
        return TCPSegment(src_port=1000, dst_port=2404, seq=5,
                          flags=SYN, options=tuple(options))

    def test_mss_roundtrip(self):
        from repro.netstack.tcp import TCPOption
        option = TCPOption(kind=TCPOption.MSS, data=b"\x05\xb4")
        segment = self.seg([option])
        decoded = TCPSegment.decode(segment.encode(SRC_IP, DST_IP),
                                    SRC_IP, DST_IP)
        assert decoded.options == (option,)
        assert decoded.options[0].mss == 1460

    def test_window_scale_and_padding(self):
        from repro.netstack.tcp import TCPOption
        option = TCPOption(kind=TCPOption.WINDOW_SCALE, data=b"\x07")
        decoded = TCPSegment.decode(
            self.seg([option]).encode(SRC_IP, DST_IP), SRC_IP, DST_IP)
        assert decoded.options[0].window_scale == 7

    def test_timestamps(self):
        from repro.netstack.tcp import TCPOption
        import struct as _struct
        option = TCPOption(kind=TCPOption.TIMESTAMPS,
                           data=_struct.pack("!II", 1000, 2000))
        decoded = TCPSegment.decode(
            self.seg([option]).encode(SRC_IP, DST_IP), SRC_IP, DST_IP)
        assert decoded.options[0].timestamps == (1000, 2000)

    def test_sack_blocks(self):
        from repro.netstack.tcp import TCPOption
        import struct as _struct
        option = TCPOption(kind=TCPOption.SACK,
                           data=_struct.pack("!IIII", 10, 20, 30, 40))
        decoded = TCPSegment.decode(
            self.seg([option]).encode(SRC_IP, DST_IP), SRC_IP, DST_IP)
        assert decoded.options[0].sack_blocks == ((10, 20), (30, 40))

    def test_multiple_options_with_nops(self):
        from repro.netstack.tcp import TCPOption
        options = [TCPOption(kind=TCPOption.MSS, data=b"\x02\x00"),
                   TCPOption(kind=TCPOption.NOP),
                   TCPOption(kind=TCPOption.SACK_PERMITTED)]
        decoded = TCPSegment.decode(
            self.seg(options).encode(SRC_IP, DST_IP), SRC_IP, DST_IP)
        kinds = [o.kind for o in decoded.options]
        assert kinds == [TCPOption.MSS, TCPOption.NOP,
                         TCPOption.SACK_PERMITTED]

    def test_payload_untouched_by_options(self):
        from repro.netstack.tcp import TCPOption
        segment = TCPSegment(
            src_port=1, dst_port=2, seq=0, flags=PSH_ACK,
            payload=b"data!",
            options=(TCPOption(kind=TCPOption.MSS, data=b"\x02\x00"),))
        decoded = TCPSegment.decode(segment.encode(SRC_IP, DST_IP),
                                    SRC_IP, DST_IP)
        assert decoded.payload == b"data!"

    def test_malformed_option_length(self):
        from repro.netstack.tcp import parse_options
        with pytest.raises(TCPError):
            parse_options(b"\x02\x01")  # length 1 < 2

    def test_truncated_option(self):
        from repro.netstack.tcp import parse_options
        with pytest.raises(TCPError):
            parse_options(b"\x02\x04\x05")  # claims 4, has 3

    def test_options_size_limit(self):
        from repro.netstack.tcp import TCPOption, encode_options
        with pytest.raises(TCPError):
            encode_options([TCPOption(kind=254, data=b"x" * 39)])
