"""Flow table / connection tracking tests."""

from repro.netstack.addresses import ipv4, mac
from repro.netstack.flows import FlowKind, FlowTable
from repro.netstack.packet import CapturedPacket
from repro.netstack.tcp import (ACK, FIN_ACK, PSH_ACK, RST_ACK, SYN,
                                SYN_ACK, TCPSegment)

CLIENT_IP = ipv4("10.0.0.1")
SERVER_IP = ipv4("10.1.0.5")
CLIENT_MAC = mac("02:00:00:00:00:01")
SERVER_MAC = mac("02:00:00:00:00:02")


def pkt(t, sport, dport, flags, payload=b"", reverse=False):
    time_us = round(t * 1_000_000)
    segment = TCPSegment(src_port=sport, dst_port=dport, seq=100, ack=1,
                         flags=flags, payload=payload)
    if reverse:
        return CapturedPacket.build(time_us, SERVER_MAC, CLIENT_MAC,
                                    SERVER_IP, CLIENT_IP, segment)
    return CapturedPacket.build(time_us, CLIENT_MAC, SERVER_MAC,
                                CLIENT_IP, SERVER_IP, segment)


def handshake(table, t0, sport=40000, dport=2404):
    table.add(pkt(t0, sport, dport, SYN))
    table.add(pkt(t0 + 0.001, dport, sport, SYN_ACK, reverse=True))
    table.add(pkt(t0 + 0.002, sport, dport, ACK))


class TestFlowTable:
    def test_both_directions_one_flow(self):
        table = FlowTable()
        handshake(table, 0.0)
        assert len(table) == 1
        flow = table.flows[0]
        assert flow.forward.packets + flow.reverse.packets == 3

    def test_short_lived_with_fin(self):
        table = FlowTable()
        handshake(table, 0.0)
        table.add(pkt(0.5, 40000, 2404, FIN_ACK))
        flow = table.flows[0]
        assert flow.kind is FlowKind.SHORT_LIVED
        assert flow.duration == 0.5

    def test_short_lived_with_rst(self):
        table = FlowTable()
        handshake(table, 0.0)
        table.add(pkt(0.02, 2404, 40000, RST_ACK, reverse=True))
        assert table.flows[0].kind is FlowKind.SHORT_LIVED

    def test_long_lived_no_syn(self):
        table = FlowTable()
        table.add(pkt(1.0, 40000, 2404, PSH_ACK, payload=b"data"))
        table.add(pkt(9.0, 40000, 2404, FIN_ACK))
        assert table.flows[0].kind is FlowKind.LONG_LIVED

    def test_long_lived_no_termination(self):
        table = FlowTable()
        handshake(table, 0.0)
        table.add(pkt(5.0, 40000, 2404, PSH_ACK, payload=b"data"))
        assert table.flows[0].kind is FlowKind.LONG_LIVED

    def test_initiator_identified(self):
        table = FlowTable()
        handshake(table, 0.0)
        flow = table.flows[0]
        assert flow.initiator is not None
        assert flow.initiator.src.port == 40000

    def test_rejected_predicate(self):
        table = FlowTable()
        handshake(table, 0.0)
        table.add(pkt(0.01, 2404, 40000, RST_ACK, reverse=True))
        assert table.flows[0].rejected

    def test_rejected_requires_no_payload(self):
        table = FlowTable()
        handshake(table, 0.0)
        table.add(pkt(0.01, 40000, 2404, PSH_ACK,
                      payload=b"0123456789ABCDEF"))
        table.add(pkt(0.02, 2404, 40000, RST_ACK, reverse=True))
        assert not table.flows[0].rejected

    def test_distinct_ports_distinct_flows(self):
        table = FlowTable()
        handshake(table, 0.0, sport=40000)
        handshake(table, 1.0, sport=40001)
        assert len(table) == 2

    def test_byte_accounting(self):
        table = FlowTable()
        packet = pkt(0.0, 40000, 2404, PSH_ACK, payload=b"12345")
        table.add(packet)
        flow = table.flows[0]
        assert flow.bytes == packet.wire_length
        total_payload = (flow.forward.payload_bytes
                         + flow.reverse.payload_bytes)
        assert total_payload == 5
