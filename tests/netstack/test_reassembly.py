"""TCP stream reassembly tests, including the retransmission accounting
that explains the paper's repeated U16/U32 Markov tokens."""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.reassembly import StreamReassembler, seq_add, seq_after


class TestSeqHelpers:
    def test_after_simple(self):
        assert seq_after(10, 5)
        assert not seq_after(5, 10)
        assert not seq_after(5, 5)

    def test_after_wraparound(self):
        high = (1 << 32) - 10
        assert seq_after(5, high)  # wrapped
        assert not seq_after(high, 5)

    def test_add_wraps(self):
        assert seq_add((1 << 32) - 1, 2) == 1


class TestInOrder:
    def test_simple_stream(self):
        reassembler = StreamReassembler()
        assert reassembler.feed(1000, b"", syn=True) == b""
        assert reassembler.feed(1001, b"hello ") == b"hello "
        assert reassembler.feed(1007, b"world") == b"world"
        assert reassembler.stats.bytes_delivered == 11

    def test_without_syn_locks_to_first_data(self):
        reassembler = StreamReassembler()
        assert reassembler.feed(5555, b"mid-stream") == b"mid-stream"

    def test_fin_recorded(self):
        reassembler = StreamReassembler()
        reassembler.feed(1, b"", fin=True)
        assert reassembler.saw_fin

    def test_empty_segments_ignored(self):
        reassembler = StreamReassembler()
        reassembler.feed(1000, b"", syn=True)
        assert reassembler.feed(1001, b"") == b""
        assert reassembler.stats.payload_segments == 0


class TestRetransmission:
    def test_exact_duplicate_suppressed(self):
        reassembler = StreamReassembler()
        reassembler.feed(1000, b"", syn=True)
        assert reassembler.feed(1001, b"data") == b"data"
        assert reassembler.feed(1001, b"data") == b""
        assert reassembler.stats.retransmissions == 1

    def test_partial_overlap_delivers_tail(self):
        reassembler = StreamReassembler()
        reassembler.feed(1000, b"abcdef")
        assert reassembler.feed(1003, b"defGHI") == b"GHI"
        assert reassembler.stats.retransmissions == 1

    def test_old_data_fully_covered(self):
        reassembler = StreamReassembler()
        reassembler.feed(1000, b"abcdef")
        assert reassembler.feed(1002, b"cd") == b""


class TestOutOfOrder:
    def test_hole_then_fill(self):
        reassembler = StreamReassembler()
        reassembler.feed(100, b"", syn=True)
        assert reassembler.feed(106, b"world") == b""
        assert reassembler.pending_bytes == 5
        assert reassembler.feed(101, b"hello") == b"helloworld"
        assert reassembler.stats.out_of_order == 1

    def test_multiple_pending_chunks_drain_in_order(self):
        reassembler = StreamReassembler()
        reassembler.feed(0, b"", syn=True)
        assert reassembler.feed(11, b"CC") == b""
        assert reassembler.feed(6, b"BB") == b""
        assert reassembler.feed(1, b"AAAAA") == b"AAAAABB"
        assert reassembler.feed(8, b"xxx") == b"xxxCC"

    def test_duplicate_out_of_order_counted(self):
        reassembler = StreamReassembler()
        reassembler.feed(0, b"", syn=True)
        reassembler.feed(11, b"CC")
        reassembler.feed(11, b"CC")
        assert reassembler.stats.retransmissions == 1

    def test_giant_hole_skipped(self):
        reassembler = StreamReassembler(max_hole=100)
        reassembler.feed(0, b"", syn=True)
        assert reassembler.feed(1, b"a") == b"a"
        # Capture loss: jump the cursor rather than buffer forever.
        assert reassembler.feed(5000, b"late") == b"late"
        assert reassembler.stats.gap_bytes_skipped > 0


@given(st.binary(min_size=1, max_size=400),
       st.lists(st.integers(min_value=1, max_value=60), min_size=1,
                max_size=30),
       st.randoms(use_true_random=False))
def test_any_segmentation_reassembles(stream, sizes, rng):
    """Property: any segmentation, with shuffled delivery inside a
    bounded window and injected duplicates, reassembles exactly."""
    segments = []
    offset = 0
    index = 0
    while offset < len(stream):
        size = sizes[index % len(sizes)]
        segments.append((1000 + offset, stream[offset:offset + size]))
        offset += size
        index += 1
    # Inject duplicates and shuffle within a small window.
    with_dups = []
    for segment in segments:
        with_dups.append(segment)
        if rng.random() < 0.3:
            with_dups.append(segment)
    for i in range(len(with_dups) - 1):
        if rng.random() < 0.3:
            with_dups[i], with_dups[i + 1] = with_dups[i + 1], with_dups[i]

    reassembler = StreamReassembler()
    reassembler.feed(999, b"", syn=True)
    output = b"".join(reassembler.feed(seq, data)
                      for seq, data in with_dups)
    assert output == stream
