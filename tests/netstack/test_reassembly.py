"""TCP stream reassembly tests, including the retransmission accounting
that explains the paper's repeated U16/U32 Markov tokens."""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.reassembly import StreamReassembler, seq_add, seq_after


class TestSeqHelpers:
    def test_after_simple(self):
        assert seq_after(10, 5)
        assert not seq_after(5, 10)
        assert not seq_after(5, 5)

    def test_after_wraparound(self):
        high = (1 << 32) - 10
        assert seq_after(5, high)  # wrapped
        assert not seq_after(high, 5)

    def test_add_wraps(self):
        assert seq_add((1 << 32) - 1, 2) == 1


class TestInOrder:
    def test_simple_stream(self):
        reassembler = StreamReassembler()
        assert reassembler.feed(1000, b"", syn=True) == b""
        assert reassembler.feed(1001, b"hello ") == b"hello "
        assert reassembler.feed(1007, b"world") == b"world"
        assert reassembler.stats.bytes_delivered == 11

    def test_without_syn_locks_to_first_data(self):
        reassembler = StreamReassembler()
        assert reassembler.feed(5555, b"mid-stream") == b"mid-stream"

    def test_fin_recorded(self):
        reassembler = StreamReassembler()
        reassembler.feed(1, b"", fin=True)
        assert reassembler.saw_fin

    def test_empty_segments_ignored(self):
        reassembler = StreamReassembler()
        reassembler.feed(1000, b"", syn=True)
        assert reassembler.feed(1001, b"") == b""
        assert reassembler.stats.payload_segments == 0


class TestRetransmission:
    def test_exact_duplicate_suppressed(self):
        reassembler = StreamReassembler()
        reassembler.feed(1000, b"", syn=True)
        assert reassembler.feed(1001, b"data") == b"data"
        assert reassembler.feed(1001, b"data") == b""
        assert reassembler.stats.retransmissions == 1

    def test_partial_overlap_delivers_tail(self):
        reassembler = StreamReassembler()
        reassembler.feed(1000, b"abcdef")
        assert reassembler.feed(1003, b"defGHI") == b"GHI"
        assert reassembler.stats.retransmissions == 1

    def test_old_data_fully_covered(self):
        reassembler = StreamReassembler()
        reassembler.feed(1000, b"abcdef")
        assert reassembler.feed(1002, b"cd") == b""


class TestOutOfOrder:
    def test_hole_then_fill(self):
        reassembler = StreamReassembler()
        reassembler.feed(100, b"", syn=True)
        assert reassembler.feed(106, b"world") == b""
        assert reassembler.pending_bytes == 5
        assert reassembler.feed(101, b"hello") == b"helloworld"
        assert reassembler.stats.out_of_order == 1

    def test_multiple_pending_chunks_drain_in_order(self):
        reassembler = StreamReassembler()
        reassembler.feed(0, b"", syn=True)
        assert reassembler.feed(11, b"CC") == b""
        assert reassembler.feed(6, b"BB") == b""
        assert reassembler.feed(1, b"AAAAA") == b"AAAAABB"
        assert reassembler.feed(8, b"xxx") == b"xxxCC"

    def test_duplicate_out_of_order_counted(self):
        reassembler = StreamReassembler()
        reassembler.feed(0, b"", syn=True)
        reassembler.feed(11, b"CC")
        reassembler.feed(11, b"CC")
        assert reassembler.stats.retransmissions == 1

    def test_giant_hole_skipped(self):
        reassembler = StreamReassembler(max_hole=100)
        reassembler.feed(0, b"", syn=True)
        assert reassembler.feed(1, b"a") == b"a"
        # Capture loss: jump the cursor rather than buffer forever.
        assert reassembler.feed(5000, b"late") == b"late"
        assert reassembler.stats.gap_bytes_skipped > 0


@given(st.binary(min_size=1, max_size=400),
       st.lists(st.integers(min_value=1, max_value=60), min_size=1,
                max_size=30),
       st.randoms(use_true_random=False))
def test_any_segmentation_reassembles(stream, sizes, rng):
    """Property: any segmentation, with shuffled delivery inside a
    bounded window and injected duplicates, reassembles exactly."""
    segments = []
    offset = 0
    index = 0
    while offset < len(stream):
        size = sizes[index % len(sizes)]
        segments.append((1000 + offset, stream[offset:offset + size]))
        offset += size
        index += 1
    # Inject duplicates and shuffle within a small window.
    with_dups = []
    for segment in segments:
        with_dups.append(segment)
        if rng.random() < 0.3:
            with_dups.append(segment)
    for i in range(len(with_dups) - 1):
        if rng.random() < 0.3:
            with_dups[i], with_dups[i + 1] = with_dups[i + 1], with_dups[i]

    reassembler = StreamReassembler()
    reassembler.feed(999, b"", syn=True)
    output = b"".join(reassembler.feed(seq, data)
                      for seq, data in with_dups)
    assert output == stream


class TestBufferCap:
    """Bounded-memory guarantee: a hole held open by a never-arriving
    segment cannot buffer bytes without limit."""

    def test_pending_bytes_tracked_incrementally(self):
        reassembler = StreamReassembler()
        reassembler.feed(0, b"", syn=True)
        reassembler.feed(100, b"xxxx")
        assert reassembler.pending_bytes == 4
        reassembler.feed(200, b"yyyyyy")
        assert reassembler.pending_bytes == 10
        # Replacing a buffered chunk with a longer one at the same seq
        # counts only the extra bytes.
        reassembler.feed(100, b"xxxxzz")
        assert reassembler.pending_bytes == 12

    def test_overflow_abandons_hole_and_drains(self):
        reassembler = StreamReassembler(max_buffered=16)
        reassembler.feed(0, b"", syn=True)
        assert reassembler.feed(1, b"a") == b"a"
        # seq 2 never arrives; later segments pile up behind the hole.
        assert reassembler.feed(10, b"A" * 8) == b""
        assert reassembler.pending_bytes == 8
        delivered = reassembler.feed(18, b"B" * 16)
        # Cap exceeded: the hole is abandoned, the cursor jumps to the
        # oldest buffered byte and everything contiguous drains.
        assert delivered == b"A" * 8 + b"B" * 16
        assert reassembler.pending_bytes == 0
        assert reassembler.stats.buffer_overflows == 1
        # The abandoned hole spanned seqs 2..9 (cursor 2, island at 10).
        assert reassembler.stats.gap_bytes_skipped == 8
        # The stream continues normally from the new cursor.
        assert reassembler.feed(34, b"tail") == b"tail"

    def test_overflow_repeats_until_under_cap(self):
        reassembler = StreamReassembler(max_buffered=4)
        reassembler.feed(0, b"", syn=True)
        reassembler.feed(1, b"a")
        # Two disjoint islands, each behind its own hole. One flush
        # drains only up to the next hole, so getting back under the
        # cap here takes two.
        assert reassembler.feed(10, b"AAAA") == b""
        delivered = reassembler.feed(100, b"B" * 6)
        assert delivered == b"AAAA" + b"B" * 6
        assert reassembler.pending_bytes == 0
        assert reassembler.stats.buffer_overflows == 2

    def test_overflow_never_reorders_delivered_bytes(self):
        reassembler = StreamReassembler(max_buffered=3)
        reassembler.feed(0, b"", syn=True)
        reassembler.feed(1, b"x")
        reassembler.feed(6, b"22")
        delivered = reassembler.feed(3, b"11")
        # "11" fills nothing (the hole at seq 2 remains) but trips the
        # cap (4 buffered > 3); the cursor jumps to the oldest buffered
        # seq (3) and drains until back under the cap. The second
        # island stays buffered for its own (still plausible) hole.
        assert delivered == b"11"
        assert reassembler.pending_bytes == 2
        assert reassembler.stats.buffer_overflows == 1
        # The held-back island drains in order once its hole fills.
        assert reassembler.feed(5, b"5") == b"522"

    def test_default_cap_is_generous(self):
        reassembler = StreamReassembler()
        assert reassembler.max_buffered >= 1 << 16
