"""Display-filter DSL tests."""

import pytest

from repro.netstack.addresses import IPv4Address, MacAddress, ipv4, mac
from repro.netstack.filter import (FilterError, compile_filter,
                                   filter_packets)
from repro.netstack.packet import CapturedPacket
from repro.netstack.tcp import PSH_ACK, RST_ACK, SYN, TCPSegment

A = ipv4("10.0.0.1")
B = ipv4("10.1.0.7")
M1 = mac("02:00:00:00:00:01")
M2 = mac("02:00:00:00:00:02")
NAMES = {A: "C1", B: "O7"}


def pkt(sport=40000, dport=2404, flags=PSH_ACK, payload=b"x",
        src=A, dst=B):
    segment = TCPSegment(src_port=sport, dst_port=dport, seq=1,
                         flags=flags, payload=payload)
    return CapturedPacket.build(0, M1, M2, src, dst, segment)


class TestComparisons:
    def test_ip_src(self):
        predicate = compile_filter("ip.src == 10.0.0.1")
        assert predicate(pkt())
        assert not predicate(pkt(src=B, dst=A))

    def test_ip_addr_either_side(self):
        predicate = compile_filter("ip.addr == 10.1.0.7")
        assert predicate(pkt())
        assert predicate(pkt(src=B, dst=A))
        assert not predicate(pkt(dst=ipv4("10.9.9.9")))

    def test_ip_addr_not_equal_means_neither(self):
        predicate = compile_filter("ip.addr != 10.1.0.7")
        assert not predicate(pkt())
        assert predicate(pkt(src=A, dst=ipv4("10.9.9.9")))

    def test_ports(self):
        assert compile_filter("tcp.dstport == 2404")(pkt())
        assert compile_filter("tcp.port == 40000")(pkt())
        assert compile_filter("tcp.srcport >= 40000")(pkt())
        assert not compile_filter("tcp.srcport < 40000")(pkt())

    def test_payload_length(self):
        assert compile_filter("tcp.payload > 0")(pkt())
        assert not compile_filter("tcp.payload > 0")(pkt(payload=b""))

    def test_flags(self):
        assert compile_filter("tcp.flags.syn")(pkt(flags=SYN))
        assert not compile_filter("tcp.flags.syn")(pkt())
        assert compile_filter("tcp.flags.rst")(pkt(flags=RST_ACK))

    def test_iec104_keyword(self):
        assert compile_filter("iec104")(pkt())
        assert not compile_filter("iec104")(pkt(dport=102))
        assert compile_filter("iec104")(pkt(sport=2404, dport=5000))

    def test_host_names(self):
        predicate = compile_filter("host == O7", names=NAMES)
        assert predicate(pkt())
        predicate = compile_filter("host.src == C1", names=NAMES)
        assert predicate(pkt())
        assert not predicate(pkt(src=B, dst=A))

    def test_unnamed_host_falls_back_to_address(self):
        predicate = compile_filter("host.src == 10.0.0.1")
        assert predicate(pkt())


class TestBooleanAlgebra:
    def test_and(self):
        predicate = compile_filter(
            "iec104 and tcp.flags.syn")
        assert predicate(pkt(flags=SYN))
        assert not predicate(pkt())

    def test_or(self):
        predicate = compile_filter(
            "tcp.dstport == 102 or tcp.dstport == 2404")
        assert predicate(pkt())
        assert predicate(pkt(dport=102))
        assert not predicate(pkt(dport=80))

    def test_not(self):
        predicate = compile_filter("not tcp.flags.rst")
        assert predicate(pkt())
        assert not predicate(pkt(flags=RST_ACK))

    def test_parentheses_and_precedence(self):
        # and binds tighter than or.
        tight = compile_filter(
            "tcp.dstport == 80 or tcp.dstport == 2404 and "
            "tcp.flags.syn")
        assert not tight(pkt())  # 2404 but no SYN, not 80
        grouped = compile_filter(
            "(tcp.dstport == 80 or tcp.dstport == 2404) and "
            "not tcp.flags.rst")
        assert grouped(pkt())

    def test_double_not(self):
        predicate = compile_filter("not not iec104")
        assert predicate(pkt())


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "ip.src ==", "== 5", "bogus.field == 1",
        "tcp.port == notanumber", "ip.src == 999.1.1.1",
        "iec104 and", "(iec104", "iec104 extra",
        "tcp.flags.syn == 1 ?",
    ])
    def test_invalid_filters(self, bad):
        with pytest.raises(FilterError):
            compile_filter(bad)


class TestFilterPackets:
    def test_slicing(self):
        packets = [pkt(), pkt(dport=102), pkt(flags=SYN)]
        kept = filter_packets(packets, "iec104")
        assert len(kept) == 2

    def test_on_synthetic_capture(self, y1_capture):
        names = y1_capture.host_names()
        rst = filter_packets(y1_capture.packets,
                             "tcp.flags.rst and host == O5",
                             names=names)
        assert rst
        assert all(packet.flags.rst for packet in rst)
        o5 = y1_capture.network["O5"].ip
        assert all(o5 in (packet.ip.src, packet.ip.dst)
                   for packet in rst)
