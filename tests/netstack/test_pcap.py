"""libpcap file format tests."""

import io
import struct

import pytest
from hypothesis import given, strategies as st

from repro.netstack.pcap import (LINKTYPE_ETHERNET, MAGIC_NSEC, PcapError,
                                 PcapReader, PcapRecord, PcapWriter,
                                 read_pcap, write_pcap)


def roundtrip(records, snaplen=65535):
    buffer = io.BytesIO()
    PcapWriter(buffer, snaplen=snaplen).write_all(records)
    buffer.seek(0)
    return list(PcapReader(buffer))


class TestRoundtrip:
    def test_single_record(self):
        records = roundtrip([PcapRecord(timestamp=12.345678,
                                        data=b"\xAA" * 60)])
        assert len(records) == 1
        assert records[0].data == b"\xAA" * 60
        assert records[0].timestamp == pytest.approx(12.345678, abs=1e-6)

    def test_many_records_preserve_order(self):
        inputs = [PcapRecord(timestamp=float(i), data=bytes([i]) * 10)
                  for i in range(50)]
        outputs = roundtrip(inputs)
        assert [r.data for r in outputs] == [r.data for r in inputs]

    def test_empty_file(self):
        assert roundtrip([]) == []

    def test_snaplen_truncates(self):
        records = roundtrip([PcapRecord(timestamp=0.0, data=b"x" * 100)],
                            snaplen=40)
        assert len(records[0].data) == 40
        assert records[0].original_length == 100
        assert records[0].truncated

    def test_microsecond_rollover(self):
        # 0.9999996 rounds to 1000000 us, which must carry into seconds.
        records = roundtrip([PcapRecord(timestamp=1.9999996, data=b"x")])
        assert records[0].timestamp == pytest.approx(2.0, abs=1e-6)

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        st.binary(min_size=0, max_size=100)), max_size=20))
    def test_roundtrip_property(self, entries):
        inputs = [PcapRecord(timestamp=t, data=d) for t, d in entries]
        outputs = roundtrip(inputs)
        assert len(outputs) == len(inputs)
        for before, after in zip(inputs, outputs):
            assert after.data == before.data
            assert after.timestamp == pytest.approx(before.timestamp,
                                                    abs=1e-6)


class TestHeader:
    def test_header_fields(self):
        buffer = io.BytesIO()
        PcapWriter(buffer, snaplen=1234)
        buffer.seek(0)
        reader = PcapReader(buffer)
        assert reader.version == (2, 4)
        assert reader.snaplen == 1234
        assert reader.linktype == LINKTYPE_ETHERNET

    def test_nanosecond_magic(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack("<IHHiIII", MAGIC_NSEC, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack("<IIII", 10, 500_000_000, 3, 3))
        buffer.write(b"abc")
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert records[0].timestamp == pytest.approx(10.5)

    def test_big_endian(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack(">IIII", 7, 250_000, 2, 2))
        buffer.write(b"hi")
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert records[0].timestamp == pytest.approx(7.25)
        assert records[0].data == b"hi"


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_header(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(b"\x01\x02")
        buffer.seek(0)
        with pytest.raises(PcapError):
            list(PcapReader(buffer))

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(struct.pack("<IIII", 0, 0, 100, 100))
        buffer.write(b"short")
        buffer.seek(0)
        with pytest.raises(PcapError):
            list(PcapReader(buffer))


class TestFastPathParity:
    """The buffered scan and the per-record reads must agree exactly."""

    @staticmethod
    def both_paths(raw: bytes):
        buffered = list(PcapReader(io.BytesIO(raw)))
        unbuffered = list(PcapReader(io.BytesIO(raw)).iter_unbuffered())
        return buffered, unbuffered

    def test_little_endian_microseconds(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for index in range(25):
            writer.write(PcapRecord(timestamp=index + 0.000001 * index,
                                    data=bytes([index]) * (index + 1)))
        buffered, unbuffered = self.both_paths(buffer.getvalue())
        assert buffered == unbuffered
        assert len(buffered) == 25

    def test_big_endian(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                 65535, 1))
        for index in range(5):
            buffer.write(struct.pack(">IIII", index, 250_000, 4, 4))
            buffer.write(bytes([index]) * 4)
        buffered, unbuffered = self.both_paths(buffer.getvalue())
        assert buffered == unbuffered
        assert buffered[3].timestamp == pytest.approx(3.25)

    def test_nanosecond_magic(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack("<IHHiIII", MAGIC_NSEC, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack("<IIII", 10, 123_456_789, 3, 3))
        buffer.write(b"abc")
        buffered, unbuffered = self.both_paths(buffer.getvalue())
        assert buffered == unbuffered
        # Float identity, not approx: both paths must compute the
        # timestamp with the same expression.
        assert buffered[0].timestamp == unbuffered[0].timestamp

    def test_big_endian_nanoseconds(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", MAGIC_NSEC, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack(">IIII", 1, 999_999_999, 2, 2))
        buffer.write(b"hi")
        buffered, unbuffered = self.both_paths(buffer.getvalue())
        assert buffered == unbuffered

    def test_truncated_record_header_both_paths(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(b"\x01\x02")
        raw = buffer.getvalue()
        with pytest.raises(PcapError, match="record header"):
            list(PcapReader(io.BytesIO(raw)))
        with pytest.raises(PcapError, match="record header"):
            list(PcapReader(io.BytesIO(raw)).iter_unbuffered())

    def test_truncated_record_body_both_paths(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(struct.pack("<IIII", 0, 0, 100, 100))
        buffer.write(b"short")
        raw = buffer.getvalue()
        with pytest.raises(PcapError, match="record body"):
            list(PcapReader(io.BytesIO(raw)))
        with pytest.raises(PcapError, match="record body"):
            list(PcapReader(io.BytesIO(raw)).iter_unbuffered())

    def test_records_before_truncation_agree(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(PcapRecord(timestamp=1.0, data=b"ok"))
        buffer.write(struct.pack("<IIII", 2, 0, 50, 50))
        buffer.write(b"not fifty octets")
        raw = buffer.getvalue()
        for records in (PcapReader(io.BytesIO(raw)),
                        PcapReader(io.BytesIO(raw)).iter_unbuffered()):
            iterator = iter(records)
            assert next(iterator).data == b"ok"
            with pytest.raises(PcapError, match="record body"):
                next(iterator)


class TestFileHelpers:
    def test_write_read_path(self, tmp_path):
        path = tmp_path / "capture.pcap"
        count = write_pcap(path, [PcapRecord(timestamp=1.0, data=b"abc")])
        assert count == 1
        records = read_pcap(path)
        assert records[0].data == b"abc"
