"""libpcap file format tests.

The canonical timestamp is integer microseconds (``time_us``); the
microsecond record header stores exactly ``divmod(time_us, 1_000_000)``,
so writer↔reader round trips must be *exact*, not approximate.
"""

import io
import struct

import pytest
from hypothesis import given, strategies as st

from repro.netstack.pcap import (LINKTYPE_ETHERNET, MAGIC_NSEC, PcapError,
                                 PcapReader, PcapRecord, PcapWriter,
                                 read_pcap, write_pcap)


def roundtrip(records, snaplen=65535, nanoseconds=False):
    buffer = io.BytesIO()
    PcapWriter(buffer, snaplen=snaplen,
               nanoseconds=nanoseconds).write_all(records)
    buffer.seek(0)
    return list(PcapReader(buffer))


class TestRoundtrip:
    def test_single_record(self):
        records = roundtrip([PcapRecord(time_us=12_345_678,
                                        data=b"\xAA" * 60)])
        assert len(records) == 1
        assert records[0].data == b"\xAA" * 60
        assert records[0].time_us == 12_345_678

    def test_many_records_preserve_order(self):
        inputs = [PcapRecord(time_us=i * 1_000_000, data=bytes([i]) * 10)
                  for i in range(50)]
        outputs = roundtrip(inputs)
        assert [r.data for r in outputs] == [r.data for r in inputs]

    def test_empty_file(self):
        assert roundtrip([]) == []

    def test_snaplen_truncates(self):
        records = roundtrip([PcapRecord(time_us=0, data=b"x" * 100)],
                            snaplen=40)
        assert len(records[0].data) == 40
        assert records[0].original_length == 100
        assert records[0].truncated

    def test_float_timestamp_rejected(self):
        with pytest.raises(TypeError):
            PcapRecord(time_us=1.9999996, data=b"x")

    def test_float_timestamp_view_removed(self):
        # The deprecated float-seconds view went away in 1.1.0.
        record = PcapRecord(time_us=2_500_000, data=b"x")
        with pytest.raises(AttributeError):
            record.timestamp

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=10**15),
        st.binary(min_size=0, max_size=100)), max_size=20))
    def test_roundtrip_property_exact(self, entries):
        """Integer-µs timestamps survive the µs-magic round trip
        bit-for-bit — no approx, no sidecar."""
        inputs = [PcapRecord(time_us=t, data=d) for t, d in entries]
        outputs = roundtrip(inputs)
        assert len(outputs) == len(inputs)
        for before, after in zip(inputs, outputs):
            assert after.data == before.data
            assert after.time_us == before.time_us

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=10**15),
        st.binary(min_size=0, max_size=100)), max_size=20))
    def test_roundtrip_property_exact_nanosecond_magic(self, entries):
        """The 0xa1b23c4d writer stores micros*1000; reading floors
        back to the identical canonical tick."""
        inputs = [PcapRecord(time_us=t, data=d) for t, d in entries]
        outputs = roundtrip(inputs, nanoseconds=True)
        assert [r.time_us for r in outputs] \
            == [r.time_us for r in inputs]
        assert [r.data for r in outputs] == [r.data for r in inputs]


class TestHeader:
    def test_header_fields(self):
        buffer = io.BytesIO()
        PcapWriter(buffer, snaplen=1234)
        buffer.seek(0)
        reader = PcapReader(buffer)
        assert reader.version == (2, 4)
        assert reader.snaplen == 1234
        assert reader.linktype == LINKTYPE_ETHERNET

    def test_nanosecond_magic_write_sets_magic(self):
        buffer = io.BytesIO()
        PcapWriter(buffer, nanoseconds=True)
        assert struct.unpack("<I", buffer.getvalue()[:4])[0] == MAGIC_NSEC

    def test_nanosecond_magic(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack("<IHHiIII", MAGIC_NSEC, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack("<IIII", 10, 500_000_000, 3, 3))
        buffer.write(b"abc")
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert records[0].time_us == 10_500_000

    def test_nanosecond_sub_microsecond_floors(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack("<IHHiIII", MAGIC_NSEC, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack("<IIII", 10, 123_456_789, 3, 3))
        buffer.write(b"abc")
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert records[0].time_us == 10_123_456

    def test_big_endian(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack(">IIII", 7, 250_000, 2, 2))
        buffer.write(b"hi")
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert records[0].time_us == 7_250_000
        assert records[0].data == b"hi"

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=999_999),
        st.binary(min_size=0, max_size=40)), max_size=10))
    def test_big_endian_records_read_exactly(self, entries):
        """Hand-packed big-endian µs records decode to the exact tick."""
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                 65535, 1))
        for seconds, micros, data in entries:
            buffer.write(struct.pack(">IIII", seconds, micros,
                                     len(data), len(data)))
            buffer.write(data)
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert [r.time_us for r in records] \
            == [s * 1_000_000 + u for s, u, _ in entries]


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_header(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(b"\x01\x02")
        buffer.seek(0)
        with pytest.raises(PcapError):
            list(PcapReader(buffer))

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(struct.pack("<IIII", 0, 0, 100, 100))
        buffer.write(b"short")
        buffer.seek(0)
        with pytest.raises(PcapError):
            list(PcapReader(buffer))


class TestFastPathParity:
    """The buffered scan and the per-record reads must agree exactly."""

    @staticmethod
    def both_paths(raw: bytes):
        buffered = list(PcapReader(io.BytesIO(raw)))
        unbuffered = list(PcapReader(io.BytesIO(raw)).iter_unbuffered())
        return buffered, unbuffered

    def test_little_endian_microseconds(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for index in range(25):
            writer.write(PcapRecord(time_us=index * 1_000_000 + index,
                                    data=bytes([index]) * (index + 1)))
        buffered, unbuffered = self.both_paths(buffer.getvalue())
        assert buffered == unbuffered
        assert len(buffered) == 25

    def test_big_endian(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                 65535, 1))
        for index in range(5):
            buffer.write(struct.pack(">IIII", index, 250_000, 4, 4))
            buffer.write(bytes([index]) * 4)
        buffered, unbuffered = self.both_paths(buffer.getvalue())
        assert buffered == unbuffered
        assert buffered[3].time_us == 3_250_000

    def test_nanosecond_magic(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack("<IHHiIII", MAGIC_NSEC, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack("<IIII", 10, 123_456_789, 3, 3))
        buffer.write(b"abc")
        buffered, unbuffered = self.both_paths(buffer.getvalue())
        assert buffered == unbuffered
        # Integer identity: both paths must floor to the same tick.
        assert buffered[0].time_us == unbuffered[0].time_us

    def test_big_endian_nanoseconds(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", MAGIC_NSEC, 2, 4, 0, 0,
                                 65535, 1))
        buffer.write(struct.pack(">IIII", 1, 999_999_999, 2, 2))
        buffer.write(b"hi")
        buffered, unbuffered = self.both_paths(buffer.getvalue())
        assert buffered == unbuffered

    def test_truncated_record_header_both_paths(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(b"\x01\x02")
        raw = buffer.getvalue()
        with pytest.raises(PcapError, match="record header"):
            list(PcapReader(io.BytesIO(raw)))
        with pytest.raises(PcapError, match="record header"):
            list(PcapReader(io.BytesIO(raw)).iter_unbuffered())

    def test_truncated_record_body_both_paths(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(struct.pack("<IIII", 0, 0, 100, 100))
        buffer.write(b"short")
        raw = buffer.getvalue()
        with pytest.raises(PcapError, match="record body"):
            list(PcapReader(io.BytesIO(raw)))
        with pytest.raises(PcapError, match="record body"):
            list(PcapReader(io.BytesIO(raw)).iter_unbuffered())

    def test_records_before_truncation_agree(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(PcapRecord(time_us=1_000_000, data=b"ok"))
        buffer.write(struct.pack("<IIII", 2, 0, 50, 50))
        buffer.write(b"not fifty octets")
        raw = buffer.getvalue()
        for records in (PcapReader(io.BytesIO(raw)),
                        PcapReader(io.BytesIO(raw)).iter_unbuffered()):
            iterator = iter(records)
            assert next(iterator).data == b"ok"
            with pytest.raises(PcapError, match="record body"):
                next(iterator)


class TestFileHelpers:
    def test_write_read_path(self, tmp_path):
        path = tmp_path / "capture.pcap"
        count = write_pcap(path,
                           [PcapRecord(time_us=1_000_000, data=b"abc")])
        assert count == 1
        records = read_pcap(path)
        assert records[0].data == b"abc"
        assert records[0].time_us == 1_000_000
