"""Committed capture digests: the tick-based generator is frozen.

The integer-microsecond timebase makes generated captures exact: two
runs of ``generate_capture`` with the same config must produce
bit-identical pcap bytes, on any platform, in any process. These
SHA-256 digests were committed alongside the timebase change; if one
drifts, either the generator changed behaviour (bump the digests
deliberately, with a CHANGES.md note) or determinism broke (a bug).
"""

import hashlib
import io

import pytest

from repro.datasets import CaptureConfig, generate_capture

#: (year, workers) -> sha256 of the capture's classic-pcap bytes at
#: time_scale=0.004, max_outstations=6. The windowed (workers=2) and
#: monolithic paths produce different — equally valid — byte streams,
#: so each is pinned separately.
DIGESTS = {
    (1, None):
        "90a35bf9bed2d315d1a93c6e1d80d0041345b40c43e5572d3b357d6688554084",
    (1, 2):
        "389b3828b29cdd8b3aa86cd5c90c89959a94828d1ea68d11c0f2fda0b9725ca8",
    (2, None):
        "fe20bf91326e7eaa680a1146e3a755d20710e7a98cceec0ee23b1b0c3dc79c22",
    (2, 2):
        "a3ac372d2918b486e8e1bcca2a7c3659dde584fb9d618368bd3ce43500e7ebf8",
}


@pytest.mark.parametrize("year,workers", sorted(
    DIGESTS, key=lambda pair: (pair[0], pair[1] or 0)))
def test_generator_reproduces_committed_digest(year, workers):
    config = CaptureConfig(time_scale=0.004, max_outstations=6,
                           workers=workers)
    capture = generate_capture(year, config)
    buffer = io.BytesIO()
    capture.to_pcap(buffer)
    digest = hashlib.sha256(buffer.getvalue()).hexdigest()
    assert digest == DIGESTS[(year, workers)]
