"""The paper-shape results must hold across random seeds.

Every structural claim the benches assert is driven by seeded RNGs; a
result that only holds for seed 104 would be an accident, not a
reproduction. These tests sweep a few seeds at tiny scale and check
the load-bearing invariants.
"""

import pytest

from repro.analysis import (ConnectionChains, FlowAnalysis,
                            analyze_compliance, classify_all,
                            extract_apdus, type_distribution,
                            type_id_distribution)
from repro.datasets import (CaptureConfig, NON_COMPLIANT,
                            Y1_RESET_CONNECTIONS, generate_capture)
from repro.simnet.behaviors import OutstationType

SEEDS = (7, 2024, 55555)


@pytest.fixture(scope="module", params=SEEDS)
def seeded(request):
    capture = generate_capture(
        1, CaptureConfig(seed=request.param, time_scale=0.015))
    extraction = extract_apdus(capture)
    return capture, extraction


class TestSeedInvariance:
    def test_tolerant_parser_never_fails(self, seeded):
        _, extraction = seeded
        assert extraction.failures == []

    def test_non_compliant_hosts_constant(self, seeded):
        capture, _ = seeded
        report = analyze_compliance(capture)
        assert set(report.fully_malformed_hosts()) \
            == {"O37", "O28"}  # the Y1 legacy RTUs, any seed

    def test_reset_connections_subset_of_paper(self, seeded):
        _, extraction = seeded
        chains = ConnectionChains.from_extraction(extraction)
        reset = set(chains.reset_connections())
        allowed = {tuple(pair) for pair in Y1_RESET_CONNECTIONS}
        assert reset <= allowed
        assert len(reset) >= 6

    def test_flows_short_dominated(self, seeded):
        capture, _ = seeded
        summary = FlowAnalysis.from_packets("Y1", capture).summary()
        assert summary.short_fraction > 0.4
        # At this tiny scale the fixed per-window type-4 flows weigh
        # more, so the sub-second share sits lower than at full scale.
        assert summary.sub_second_fraction_of_short > 0.8

    def test_typeid_order_stable(self, seeded):
        _, extraction = seeded
        rows = type_id_distribution(extraction).rows()
        assert rows[0][0] == "I36"
        assert rows[1][0] == "I13"

    def test_type3_most_common(self, seeded):
        _, extraction = seeded
        distribution = type_distribution(classify_all(extraction))
        assert distribution.most_common \
            is OutstationType.BACKUP_U_ONLY
