"""Capture generation tests: Y1 vs Y2 and the topology diff."""

import pytest

from repro.analysis import extract_apdus
from repro.analysis.topology_diff import (ObservedTopology,
                                          diff_topologies)
from repro.datasets import (CaptureConfig, capture_windows,
                            generate_capture, roster, spec_by_name)


class TestConfig:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            CaptureConfig(time_scale=0.0)
        with pytest.raises(ValueError):
            CaptureConfig(time_scale=1.5)

    def test_windows_y1(self):
        windows = capture_windows(1, CaptureConfig(time_scale=0.1))
        assert len(windows) == 5
        assert windows[0].duration == pytest.approx(576.0)

    def test_windows_y2(self):
        windows = capture_windows(2, CaptureConfig(time_scale=0.1))
        assert len(windows) == 3
        assert windows[0].duration == pytest.approx(360.0)

    def test_invalid_year(self):
        with pytest.raises(ValueError):
            generate_capture(3)


class TestDeterminism:
    def test_same_seed_same_capture(self):
        config = CaptureConfig(time_scale=0.005, seed=9,
                               max_outstations=6)
        first = generate_capture(1, config)
        second = generate_capture(1, config)
        assert len(first.packets) == len(second.packets)
        assert all(a.encode() == b.encode()
                   for a, b in zip(first.packets[:500],
                                   second.packets[:500]))

    def test_different_seed_differs(self):
        a = generate_capture(1, CaptureConfig(time_scale=0.005, seed=1,
                                              max_outstations=6))
        b = generate_capture(1, CaptureConfig(time_scale=0.005, seed=2,
                                              max_outstations=6))
        assert len(a.packets) != len(b.packets) or any(
            x.encode() != y.encode()
            for x, y in zip(a.packets[:200], b.packets[:200]))


class TestRosters:
    def test_y1_hosts(self, y1_capture):
        names = set(y1_capture.host_names().values())
        assert {"C1", "C2", "C3", "C4"} <= names
        assert "O2" in names and "O50" not in names

    def test_y2_hosts(self, y2_capture):
        names = set(y2_capture.host_names().values())
        assert "O50" in names and "O2" not in names

    def test_packets_inside_windows_only(self, y1_capture):
        for packet in y1_capture.packets:
            assert any(w.contains(packet.time_us)
                       for w in y1_capture.windows)


class TestTopologyDiff:
    @pytest.fixture(scope="class")
    def diff(self, y1_extraction, y2_extraction):
        before = ObservedTopology.from_extraction(y1_extraction)
        after = ObservedTopology.from_extraction(y2_extraction)
        return diff_topologies(before, after)

    def test_added_outstations_observed(self, diff):
        # Everything Table 2 adds must be observed in Y2 traffic.
        assert set(diff.added_outstations) \
            == {f"O{i}" for i in range(50, 59)}

    def test_removed_outstations_observed(self, diff):
        assert set(diff.removed_outstations) \
            == {"O2", "O15", "O20", "O22", "O28", "O33", "O38"}

    def test_persisting_count(self, diff):
        assert len(diff.persisting) == 42

    def test_servers_stable(self, diff):
        assert diff.before.servers == diff.after.servers \
            == {"C1", "C2", "C3", "C4"}

    def test_substation_stability_metric(self, diff):
        substation_of = {spec.name: spec.substation
                         for spec in roster(1) + roster(2)}
        fraction = diff.substation_stability(substation_of)
        assert 0.0 <= fraction <= 1.0

    def test_ioa_counts_observed_for_primaries(self, y1_extraction):
        topology = ObservedTopology.from_extraction(y1_extraction)
        # A persistent primary reports its full configured point list
        # during general interrogation (O27 is type 4, interrogated
        # inside every window).
        spec = spec_by_name("O27")
        assert topology.ioa_counts["O27"] == spec.y1_ioas


class TestGridEvents:
    def test_unmet_load_produces_frequency_excursion(self, y1_capture):
        grid = y1_capture.grid
        # AGC history records the ACE; the scripted load loss must show
        # up as a period of elevated |ACE|.
        aces = [abs(ace) for _, ace, _ in grid.agc.history]
        assert aces, "AGC never ran"
        assert max(aces) > 5.0 * (sum(aces) / len(aces))

    def test_sync_generator_comes_online(self, y1_capture):
        from repro.datasets import SYNC_GENERATOR
        from repro.grid.generator import GeneratorState
        unit = y1_capture.grid.fleet[SYNC_GENERATOR]
        assert unit.state is GeneratorState.ONLINE
