"""Windowed capture generation: parallel must equal sequential.

The windowed generator simulates every capture day as a pure function
of ``(year, config, day index)``, so the concatenated year must be
byte-identical no matter how many workers execute the days. These are
the tier-1 guarantees the ``--workers`` fast path rests on.
"""

from __future__ import annotations

import io
from dataclasses import replace

import pytest

from repro.datasets import CaptureConfig, generate_capture

#: Small but structurally complete: full roster, all windows.
_CONFIG = CaptureConfig(time_scale=0.005, workers=1)


def _pcap_bytes(capture) -> bytes:
    buffer = io.BytesIO()
    capture.to_pcap(buffer)
    return buffer.getvalue()


def _names(capture) -> dict:
    return {str(address): name
            for address, name in capture.host_names().items()}


class TestByteIdentity:
    @pytest.mark.parametrize("year", [1, 2])
    def test_parallel_matches_sequential(self, year):
        sequential = generate_capture(year, _CONFIG)
        parallel = generate_capture(year, replace(_CONFIG, workers=2))
        assert _pcap_bytes(parallel) == _pcap_bytes(sequential)
        assert _names(parallel) == _names(sequential)

    def test_windowed_is_reproducible(self):
        first = generate_capture(2, _CONFIG)
        second = generate_capture(2, _CONFIG)
        assert _pcap_bytes(first) == _pcap_bytes(second)


class TestWindowedStructure:
    def test_same_hosts_as_monolithic(self):
        windowed = generate_capture(2, _CONFIG)
        monolithic = generate_capture(2, replace(_CONFIG, workers=None))
        assert _names(windowed) == _names(monolithic)

    def test_packets_cover_all_windows_in_order(self):
        """Days are concatenated in window order (the tap is not
        strictly time-sorted *within* a day, monolithic mode included,
        because agents may emit slightly-future frames)."""
        capture = generate_capture(2, _CONFIG)
        day_of = {window.label: i
                  for i, window in enumerate(capture.windows)}
        days = []
        for packet in capture.packets:
            window = next(w for w in capture.windows
                          if w.contains(packet.time_us))
            days.append(day_of[window.label])
        assert days == sorted(days)
        assert set(days) == set(day_of.values())

    def test_no_cross_window_four_tuple_reuse(self):
        """Each day gets a disjoint ephemeral-port block, so a flow key
        never spans two capture days."""
        capture = generate_capture(2, _CONFIG)
        seen: dict = {}
        for packet in capture.packets:
            key = packet.flow_key.canonical
            window = next((w for w in capture.windows
                           if w.contains(packet.time_us)), None)
            if window is None:
                continue
            seen.setdefault(key, set()).add(window.label)
        for key, labels in seen.items():
            assert len(labels) == 1, (key, labels)

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            CaptureConfig(workers=0)
        with pytest.raises(ValueError):
            CaptureConfig(workers=-2)
