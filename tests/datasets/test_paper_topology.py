"""The topology dataset must encode every count the paper states."""

from collections import Counter

import pytest

from repro.datasets.paper_topology import (NON_COMPLIANT, OUTSTATIONS,
                                           TABLE2_ADDED, TABLE2_REMOVED,
                                           Y1_RESET_CONNECTIONS,
                                           roster, spec_by_name,
                                           stable_outstations,
                                           substations)
from repro.iec104.profiles import (LEGACY_COT_PROFILE, LEGACY_IOA_PROFILE)
from repro.simnet.behaviors import OutstationType


class TestRosters:
    def test_y1_has_49_outstations(self):
        assert len(roster(1)) == 49

    def test_y2_has_51_outstations(self):
        assert len(roster(2)) == 51

    def test_58_outstations_total(self):
        assert len(OUTSTATIONS) == 58

    def test_27_substations(self):
        assert len(substations(1) | substations(2)) == 27

    def test_four_servers(self):
        from repro.datasets.paper_topology import ALL_SERVERS
        assert ALL_SERVERS == ("C1", "C2", "C3", "C4")

    def test_invalid_year(self):
        with pytest.raises(ValueError):
            roster(3)


class TestTable2:
    def test_added_outstations(self):
        added = {name for names in TABLE2_ADDED.values()
                 for name in names}
        assert added == {f"O{i}" for i in range(50, 59)}
        for reason, names in TABLE2_ADDED.items():
            for name in names:
                spec = spec_by_name(name)
                assert spec.y1_type is None
                assert spec.change_reason == reason

    def test_removed_outstations(self):
        removed = {name for names in TABLE2_REMOVED.values()
                   for name in names}
        assert removed == {"O2", "O15", "O20", "O22", "O28", "O33",
                           "O38"}
        for name in removed:
            assert spec_by_name(name).y2_type is None

    def test_o2_reason(self):
        assert spec_by_name("O2").change_reason \
            == "Substation without supervision"


class TestAnecdotes:
    def test_s10_has_14_rtus(self):
        assert sum(1 for s in OUTSTATIONS if s.substation == "S10") == 14

    def test_o10_active_o11_backup(self):
        assert spec_by_name("O10").y1_type is OutstationType.IDEAL
        assert spec_by_name("O11").y1_type \
            is OutstationType.BACKUP_U_ONLY

    def test_o5_o8_type6(self):
        for name in ("O5", "O8"):
            assert spec_by_name(name).y1_type \
                is OutstationType.REJECTS_SECONDARY

    def test_o9_backs_up_o15_in_s8(self):
        assert spec_by_name("O9").substation == "S8"
        assert spec_by_name("O15").substation == "S8"
        # O9 keeps representing the substation in Y2.
        assert spec_by_name("O9").y2_type is not None

    def test_switchover_pairs(self):
        assert spec_by_name("O20").pair == ("C3", "C4")
        assert spec_by_name("O29").pair == ("C1", "C2")
        for name in ("O20", "O29"):
            assert spec_by_name(name).y1_type \
                is OutstationType.SWITCHOVER_OBSERVED

    def test_o30_misconfigured_t3(self):
        assert spec_by_name("O30").keepalive_s == 430.0

    def test_o22_is_test_rtu(self):
        assert spec_by_name("O22").test_rtu

    def test_o40_is_type5(self):
        assert spec_by_name("O40").y1_type \
            is OutstationType.SINGLE_SERVER_I_AND_U

    def test_reset_connections_reference_valid_hosts(self):
        for server, outstation in Y1_RESET_CONNECTIONS:
            spec = spec_by_name(outstation)
            assert server in spec.pair
            assert spec.y1_type in (OutstationType.BACKUP_REJECTS,
                                    OutstationType.REJECTS_SECONDARY)
            assert spec.reject_server == server


class TestNonCompliance:
    def test_o37_uses_2_octet_ioa(self):
        assert spec_by_name("O37").profile == LEGACY_IOA_PROFILE

    @pytest.mark.parametrize("name", ["O53", "O58", "O28"])
    def test_1_octet_cot(self, name):
        assert spec_by_name(name).profile == LEGACY_COT_PROFILE

    def test_non_compliant_catalog(self):
        assert set(NON_COMPLIANT) == {"O37", "O53", "O58", "O28"}


class TestStability:
    def test_14_stable_outstations_in_7_substations(self):
        stable = stable_outstations()
        assert len(stable) == 14
        assert len({spec.substation for spec in stable}) == 7

    def test_stability_fractions_match_paper(self):
        # Paper: 25% of 58 outstations, 26% of 27 substations stable.
        assert 14 / 58 == pytest.approx(0.24, abs=0.02)

    def test_agc_participants_count(self):
        participants = [s for s in OUTSTATIONS if s.agc_participant]
        assert len(participants) == 4  # Table 8: I50 at 4 stations
        assert all(s.has_generator for s in participants)


class TestTypeDistributionGroundTruth:
    def test_type3_most_common_in_y1(self):
        counts = Counter(spec.y1_type for spec in roster(1))
        assert counts.most_common(1)[0][0] \
            is OutstationType.BACKUP_U_ONLY

    def test_type4_second_most_common_i_carrier(self):
        counts = Counter(spec.y1_type for spec in roster(1))
        non_backup = {kind: count for kind, count in counts.items()
                      if kind is not OutstationType.BACKUP_U_ONLY}
        top = max(non_backup, key=non_backup.get)
        assert top is OutstationType.I_ONLY_BOTH_SERVERS

    def test_primary_backup_servers_disjoint(self):
        for spec in OUTSTATIONS:
            assert spec.primary_server != spec.backup_server
            assert {spec.primary_server,
                    spec.backup_server} == set(spec.pair)
