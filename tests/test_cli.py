"""CLI tests: generate a pcap, analyze it back."""

import io
import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli")
    pcap = directory / "y1.pcap"
    out = io.StringIO()
    code = main(["generate", "--year", "1", "--scale", "0.005",
                 "--seed", "7", "--out", str(pcap)], out=out)
    assert code == 0
    return pcap, out.getvalue()


class TestGenerate:
    def test_writes_pcap_and_names(self, generated):
        pcap, output = generated
        assert pcap.exists() and pcap.stat().st_size > 1000
        names_path = pcap.with_suffix(".names.json")
        assert names_path.exists()
        names = json.loads(names_path.read_text())
        assert "C1" in names.values()
        assert "wrote" in output

    def test_pcap_is_readable(self, generated):
        from repro.netstack.pcap import read_pcap
        pcap, _ = generated
        records = read_pcap(pcap)
        assert len(records) > 100


class TestAnalyze:
    def run(self, generated, *reports):
        pcap, _ = generated
        out = io.StringIO()
        args = ["analyze", str(pcap),
                "--names", str(pcap.with_suffix(".names.json"))]
        if reports:
            args += ["--report", *reports]
        code = main(args, out=out)
        assert code == 0
        return out.getvalue()

    def test_default_reports(self, generated):
        text = self.run(generated)
        assert "TCP flows" in text
        assert "compliance" in text
        assert "typeIDs" in text

    def test_flows_report(self, generated):
        text = self.run(generated, "flows")
        assert "Short-lived flows" in text

    def test_compliance_report(self, generated):
        text = self.run(generated, "compliance")
        assert "legacy IEC 101" in text  # O37/O28 flagged

    def test_classify_report(self, generated):
        text = self.run(generated, "classify")
        assert "U-format only" in text

    def test_markov_report(self, generated):
        text = self.run(generated, "markov")
        assert "Nodes" in text

    def test_symbols_report(self, generated):
        text = self.run(generated, "symbols")
        assert "AGC-SP" in text

    def test_timing_report(self, generated):
        text = self.run(generated, "timing")
        assert "Session" in text

    def test_missing_pcap_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope.pcap")],
                 out=io.StringIO())

    def test_unknown_report_rejected(self, generated):
        pcap, _ = generated
        with pytest.raises(SystemExit):
            main(["analyze", str(pcap), "--report", "bogus"],
                 out=io.StringIO())


class TestFilter:
    def test_filter_narrows_analysis(self, generated):
        pcap, _ = generated
        out = io.StringIO()
        code = main(["analyze", str(pcap),
                     "--names", str(pcap.with_suffix(".names.json")),
                     "--filter", "host == O37",
                     "--report", "compliance"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "packets kept" in text
        assert "O37" in text
        # Only O37's frames remain: no other RTU shows in the table.
        assert "O28 " not in text

    def test_filter_that_matches_nothing(self, generated):
        pcap, _ = generated
        out = io.StringIO()
        code = main(["analyze", str(pcap),
                     "--filter", "tcp.dstport == 9999"], out=out)
        assert code == 1
        assert "no TCP/IPv4 packets" in out.getvalue()


class TestAttackCommand:
    def test_scan_mode(self, tmp_path):
        pcap = tmp_path / "attack.pcap"
        out = io.StringIO()
        code = main(["attack", "--mode", "scan", "--points", "4",
                     "--scan-range", "12", "--out", str(pcap)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "probes sent: 12" in text
        assert "IOAs discovered: 4" in text
        assert pcap.exists()

    def test_interrogation_mode(self, tmp_path):
        pcap = tmp_path / "attack.pcap"
        out = io.StringIO()
        code = main(["attack", "--mode", "interrogation",
                     "--points", "6", "--out", str(pcap)], out=out)
        assert code == 0
        assert "IOAs discovered: 6" in out.getvalue()

    def test_attack_capture_analyzable(self, tmp_path):
        pcap = tmp_path / "attack.pcap"
        main(["attack", "--mode", "scan", "--out", str(pcap)],
             out=io.StringIO())
        out = io.StringIO()
        code = main(["analyze", str(pcap),
                     "--names", str(pcap.with_suffix(".names.json")),
                     "--report", "typeids"], out=out)
        assert code == 0
        assert "I102" in out.getvalue()  # the read probes


class TestScenarioCommand:
    def test_list_names_every_family(self):
        out = io.StringIO()
        assert main(["scenario", "list"], out=out) == 0
        text = out.getvalue()
        for name in ("spoofed-interrogation", "rogue-master",
                     "value-injection", "command-flooding",
                     "switchover-abuse", "stale-data-masking"):
            assert name in text

    def test_emit_writes_capture_and_sidecars(self, tmp_path):
        pcap = tmp_path / "rogue.pcap"
        out = io.StringIO()
        code = main(["scenario", "emit", "rogue-master",
                     "--out", str(pcap), "--scale", "0.5"], out=out)
        assert code == 0
        assert pcap.exists()
        assert pcap.with_suffix(".names.json").exists()
        truth = json.loads(
            pcap.with_suffix(".truth.json").read_text())
        assert truth["scenario"] == "rogue-master"
        assert truth["attacker_endpoints"] == ["ATTACKER"]

    def test_emitted_capture_analyzable(self, tmp_path):
        pcap = tmp_path / "rogue.pcap"
        main(["scenario", "emit", "rogue-master", "--out", str(pcap),
              "--scale", "0.5"], out=io.StringIO())
        out = io.StringIO()
        code = main(["analyze", str(pcap),
                     "--names", str(pcap.with_suffix(".names.json")),
                     "--report", "typeids"], out=out)
        assert code == 0
        assert "I102" in out.getvalue()  # the rogue read probes


class TestBenchDetectCommand:
    def test_record_and_gate(self, tmp_path):
        path = tmp_path / "BENCH_detect.json"
        out = io.StringIO()
        code = main(["bench", "detect", "--quick",
                     "--out", str(path)], out=out)
        assert code == 0
        document = json.loads(path.read_text())
        assert len(document["modes"]["quick"]["results"]) >= 6
        out = io.StringIO()
        code = main(["bench", "detect", "--quick", "--check",
                     "--out", str(path)], out=out)
        assert code == 0
        assert "detection gate ok" in out.getvalue()


class TestHypothesesCommand:
    def test_runs_on_two_captures(self, generated, tmp_path):
        pcap_y1, _ = generated
        pcap_y2 = tmp_path / "y2.pcap"
        main(["generate", "--year", "2", "--scale", "0.005",
              "--seed", "7", "--out", str(pcap_y2)], out=io.StringIO())
        out = io.StringIO()
        code = main(["hypotheses", str(pcap_y1), str(pcap_y2),
                     "--names", str(pcap_y1.with_suffix(
                         ".names.json"))], out=out)
        assert code == 0
        text = out.getvalue()
        for hypothesis in ("H1", "H2", "H3", "H4", "H5"):
            assert hypothesis in text
        assert "rejected" in text  # H2/H3 at least


class TestJsonOutput:
    def test_json_document(self, generated):
        pcap, _ = generated
        out = io.StringIO()
        code = main(["analyze", str(pcap),
                     "--names", str(pcap.with_suffix(".names.json")),
                     "--report", "flows", "compliance", "typeids",
                     "classify",
                     "--json"], out=out)
        assert code == 0
        document = json.loads(out.getvalue())
        assert document["packets"] > 0
        assert document["flows"]["short_lived"] >= 0
        assert "O37" in document["compliance"]
        assert document["typeids"]["I36"]["count"] > 0
        assert "3" in document["outstation_types"]

    def test_json_timing_and_markov(self, generated):
        pcap, _ = generated
        out = io.StringIO()
        code = main(["analyze", str(pcap),
                     "--names", str(pcap.with_suffix(".names.json")),
                     "--report", "markov", "timing", "--json"], out=out)
        assert code == 0
        document = json.loads(out.getvalue())
        assert any(value["nodes"] >= 1
                   for value in document["markov"].values())
        assert document["timing"]
