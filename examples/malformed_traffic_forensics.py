#!/usr/bin/env python3
"""Forensics on non-compliant IEC 104 traffic (paper Section 6.1).

The paper found RTUs whose every packet was flagged malformed by
Wireshark: legacy IEC 101 field widths had survived a protocol upgrade.
This example rebuilds that investigation in miniature:

1. craft frames the way outstation O37 (2-octet IOA) and O53 (1-octet
   COT) emit them;
2. show the standard parser failing exactly like Wireshark did;
3. let the tolerant parser infer each link's profile;
4. print the Fig. 7-style field diff explaining the root cause.

Run:  python examples/malformed_traffic_forensics.py
"""

from repro.analysis import field_diffs, render_table
from repro.iec104 import (IFrame, LEGACY_COT_PROFILE, LEGACY_IOA_PROFILE,
                          ShortFloat, StrictParser, TolerantParser,
                          TypeID, measurement)


def craft(profile, ioa, value):
    asdu = measurement(TypeID.M_ME_NC_1, ioa, ShortFloat(value=value))
    return IFrame(asdu=asdu).encode(profile)


def main() -> None:
    traffic = {
        "O37": [craft(LEGACY_IOA_PROFILE, ioa, 130.0 + i)
                for i, ioa in enumerate((2001, 2002, 2003))],
        "O53": [craft(LEGACY_COT_PROFILE, ioa, 59.9 + i / 100)
                for i, ioa in enumerate((3001, 3002, 3003))],
        "O1":  [craft(LEGACY_COT_PROFILE.__class__(), ioa, 75.0)
                for ioa in (4001, 4002)],  # standard profile
    }

    print("Step 1: a Wireshark-like standard-compliant parse")
    strict = StrictParser()
    rows = []
    for host, frames in traffic.items():
        failures = sum(0 if strict.parse_frame(f).ok else 1
                       for f in frames)
        rows.append((host, len(frames), failures,
                     f"{100 * failures / len(frames):.0f}%"))
    print(render_table(["RTU", "frames", "malformed", "rate"], rows))
    print()

    print("Step 2: the tolerant parser infers each link's profile")
    tolerant = TolerantParser()
    for host, frames in traffic.items():
        for frame in frames:
            result = tolerant.parse_frame(frame, link_key=host)
            assert result.ok, f"{host}: {result.error}"
    rows = []
    for host in traffic:
        profile = tolerant.profile_for(host)
        rows.append((host, profile.describe()))
    print(render_table(["RTU", "inferred link profile"], rows))
    print()

    print("Step 3: field-level diagnosis (paper Fig. 7)")
    for host in ("O37", "O53"):
        profile = tolerant.profile_for(host)
        print(f"  {host}:")
        for diff in field_diffs(profile):
            print(f"    - {diff}")
    print()

    print("Step 4: the decoded measurements are sane telemetry")
    rows = []
    for host, frames in traffic.items():
        for frame in frames:
            result = tolerant.parse_frame(frame, link_key=host)
            obj = result.apdu.asdu.objects[0]
            rows.append((host, obj.address,
                         f"{obj.element.value:.2f}"))
    print(render_table(["RTU", "IOA", "value"], rows))
    print()

    print("Step 5: how this happens — a 101->104 gateway demo")
    from repro.iec104 import (GatewayMode, Iec101To104Gateway,
                              LinkControl, LinkFunction,
                              encode_variable)

    serial_asdu = measurement(TypeID.M_ME_NC_1, 700,
                              ShortFloat(value=59.96),
                              common_address=3)
    serial_frame = encode_variable(
        LinkControl(function=LinkFunction.USER_DATA_CONFIRMED,
                    prm=True), address=17, asdu=serial_asdu)
    print(f"  serial RTU emits an FT1.2 frame "
          f"({len(serial_frame)} octets, IEC 101 field widths)")
    for mode in (GatewayMode.REWRITE, GatewayMode.PASSTHROUGH):
        gateway = Iec101To104Gateway(mode=mode)
        tcp_frame = gateway.from_serial(serial_frame)[0]
        verdict = ("standard-compliant"
                   if StrictParser().parse_frame(tcp_frame).ok
                   else "flagged malformed by standard parsers")
        print(f"  gateway in {mode.name:12s} mode -> 104 frame is "
              f"{verdict}")
    print("\nConclusion: the 'malformed' packets were valid IEC 101-"
          "width telemetry\ncarried over TCP/IP — a passthrough "
          "gateway configuration kept from the\nserial era, exactly "
          "what the tolerant parser's profile inference reveals.")


if __name__ == "__main__":
    main()
