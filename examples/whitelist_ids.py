#!/usr/bin/env python3
"""A cyber-physical whitelist IDS — the paper's future-work proposal.

The paper closes by proposing whitelists that correlate cyber
measurements (Markov/N-gram models of APDU sequences) with physical
ones (time-series behaviour) to flag attacks like Industroyer, which
abused IEC 104 interrogation and command messages in the 2016 Ukraine
blackout.

This example builds that detector on the synthetic network:

1. train per-connection bigram models on a clean capture;
2. replay (a) clean traffic and (b) an Industroyer-style sequence —
   STARTDT, a global interrogation sweep, then unsolicited breaker
   commands — and score both;
3. show the physical layer catching what the cyber layer misses:
   a breaker opening with no corresponding AGC context.

Run:  python examples/whitelist_ids.py
"""

import os

from repro.analysis import NgramModel, extract_apdus, tokenize
from repro.datasets import CaptureConfig, generate_capture
from repro.grid import ActivationSignature, BREAKER_OPEN

#: CI knob: multiplies the capture time scale (0.25 = 4x faster run).
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def train_model(extraction) -> NgramModel:
    sequences = [tokenize(events)
                 for events in extraction.by_connection().values()
                 if len(events) >= 10]
    return NgramModel(order=2).fit(sequences)


def unseen_fraction(model: NgramModel, sequence: list[str]) -> float:
    """Fraction of transitions the whitelist has never observed.

    This is the whitelist decision rule: an MLE probability of zero
    means the bigram never occurred in training.
    """
    unseen = 0
    for prev, token in zip(sequence, sequence[1:]):
        if model.probability(token, [prev]) == 0.0:
            unseen += 1
    return unseen / max(1, len(sequence) - 1)


def main() -> None:
    print("Training on a clean Year-1 capture...")
    capture = generate_capture(1, CaptureConfig(time_scale=0.02 * SCALE))
    extraction = extract_apdus(capture)
    model = train_model(extraction)
    print(f"  vocabulary: {sorted(model.vocabulary - {'<s>', '</s>'})}\n")

    clean = ["I36", "I36", "S", "I36", "I13", "S", "I36", "S"]
    industroyer = (["U1", "U2", "I100"]            # reconnaissance
                   + ["I45"] * 6                    # single commands
                   + ["I46"] * 6)                   # double commands

    print("Cyber layer: fraction of never-seen transitions")
    for label, sequence in (("normal reporting", clean),
                            ("Industroyer-style sweep", industroyer)):
        fraction = unseen_fraction(model, sequence)
        flag = "ALERT" if fraction > 0.3 else "ok"
        print(f"  {label:28s} unseen transitions = "
              f"{100 * fraction:5.1f}%   [{flag}]")
    print()

    print("Physical layer: breaker opens while the unit is generating")
    signature = ActivationSignature()
    # Normal operation: at nominal voltage, breaker closed, delivering.
    signature.observe(0.0, 130.0, 2, 80.0)
    signature.observe(10.0, 130.0, 2, 82.0)
    # The malicious double command opens the breaker; voltage holds but
    # power must collapse — here telemetry still reports generation,
    # which is physically impossible and trips the anomaly rule.
    event = signature.observe(20.0, 130.0, BREAKER_OPEN, 81.0)
    print(f"  t=20s breaker open + 81 MW reported -> "
          f"{'ANOMALY: ' + event.anomaly if event.is_anomaly else 'ok'}")
    print("\nCombined verdict: the interrogation sweep is cyber-unusual "
          "AND the\ncommanded breaker state contradicts physics — "
          "exactly the correlation\nthe paper proposes for grid SOCs.")


if __name__ == "__main__":
    main()
