#!/usr/bin/env python3
"""The full operator report: everything the paper learned, in one run.

Generates both capture years and produces the report an analyst would
hand the balancing authority: hypothesis verdicts, topology changes,
compliance findings, misbehaving backup connections with their
timelines, behaviour classification, and the sessions whose behaviour
drifted between capture days.

Run:  python examples/operator_report.py          (about a minute)
"""

import os

from repro.analysis import (analyze_compliance, build_timelines,
                            classify_all, evaluate_all, extract_apdus,
                            ObservedTopology, diff_topologies,
                            rejected_backup_timelines, render_table,
                            session_drift, summarize_drift,
                            switchover_timelines, type_distribution)
from repro.datasets import CaptureConfig, generate_capture, spec_by_name

#: CI knob: multiplies the capture time scale (0.25 = 4x faster run).
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def heading(text: str) -> None:
    print(f"\n{'=' * 64}\n{text}\n{'=' * 64}")


def main() -> None:
    config = CaptureConfig(time_scale=0.03 * SCALE)
    print("Generating Year 1 and Year 2 captures (3% time scale)...")
    y1 = generate_capture(1, config)
    y2 = generate_capture(2, config)
    names = dict(y1.host_names())
    names.update(y2.host_names())
    y1_events = extract_apdus(y1)
    y2_events = extract_apdus(y2)

    heading("1. Hypotheses (paper Section 5)")
    for result in evaluate_all(y1, y1_events, y2_events):
        print(result)

    heading("2. Topology changes Y1 -> Y2 (Fig. 6 / Table 2)")
    diff = diff_topologies(ObservedTopology.from_extraction(y1_events),
                           ObservedTopology.from_extraction(y2_events))
    rows = [(name, "added", spec_by_name(name).change_reason)
            for name in diff.added_outstations]
    rows += [(name, "removed", spec_by_name(name).change_reason)
             for name in diff.removed_outstations]
    print(render_table(["Outstation", "Change", "Reason"], rows))
    print(f"\n{len(diff.stable_outstations)} outstations unchanged "
          f"({100 * diff.outstation_stability:.0f}% of the fleet)")

    heading("3. Compliance (paper §6.1)")
    for year, capture in (("Y1", y1), ("Y2", y2)):
        report = analyze_compliance(capture)
        for host in report.non_compliant_hosts():
            print(f"  {year}: {host.host} — {host.explanation} "
                  f"({host.frames} frames, all decoded tolerantly)")

    heading("4. Misbehaving backup connections (Fig. 9)")
    timelines = build_timelines(y1, y1_events)
    for timeline in rejected_backup_timelines(timelines)[:4]:
        print(timeline.render(limit=4))

    heading("5. Switchovers observed in-capture (Fig. 16)")
    for timeline in switchover_timelines(timelines):
        print(timeline.render(limit=6))

    heading("6. Outstation behaviour classes (Table 6 / Fig. 17)")
    distribution = type_distribution(classify_all(y1_events))
    rows = [(kind, description, count, f"{pct:.1f}%")
            for kind, description, count, pct in distribution.rows()]
    print(render_table(["Type", "Description", "Count", "Share"], rows))

    heading("7. Day-over-day behavioural drift (Hypothesis 1)")
    summary = summarize_drift(session_drift(y1_events))
    print(f"multi-day sessions: {summary.multi_day_sessions}; stable: "
          f"{summary.stable_sessions} "
          f"({100 * summary.stability_fraction:.0f}%)")
    for session in summary.drifting_sessions[:6]:
        print(f"  drifting: {session[0]} -> {session[1]}")


if __name__ == "__main__":
    main()
