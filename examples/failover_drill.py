#!/usr/bin/env python3
"""A control-center failover drill plus disturbance-record retrieval.

Exercises two library features beyond basic telemetry:

1. the Fig. 4 redundancy scheme: an outstation served by two control
   servers, keep-alives on the standby link, automatic promotion with
   interrogation when the primary dies;
2. IEC 104 file transfer (typeIDs 120-127): after the disturbance, the
   new primary pulls the RTU's COMTRADE-style disturbance record.

Run:  python examples/failover_drill.py
"""

from repro.iec104 import (MasterEndpoint, OutstationEndpoint,
                          PipeTransport, RedundancyGroup, ShortFloat,
                          TypeID)
from repro.iec104.file_transfer import FileClient, FileServer, StoredFile
from repro.iec104.redundancy import LinkRole


def main() -> None:
    # One RTU, reachable through two independent pipes (two servers).
    masters, outstations, transports = {}, {}, {}
    for name in ("C1", "C2"):
        a, b = PipeTransport.pair()
        masters[name] = MasterEndpoint(a)
        outstation = OutstationEndpoint(b)
        outstation.define_point(2001, TypeID.M_ME_NC_1,
                                ShortFloat(value=59.99))
        outstation.define_point(2002, TypeID.M_ME_NC_1,
                                ShortFloat(value=131.4))
        server = FileServer(outstation)
        server.add_file(StoredFile(
            name=11, data=b"COMTRADE disturbance record " * 40))
        outstations[name] = outstation
        transports[name] = (a, b)

    def pump() -> None:
        while sum(a.pump() + b.pump()
                  for a, b in transports.values()):
            pass

    print("--- redundancy group up ---")
    group = RedundancyGroup(masters, preferred="C1",
                            keepalive_period=10.0)
    pump()
    print(f"active link: {group.active}; "
          f"C2 role: {group.role_of('C2').value}")
    print(f"interrogation delivered "
          f"{len(masters['C1'].measurements)} points to C1")

    print("\n--- standby keep-alives ---")
    for now in (10.0, 20.0, 30.0):
        group.tick(now)
        pump()
    print(f"C2 sent {masters['C2'].stats.sent_u} TESTFR acts, "
          f"received {masters['C2'].stats.received_u} confirmations")

    print("\n--- primary link fails ---")
    group.report_transport_loss("C1")
    pump()
    print(f"active link: {group.active} "
          f"(reason: {group.history[-1].reason})")
    print(f"C2 interrogated and received "
          f"{len(masters['C2'].measurements)} points")

    print("\n--- disturbance record retrieval over the new primary ---")
    client = FileClient(masters["C2"])
    client.request_directory()
    pump()
    for entry in client.directory:
        print(f"  file {entry.file_name}: {entry.file_length} octets")
    client.request_file(11)
    pump()
    received = client.received[0]
    print(f"  transferred {len(received.data)} octets, "
          f"checksum {'OK' if received.checksum_ok else 'BAD'}")

    print("\n--- history ---")
    for event in group.history:
        print(f"  t={event.time:5.1f}s {event.from_link} -> "
              f"{event.to_link}: {event.reason}")


if __name__ == "__main__":
    main()
