#!/usr/bin/env python3
"""Physical-world events seen through the network tap (paper §6.4).

Reproduces the paper's deep-packet-inspection findings on the synthetic
capture: the unmet-load event (Figs. 18-19), the generator
synchronization sequence (Fig. 20), and the Fig. 21 behaviour
signature verified against the DPI-extracted series.

Run:  python examples/agc_event_analysis.py
"""

import os

from repro.analysis import (agc_command_series, extract_apdus,
                            interesting_events, render_series,
                            station_series)
from repro.datasets import CaptureConfig, SYNC_GENERATOR, generate_capture
from repro.grid import ActivationSignature

#: CI knob: multiplies the capture time scale (0.25 = 4x faster run).
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    print("Generating the Year-1 capture (5% time scale)...")
    capture = generate_capture(1, CaptureConfig(time_scale=0.05 * SCALE))
    extraction = extract_apdus(capture)
    print(f"  {len(extraction.events)} APDUs decoded\n")

    # --- normalized-variance screening --------------------------------
    print("Points changing more than usual (normalized variance):")
    for event in interesting_events(extraction, top=5):
        print(f"  {event.key.station} IOA {event.key.ioa} "
              f"[{event.symbol}] nv={event.normalized_variance:.3f} "
              f"({event.samples} samples)")
    print()

    # --- AGC commands and the generators' response (Fig. 19) ----------
    commands = agc_command_series(extraction)
    for station, series in sorted(commands.items())[:1]:
        print(render_series(series.times, series.values,
                            title=f"AGC set points sent to {station} "
                                  "(I50 commands, Fig. 19 bottom)"))
        power = station_series(extraction, station, symbol="P")
        if power:
            response = power[0]
            print(render_series(response.times, response.values,
                                title=f"{station} active power response "
                                      "(Fig. 19 top)"))
    print()

    # --- generator synchronization (Fig. 20) --------------------------
    # Identify the activation series from the data shapes, as the
    # paper's authors did by inspection: the terminal voltage is the
    # ramp that settles at the ~130 kV nominal level; the breaker is
    # the double-point status that steps 0 -> 2; the unit's power is a
    # ramp from zero that is neither of those.
    station = SYNC_GENERATOR
    everything = station_series(extraction, station, min_samples=1)
    ramps = [s for s in everything
             if min(s.values) < 5.0 and max(s.values) > 5.0]
    voltage = min((s for s in ramps if max(s.values) > 100.0),
                  key=lambda s: abs(s.values[-1] - 130.0), default=None)
    # The breaker only shows its 0 -> 2 (closed) transition on the
    # wire; the disconnector status hops between 1 and 2 instead.
    breaker = max((s for s in everything
                   if {int(v) for v in s.values} <= {0, 2}
                   and 2 in {int(v) for v in s.values}),
                  key=len, default=None)
    power = max((s for s in ramps if s is not voltage
                 and s is not breaker), key=lambda s: max(s.values),
                default=None)
    if voltage is not None:
        print(render_series(voltage.times, voltage.values,
                            title=f"{station} terminal voltage: the "
                                  "0 -> nominal jump (Fig. 20 top)"))

    # --- Fig. 21 signature over the DPI series -------------------------
    if voltage and breaker is not None and power is not None:
        samples = {}
        for kind, series in (("U", voltage), ("P", power),
                             ("B", breaker)):
            for time, value in zip(series.times, series.values):
                samples.setdefault(round(time), {})[kind] = value
        signature = ActivationSignature()
        last = {"U": 0.0, "P": 0.0, "B": 0}
        for time in sorted(samples):
            last.update(samples[time])
            signature.observe(float(time), last["U"], int(last["B"]),
                              last["P"])
        print("\nFig. 21 signature state machine over the extracted "
              "series:")
        for event in signature.events:
            marker = (f"ANOMALY ({event.anomaly}) "
                      if event.is_anomaly else "")
            print(f"  t={event.time:8.1f}s  {marker}{event.state.value}")
        verdict = ("matches the expected activation signature"
                   if signature.completed_activation
                   else "did NOT complete the expected signature")
        print(f"  -> the {station} activation {verdict}; "
              f"{len(signature.anomalies)} anomalies.")


if __name__ == "__main__":
    main()
