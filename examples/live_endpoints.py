#!/usr/bin/env python3
"""Drive the protocol stack directly: a master talking to an RTU.

Everything in the measurement pipeline builds on a real IEC 104
implementation. This example uses it the way lib60870 users would:
wire a controlling master to an outstation, start data transfer,
interrogate the point database, receive spontaneous reports, and issue
an AGC set-point command — including across a *legacy* RTU whose frames
a standard parser would reject (paper §6.1).

The second half feeds the same live traffic — this time over a real
kernel socketpair — into the streaming analysis engine: a
:class:`TransportTap` copies every byte each endpoint consumes into a
:class:`StreamPipeline`, whose online whitelist detector learns the
normal traffic and then flags a never-seen AGC command in real time.

Run:  python examples/live_endpoints.py
"""

from repro.iec104 import (Cause, LEGACY_COT_PROFILE, SetpointFloat,
                          ShortFloat, SinglePoint, TypeID, connect_pair)
from repro.iec104.socket_transport import socketpair_endpoints
from repro.stream import (OnlineChains, OnlineCombinedDetector,
                          StreamPipeline, TransportTap)


def banner(text: str) -> None:
    print(f"\n--- {text} ---")


def main() -> None:
    # The outstation encodes with IEC 101 legacy field widths (1-octet
    # COT) — the master's tolerant parser absorbs it transparently.
    master, outstation, pump = connect_pair(
        outstation_profile=LEGACY_COT_PROFILE)

    banner("point database")
    outstation.define_point(2001, TypeID.M_ME_NC_1,
                            ShortFloat(value=59.98))   # frequency
    outstation.define_point(2002, TypeID.M_ME_NC_1,
                            ShortFloat(value=131.2))   # voltage
    outstation.define_point(3001, TypeID.M_SP_NA_1,
                            SinglePoint(value=True))   # alarm contact
    print(f"outstation exposes {outstation.point_count} points "
          f"({outstation.profile.describe()})")

    banner("STARTDT")
    master.start_data_transfer()
    pump()
    print(f"data transfer running: master={master.started}, "
          f"outstation={outstation.started}")

    banner("general interrogation (I100)")
    master.interrogate()
    pump()
    for measurement in master.measurements:
        print(f"  IOA {measurement.ioa}: "
              f"{measurement.element!r} ({measurement.cause.name})")
    print(f"interrogation lifecycle: "
          f"{[c.name for c in master.interrogation_progress]}")

    banner("spontaneous reporting")
    outstation.update_point(2001, ShortFloat(value=60.04))
    pump()
    latest = master.measurements[-1]
    assert latest.cause is Cause.SPONTANEOUS
    print(f"  frequency update delivered: {latest.element.value:.2f} Hz")

    banner("AGC set point (I50)")
    commands = []
    outstation.on_command = commands.append
    master.send_command(TypeID.C_SE_NC_1, 100,
                        SetpointFloat(value=245.0))
    pump()
    print(f"  RTU received set point "
          f"{commands[0].objects[0].element.value:.1f} MW and "
          f"confirmed it")

    banner("statistics")
    print(f"  master:     {master.stats}")
    print(f"  outstation: {outstation.stats}")

    streaming_verdicts()


def streaming_verdicts() -> None:
    """Live whitelist verdicts over a tapped kernel socketpair."""
    banner("streaming pipeline on a live socketpair")
    master, outstation, pump = socketpair_endpoints()
    tap = TransportTap()
    # Label each direction by who *sent* the bytes: chunks arriving at
    # the master's transport came from the RTU, and vice versa.
    tap.tap(master.transport, src="O1", dst="C1")
    tap.tap(outstation.transport, src="C1", dst="O1")
    detector = OnlineCombinedDetector()
    chains = OnlineChains()
    pipeline = StreamPipeline(tap, analyzers=[chains, detector])

    outstation.define_point(2001, TypeID.M_ME_NC_1,
                            ShortFloat(value=59.98))
    master.start_data_transfer()
    pump()
    master.interrogate()
    pump()
    pipeline.run_until_exhausted()
    print(f"  learned from live traffic: "
          f"{len(detector.cyber.learned_connections)} connection(s), "
          f"{pipeline.events_dispatched} APDUs, mode="
          f"{detector.mode.value}")

    detector.switch_to_detect()
    master.interrogate()
    pump()
    pipeline.run_until_exhausted()
    print(f"  routine interrogation: {len(detector.alerts())} alerts")

    master.send_command(TypeID.C_SE_NC_1, 100,
                        SetpointFloat(value=245.0))
    pump()
    pipeline.run_until_exhausted()
    for alert in detector.alerts():
        unknown = ",".join(alert.cyber.unknown_tokens)
        print(f"  ALERT {alert.cyber.connection}: never-seen tokens "
              f"[{unknown}], {len(alert.physical)} physical "
              f"violation(s)")
    for connection, (nodes, edges) in chains.sizes().items():
        print(f"  live Markov chain {connection}: {nodes} nodes, "
              f"{edges} edges")


if __name__ == "__main__":
    main()
