#!/usr/bin/env python3
"""Quickstart: generate a synthetic bulk-power capture and analyze it.

This walks the full pipeline of the paper in one page:

1. simulate the federated SCADA network (Year 1, scaled down),
2. export / re-import real pcap bytes,
3. decode IEC 104 with the tolerant parser,
4. print the headline results: flow summary (Table 3), non-compliant
   RTUs (Section 6.1) and the ASDU typeID distribution (Table 7).

Run:  python examples/quickstart.py
"""

import io
import os

from repro.analysis import (FlowAnalysis, analyze_compliance,
                            extract_apdus, render_table,
                            type_id_distribution)
from repro.datasets import CaptureConfig, generate_capture
from repro.netstack import CapturedPacket, PcapReader

#: CI knob: multiplies the capture time scale (0.25 = 4x faster run).
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    print("Generating the Year-1 synthetic capture (2% time scale)...")
    capture = generate_capture(1, CaptureConfig(time_scale=0.02 * SCALE))
    names = capture.host_names()
    print(f"  {len(capture.packets)} packets across "
          f"{len(capture.windows)} capture windows "
          f"({capture.duration:.0f} s of traffic)\n")

    # The capture round-trips through real pcap bytes, exactly as the
    # paper's tooling consumed its tap output.
    buffer = io.BytesIO()
    capture.to_pcap(buffer)
    buffer.seek(0)
    packets = [CapturedPacket.decode(record.time_us, record.data)
               for record in PcapReader(buffer)]
    print(f"pcap round-trip: {len(packets)} frames re-imported "
          f"({len(buffer.getvalue())} bytes on disk)\n")

    # --- Section 6.2: TCP flows --------------------------------------
    from repro.analysis import PacketCapture
    reimported = PacketCapture(packets=packets, names=names)
    flows = FlowAnalysis.from_packets("Y1", reimported)
    print(render_table(["Flow class", "Count (proportion)"],
                       flows.summary().rows(),
                       title="TCP flows (paper Table 3 shape)"))
    print()

    # --- Section 6.1: compliance -------------------------------------
    report = analyze_compliance(reimported)
    rows = [(host.host, f"{100 * host.strict_malformed_fraction:.0f}%",
             host.explanation)
            for host in report.non_compliant_hosts()]
    print(render_table(["RTU", "flagged by standard parser", "why"],
                       rows, title="Non-compliant outstations (§6.1)"))
    print()

    # --- Section 6.4: typeID distribution ----------------------------
    extraction = extract_apdus(reimported)
    distribution = type_id_distribution(extraction)
    rows = [(token, count, f"{pct:.2f}%")
            for token, count, pct in distribution.rows()[:8]]
    print(render_table(["ASDU typeID", "count", "share"],
                       rows, title="TypeID distribution (Table 7 shape)"))
    print(f"\nI36+I13 carry {distribution.top_two_share():.1f}% of all "
          f"ASDUs (paper: 97%)")


if __name__ == "__main__":
    main()
