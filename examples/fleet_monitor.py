#!/usr/bin/env python3
"""Fleet monitoring: one merged capture, N per-link pipelines.

The paper's vantage is a control center watching ~27 substation links
at once. This example reproduces that vantage end to end:

1. generate a synthetic Year-1 capture and write it as one merged
   pcapng file (the shape a span-port capture box produces);
2. tail the file with :class:`PcapngTailSource`, split it into
   per-link substreams with :class:`LinkDemux`, and supervise one
   :class:`StreamPipeline` per discovered link under a
   :class:`FleetSupervisor`;
3. print the fleet dashboard (per-link health, totals, top anomaly
   links) as text and as one machine-readable JSON line.

The CLI equivalent of step 2-3 is:

    repro monitor merged.pcapng --demux --once
    repro monitor --link C1-O1=c1-o1.pcap --link C1-O2=c1-o2.pcap ...

Run:  python examples/fleet_monitor.py
"""

import json
import os
import tempfile
from pathlib import Path

from repro.datasets import CaptureConfig, generate_capture
from repro.netstack import PcapRecord, write_pcapng
from repro.stream import (EvictionPolicy, FleetSupervisor, LinkDemux,
                          LiveFlowTable, OnlineChains,
                          OnlineCombinedDetector, PcapngTailSource,
                          RollingSessionWindows, StreamPipeline,
                          render_json, render_text)

#: CI knob: multiplies the capture time scale (0.25 = 4x faster run).
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def write_merged_capture(path: Path) -> dict:
    """One pcapng holding every link's traffic, interleaved by time."""
    capture = generate_capture(1, CaptureConfig(time_scale=0.005 * SCALE))
    records = [PcapRecord(time_us=packet.time_us, data=packet.encode())
               for packet in capture.packets]
    count = write_pcapng(path, records)
    print(f"  {count} frames -> {path.name} "
          f"({path.stat().st_size} bytes)")
    return capture.host_names()


def make_pipeline(name: str, source) -> StreamPipeline:
    """The per-link pipeline the supervisor builds on link discovery."""
    return StreamPipeline(
        source,
        analyzers=[LiveFlowTable(), OnlineChains(),
                   RollingSessionWindows(), OnlineCombinedDetector()],
        eviction=EvictionPolicy(), link=name)


def main() -> None:
    print("Writing the merged fleet capture...")
    with tempfile.TemporaryDirectory() as tmp:
        merged = Path(tmp) / "merged.pcapng"
        names = write_merged_capture(merged)

        source = PcapngTailSource(merged)
        demux = LinkDemux(source, names=names)
        fleet = FleetSupervisor(demux=demux,
                                pipeline_factory=make_pipeline)
        moved = fleet.run_until_exhausted()
        source.close()

    print(f"\nSupervised {fleet.link_count} links "
          f"({moved} items moved through the fleet):\n")
    snapshot = fleet.snapshot()
    print(render_text(snapshot))

    print("\nThe same snapshot as one JSON line (schema "
          f"v{snapshot.to_json()['schema']}, for jq / dashboards):")
    line = render_json(snapshot)
    print(f"  {line[:72]}...")

    document = json.loads(line)
    busiest = max(document["links"].values(), key=lambda l: l["packets"])
    print(f"\nBusiest link: {busiest['link']} "
          f"({busiest['packets']} packets, {busiest['events']} events)")


if __name__ == "__main__":
    main()
