"""Legacy setup shim: this offline environment lacks the `wheel` package,
so pip must use the setup.py develop path for editable installs."""
from setuptools import setup

setup()
