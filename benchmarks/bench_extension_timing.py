"""Extension: bandwidth and timing characteristics (Hypothesis 1).

The paper frames SCADA traffic as stable, machine-paced and tiny by IT
standards. This bench quantifies that on the synthetic Y1 capture:
per-session rates, inter-arrival regularity, and detected periods.
"""

from _common import record, run_once

from repro.analysis import render_table, timing_profiles


def test_extension_timing(benchmark, y1_extraction):
    def profile():
        return timing_profiles(y1_extraction, min_packets=10)

    profiles = run_once(benchmark, profile)

    keepalives = [p for p in profiles
                  if p.stats.mean > 20.0 and p.stats.is_machine_paced]
    periodic = [p for p in profiles if p.periodicity.is_periodic]
    rows = []
    for p in sorted(profiles, key=lambda p: -p.stats.count)[:15]:
        rows.append((f"{p.session[0]}->{p.session[1]}", p.stats.count,
                     f"{p.stats.mean:.2f}s", f"{p.stats.cv:.2f}",
                     (f"{p.periodicity.period:.0f}s"
                      if p.periodicity.is_periodic else "-"),
                     f"{p.mean_rate_bps:.0f}"))
    text = render_table(
        ["Session", "Packets", "Mean gap", "CV", "Period", "bps"],
        rows, title="Extension — session timing profiles (top 15)")
    text += (f"\n\nsessions profiled: {len(profiles)}; "
             f"machine-paced keep-alive sessions: {len(keepalives)}; "
             f"sessions with detected periodicity: {len(periodic)}")
    record("extension_timing", text)

    # Hypothesis-1 facts: keep-alive links tick like clockwork at the
    # configured ~30 s period...
    assert keepalives
    assert any(p.periodicity.is_periodic
               and 20.0 <= (p.periodicity.period or 0) <= 40.0
               for p in keepalives)
    # ...and no session comes anywhere near typical IT bandwidths.
    assert all(p.mean_rate_bps < 1e6 for p in profiles)
