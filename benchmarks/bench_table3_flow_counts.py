"""Table 3: short-lived vs long-lived TCP flow counts, both years.

Paper: Y1 74.4% short-lived (99.8% of them sub-second), Y2 93.8%
short-lived. The shape to hold: short-lived flows dominate both years,
almost all of them sub-second, and the long-lived share collapses from
Y1 to Y2.
"""

from _common import record, run_once

from repro.analysis import FlowAnalysis, render_table


def test_table3_flow_counts(benchmark, y1_capture, y2_capture):
    def analyze():
        summaries = {}
        for label, capture in (("Y1", y1_capture), ("Y2", y2_capture)):
            analysis = FlowAnalysis.from_packets(
                label, capture.packets, names=capture.host_names())
            summaries[label] = analysis.summary()
        return summaries

    summaries = run_once(benchmark, analyze)

    y1_rows = dict(summaries["Y1"].rows())
    rows = [(label, y1_rows[label], dict(summaries["Y2"].rows())[label])
            for label in y1_rows]
    record("table3_flow_counts", render_table(
        ["Flow class", "Y1", "Y2"], rows,
        title=f"Table 3 — TCP flows (paper: Y1 74.4%/99.8% sub-second, "
              f"Y2 93.8% short-lived)"))

    y1, y2 = summaries["Y1"], summaries["Y2"]
    assert y1.short_fraction > 0.5 and y2.short_fraction > 0.5
    assert y1.sub_second_fraction_of_short > 0.9
    assert y2.sub_second_fraction_of_short > 0.8
    # Long-lived count collapses between years (paper: 10898 -> 560).
    assert y2.long_lived < 0.5 * y1.long_lived
    # Y2 is more short-dominated than Y1 (paper: 74.4% -> 93.8%). At
    # small time scales the fixed per-window connection setup washes
    # this out, so allow slack; run with REPRO_BENCH_SCALE=0.1 or more
    # to see the paper's gap open up.
    assert y2.short_fraction > y1.short_fraction - 0.05
