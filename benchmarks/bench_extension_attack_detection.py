"""Extension: end-to-end attack detection.

Train the whitelist IDS on the clean Y1 capture, then score the
registered ``rogue-master`` scenario from the labeled corpus
(``repro.scenarios``): the ground-truth sidecar names the attacker
endpoint, so the malicious connection is selected by label instead of
by construction.  Measured: detection of the attack connection and
the false-positive rate on the benign connections (both the Y1
connections and the scenario's own benign backbone).
"""

from _common import record, run_once

from repro.analysis import PacketCapture, render_table, tokenize
from repro.analysis.apdu_stream import extract_apdus
from repro.analysis.labels import involves_endpoints
from repro.analysis.whitelist import CyberWhitelist
from repro.scenarios import build_scenario


def test_extension_attack_detection(benchmark, y1_capture,
                                    y1_extraction):
    def evaluate():
        # Global whitelist learned from the clean capture.
        whitelist = CyberWhitelist(per_connection=False)
        for events in y1_extraction.by_connection().values():
            whitelist.fit_sequence(tokenize(events))

        # The attack: the registered Industroyer-style scenario,
        # decoded through the same extraction path as the capture.
        run = build_scenario("rogue-master", scale=0.5)
        capture = PacketCapture(packets=list(run.packets),
                                names=run.names)
        by_connection = extract_apdus(capture).by_connection()

        # Score every benign connection and the attack connection —
        # the sidecar's attacker endpoints pick the latter out.
        scores = {}
        for connection, events in sorted(
                y1_extraction.by_connection().items()):
            if len(events) < 4:
                continue
            scores[connection] = whitelist.score(
                tokenize(events)).unseen_fraction
        attack_scores = {}
        for connection, events in sorted(by_connection.items()):
            fraction = whitelist.score(
                tokenize(events)).unseen_fraction
            if involves_endpoints(connection,
                                  run.truth.attacker_endpoints):
                attack_scores[connection] = fraction
            elif len(events) >= 4:
                scores[connection] = fraction
        return scores, attack_scores

    scores, attack_scores = run_once(benchmark, evaluate)

    benign = sorted(scores.values())
    false_positives = sum(1 for score in scores.values()
                          if score > 0.2)
    rows = [
        ("benign connections scored", len(scores)),
        ("benign max unseen fraction", f"{100 * max(benign):.1f}%"),
        ("benign false positives (>20% unseen)", false_positives),
    ]
    for connection, score in sorted(attack_scores.items()):
        rows.append((f"attack connection "
                     f"{connection[0]}-{connection[1]}",
                     f"{100 * score:.1f}% unseen"))
    record("extension_attack_detection", render_table(
        ["Quantity", "Value"], rows,
        title="Extension — whitelist IDS vs registered rogue-master "
              "scenario"))

    # Near-perfect separation on this corpus: benign connections sit
    # at (or within noise of) 0% unseen, the attack connection far
    # above any plausible threshold.
    assert attack_scores, "sidecar labeled no attack connection"
    assert max(benign) <= 0.05
    assert false_positives == 0
    assert all(score > 0.5 for score in attack_scores.values())
