"""Extension: end-to-end attack detection.

Train the whitelist IDS on the clean Y1 capture, then score a mixed
capture: Y1 traffic plus an injected Industroyer-style attack against
a synthetic RTU. Measured: detection of the attack connection and the
false-positive rate on the benign connections.
"""

from _common import record, run_once

from repro.analysis import render_table, tokenize
from repro.analysis.whitelist import CyberWhitelist
from repro.analysis.apdu_stream import extract_apdus
from repro.iec104.constants import TypeID
from repro.simnet.attacker import ReconnaissanceMode, run_attack
from repro.simnet.behaviors import (OutstationBehavior, OutstationType,
                                    PointConfig)


def test_extension_attack_detection(benchmark, y1_capture,
                                    y1_extraction):
    def evaluate():
        # Global whitelist learned from the clean capture.
        whitelist = CyberWhitelist(per_connection=False)
        for events in y1_extraction.by_connection().values():
            whitelist.fit_sequence(tokenize(events))

        # The attack, generated separately and decoded the same way.
        points = [PointConfig(ioa=2001 + i, type_id=TypeID.M_ME_NC_1,
                              symbol="P", source=lambda _t: 100.0,
                              threshold=1e9) for i in range(6)]
        victim = OutstationBehavior(
            name="O99", substation="S99",
            outstation_type=OutstationType.IDEAL, points=points)
        attack = run_attack(victim,
                            ReconnaissanceMode.ITERATIVE_SCAN,
                            scan_range=(2001, 2040))
        attack_events = extract_apdus(attack)

        # Score every benign connection and the attack connection.
        scores = {}
        for connection, events in sorted(
                y1_extraction.by_connection().items()):
            if len(events) < 4:
                continue
            scores[connection] = whitelist.score(
                tokenize(events)).unseen_fraction
        (attack_connection, attack_conn_events), = \
            attack_events.by_connection().items()
        attack_score = whitelist.score(
            tokenize(attack_conn_events)).unseen_fraction
        return scores, attack_connection, attack_score

    scores, attack_connection, attack_score = run_once(benchmark,
                                                       evaluate)

    benign = sorted(scores.values())
    false_positives = sum(1 for score in scores.values()
                          if score > 0.2)
    rows = [
        ("benign connections scored", len(scores)),
        ("benign max unseen fraction", f"{100 * max(benign):.1f}%"),
        ("benign false positives (>20% unseen)", false_positives),
        (f"attack connection "
         f"{attack_connection[0]}-{attack_connection[1]}",
         f"{100 * attack_score:.1f}% unseen"),
    ]
    record("extension_attack_detection", render_table(
        ["Quantity", "Value"], rows,
        title="Extension — whitelist IDS vs injected Industroyer scan"))

    # Perfect separation on this corpus: every benign connection sits
    # at 0% unseen (the whitelist was trained on it), the attack far
    # above any plausible threshold.
    assert max(benign) <= 0.05
    assert false_positives == 0
    assert attack_score > 0.5
