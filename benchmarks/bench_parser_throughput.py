"""Microbenchmarks: parser and pipeline throughput.

Library-release numbers: how fast the strict parser, the tolerant
parser (with its candidate-profile fallback) and the end-to-end packet
pipeline chew through traffic.
"""

from _common import record, run_once

from repro.analysis import extract_apdus, render_table
from repro.iec104 import (IFrame, ShortFloat, StrictParser,
                          TolerantParser, TypeID, measurement)
from repro.iec104.profiles import LEGACY_COT_PROFILE


def _frames(profile=None, count=2000):
    frames = []
    for index in range(count):
        asdu = measurement(TypeID.M_ME_NC_1, 2001 + index % 20,
                           ShortFloat(value=50.0 + index % 10))
        frame = IFrame(asdu=asdu, send_seq=index % (1 << 15))
        frames.append(frame.encode(profile) if profile
                      else frame.encode())
    return frames


def test_strict_parser_throughput(benchmark):
    frames = _frames()

    def parse():
        parser = StrictParser()
        for frame in frames:
            parser.parse_frame(frame)
        return parser.stats.valid

    valid = benchmark(parse)
    assert valid == len(frames)


def test_tolerant_parser_throughput_standard(benchmark):
    frames = _frames()

    def parse():
        parser = TolerantParser()
        for frame in frames:
            parser.parse_frame(frame, link_key="x")
        return parser.stats.valid

    assert benchmark(parse) == len(frames)


def test_tolerant_parser_throughput_legacy(benchmark):
    """Legacy links pay one inference, then ride the cached profile."""
    frames = _frames(profile=LEGACY_COT_PROFILE)

    def parse():
        parser = TolerantParser()
        for frame in frames:
            parser.parse_frame(frame, link_key="O53")
        return parser.stats.valid

    assert benchmark(parse) == len(frames)


def test_pipeline_throughput(benchmark, y1_capture):
    """Packets -> APDU events, the full analysis front-end."""
    from repro.analysis import PacketCapture
    subset = PacketCapture(packets=y1_capture.packets[:20000],
                           names=y1_capture.host_names())

    def extract():
        return len(extract_apdus(subset).events)

    events = run_once(benchmark, extract)
    record("parser_throughput",
           render_table(["Quantity", "Value"],
                        [("packets fed", len(packets)),
                         ("APDU events extracted", events)],
                        title="Microbenchmark — pipeline front-end "
                              "(see pytest-benchmark table for rates)"))
    assert events > 0
