"""Fig. 11: the communication pattern each session cluster captures.

Paper's five roles: (0) extreme inter-arrival outliers — the C2-O30
misconfigured backup and the C4-O22 test RTU; (1) heavy spontaneous
I-format senders; (2) the 'average' outstation; (3) acknowledgement
(S-format) streams from the servers; (4) backup keep-alive traffic.
"""

import numpy as np

from _common import record, run_once

from repro.analysis import (extract_sessions, feature_matrix, kmeans,
                            render_table)


def test_fig11_cluster_patterns(benchmark, y1_extraction):
    def cluster():
        sessions = extract_sessions(y1_extraction)
        matrix = feature_matrix(sessions)
        return sessions, kmeans(matrix, 5, seed=104)

    sessions, result = run_once(benchmark, cluster)

    raw = np.vstack([np.array([s.dt, s.num, s.pct_i, s.pct_s, s.pct_u])
                     for s in sessions])
    rows = []
    roles = {}
    for cluster_id in range(5):
        members = np.where(result.labels == cluster_id)[0]
        mean = raw[members].mean(axis=0)
        share = 100.0 * len(members) / len(sessions)
        rows.append((cluster_id, len(members), f"{share:.1f}%",
                     f"{mean[0]:.1f}s", f"{mean[1]:.0f}",
                     f"{mean[2]:.2f}", f"{mean[3]:.2f}",
                     f"{mean[4]:.2f}"))
        roles[cluster_id] = mean
    record("fig11_cluster_patterns", render_table(
        ["Cluster", "Sessions", "Share", "mean dt", "mean num",
         "pct I", "pct S", "pct U"], rows,
        title="Fig. 11 — per-cluster communication patterns"))

    # The paper's roles must all be represented:
    means = {cid: roles[cid] for cid in roles}
    # an outlier cluster with the largest inter-arrival times,
    outlier = max(means, key=lambda c: means[c][0])
    outlier_sessions = [sessions[i].name
                        for i in np.where(result.labels == outlier)[0]]
    assert any("O30" in name or "O22" in name
               for name in outlier_sessions), outlier_sessions
    # a keep-alive cluster (pct U ~ 1),
    assert max(means[c][4] for c in means) > 0.8
    # an S-dominated (server acknowledgement) cluster,
    assert max(means[c][3] for c in means) > 0.5
    # and an I-dominated measurement cluster.
    assert max(means[c][2] for c in means) > 0.7
