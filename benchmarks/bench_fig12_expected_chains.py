"""Fig. 12: the two simplest expected communication patterns.

Left: a primary connection — I36 reports periodically acknowledged by
S-format frames. Right: an ideal secondary connection — the U16/U32
keep-alive loop.
"""

from _common import record, run_once

from repro.analysis import ConnectionChains
from repro.analysis.markov import MarkovChain


def test_fig12_expected_chains(benchmark, y1_extraction):
    def infer():
        chains = ConnectionChains.from_extraction(y1_extraction)
        primary = None
        secondary = None
        for connection, chain in chains.chains.items():
            tokens = set(chain.nodes)
            if tokens <= {"U16", "U32"} and chain.edge_count >= 2 \
                    and secondary is None:
                secondary = (connection, chain)
            if {"I36", "S"} <= tokens and "U16" not in tokens \
                    and "I100" not in tokens and primary is None:
                primary = (connection, chain)
        return primary, secondary

    primary, secondary = run_once(benchmark, infer)

    assert primary is not None, "no pure primary connection found"
    assert secondary is not None, "no ideal secondary connection found"
    text = (f"Primary connection {primary[0]} (Fig. 12 left):\n"
            f"{primary[1].render()}\n\n"
            f"Secondary connection {secondary[0]} (Fig. 12 right):\n"
            f"{secondary[1].render()}")
    record("fig12_expected_chains", text)

    # Left pattern: I-format reports acknowledged by S.
    assert primary[1].probability("S", "I36") > 0.0 \
        or primary[1].probability("I36", "S") > 0.0
    # Right pattern: strict U16 <-> U32 alternation dominates.
    chain = secondary[1]
    assert chain.probability("U32", "U16") > 0.9
    assert chain.probability("U16", "U32") > 0.9
    # Repeated U16/U32 (TCP retransmissions) are rare but possible.
    assert chain.probability("U16", "U16") < 0.1


def test_fig12_synthetic_ideals(benchmark):
    """The idealized chains themselves, built from clean sequences."""
    def build():
        primary = MarkovChain.from_tokens(
            ["I36", "I36", "I36", "S"] * 20)
        secondary = MarkovChain.from_tokens(["U16", "U32"] * 30)
        return primary, secondary

    primary, secondary = run_once(benchmark, build)
    assert primary.size == (2, 3)
    assert secondary.size == (2, 2)
