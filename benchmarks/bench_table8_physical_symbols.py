"""Table 8: typeID -> physical symbols + transmitting-station counts.

Paper landmarks: I13 at 20 stations and I36 at 13 (both carrying
I/P/Q/U/Freq), I100 at 9, I50 (AGC set points) at exactly 4, I31 at 4,
I1 at 3, I103 at 3, I70 at 2, and one station each for I5/I9/I7/I30.
"""

from _common import record, run_once

from repro.analysis import render_table, symbol_table


def test_table8_physical_symbols(benchmark, y1_extraction,
                                 y2_extraction):
    def analyze():
        combined = {}
        for extraction in (y1_extraction, y2_extraction):
            for row in symbol_table(extraction):
                stations, symbols = combined.get(row.token,
                                                 (set(), set()))
                combined[row.token] = (stations | {row.station_count},
                                       symbols | set(row.symbols))
        # Recompute station counts over the union of both years.
        union = {}
        for extraction in (y1_extraction, y2_extraction):
            for event in extraction.events:
                from repro.iec104.apci import IFrame
                if not isinstance(event.apdu, IFrame):
                    continue
                station = (event.dst if event.src.startswith("C")
                           else event.src)
                union.setdefault(event.apdu.asdu.type_id.token,
                                 set()).add(station)
        return {token: (len(stations),
                        tuple(sorted(combined[token][1])))
                for token, stations in union.items()}

    table = run_once(benchmark, analyze)

    rows = [(token, count, ",".join(symbols))
            for token, (count, symbols) in
            sorted(table.items(), key=lambda item: -item[1][0])]
    record("table8_physical_symbols", render_table(
        ["ASDU TypeID", "Transmitting Station Count",
         "Physical Symbols Reported"], rows,
        title="Table 8 — typeIDs and physical measurements, Y1+Y2 "
              "(paper: I13@20, I36@13, I100@9, I50@4, ...)"))

    count = {token: stations for token, (stations, _) in table.items()}
    assert count["I13"] > count["I36"] >= 8
    assert count["I50"] == 4          # the four AGC participants
    assert count["I100"] >= 8         # interrogated connections
    assert count["I31"] == 4 and count["I1"] == 3
    assert count["I103"] == 3 and count["I70"] == 2
    for rare in ("I5", "I9", "I7", "I30"):
        assert count[rare] == 1
    symbols = {token: set(syms) for token, (_, syms) in table.items()}
    assert {"P", "U", "Freq"} <= symbols["I36"]
    assert symbols["I50"] == {"AGC-SP"}
