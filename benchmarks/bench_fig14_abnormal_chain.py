"""Fig. 14: the abnormal point-(1,1) chain — U16 with no U32.

Paper: connections C2-O28, C2-O24, C1-O7, C1-O9, C1-O6, C1-O8, C1-O35,
C2-O30, C1-O15, C1-O5 all show only repeated, unanswered TESTFR acts.
"""

from _common import record, run_once

from repro.analysis import ConnectionChains
from repro.datasets import Y1_RESET_CONNECTIONS


def test_fig14_abnormal_chain(benchmark, y1_extraction):
    def infer():
        chains = ConnectionChains.from_extraction(y1_extraction)
        return chains, chains.reset_connections()

    chains, reset = run_once(benchmark, infer)

    lines = ["Fig. 14 — connections whose whole chain is the U16 "
             "self-loop:"]
    for connection in reset:
        chain = chains.chains[connection]
        lines.append(f"  {connection[0]}-{connection[1]}: "
                     f"U16 -> U16 (p={chain.probability('U16', 'U16'):.2f})")
    record("fig14_abnormal_chain", "\n".join(lines))

    observed = set(reset)
    allowed = {tuple(connection) for connection in Y1_RESET_CONNECTIONS}
    assert observed <= allowed
    assert len(observed) >= 7
    for connection in reset:
        chain = chains.chains[connection]
        assert chain.is_reset_backup
        assert chain.probability("U16", "U16") == 1.0
        assert not chain.has_token("U32")
