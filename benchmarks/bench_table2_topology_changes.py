"""Table 2: outstations added/removed between Y1 and Y2.

The diff is computed purely from the observed traffic of the two
synthetic captures (the paper confirmed its observed changes with the
operator; our ground truth plays the operator's role in the assertion).
"""

from _common import record, run_once

from repro.analysis import render_table
from repro.analysis.topology_diff import (ObservedTopology,
                                          diff_topologies)
from repro.datasets import TABLE2_ADDED, TABLE2_REMOVED, spec_by_name


def test_table2_topology_changes(benchmark, y1_extraction,
                                 y2_extraction):
    def diff():
        before = ObservedTopology.from_extraction(y1_extraction)
        after = ObservedTopology.from_extraction(y2_extraction)
        return diff_topologies(before, after)

    result = run_once(benchmark, diff)

    rows = []
    for name in result.added_outstations:
        rows.append((name, "Added", spec_by_name(name).change_reason))
    for name in result.removed_outstations:
        rows.append((name, "Removed", spec_by_name(name).change_reason))
    record("table2_topology_changes", render_table(
        ["Outstation", "Added/Removed", "Description"], rows,
        title="Table 2 — Y1 -> Y2 outstation changes (observed from "
              "traffic)"))

    expected_added = {n for names in TABLE2_ADDED.values()
                      for n in names}
    expected_removed = {n for names in TABLE2_REMOVED.values()
                        for n in names}
    assert set(result.added_outstations) == expected_added
    assert set(result.removed_outstations) == expected_removed
