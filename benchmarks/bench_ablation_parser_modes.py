"""Ablation: strict (Wireshark-like) vs tolerant parsing.

Quantifies the value of the paper's parser: how much of the network
would be unanalyzable without per-link profile inference.
"""

from _common import record, run_once

from repro.analysis import render_table
from repro.analysis.apdu_stream import is_iec104
from repro.iec104 import StrictParser, TolerantParser


def test_ablation_parser_modes(benchmark, y1_capture, y2_capture):
    def parse_both():
        results = {}
        for label, capture in (("Y1", y1_capture), ("Y2", y2_capture)):
            strict = StrictParser()
            tolerant = TolerantParser()
            names = capture.host_names()
            for packet in capture.packets:
                if not is_iec104(packet) or not packet.payload:
                    continue
                src = names.get(packet.ip.src)
                strict.parse_stream(packet.payload)
                tolerant.parse_stream(packet.payload, link_key=src)
            results[label] = (strict.stats, tolerant.stats)
        return results

    results = run_once(benchmark, parse_both)

    rows = []
    for label, (strict, tolerant) in results.items():
        rows.append((label, strict.frames,
                     f"{100 * strict.malformed_fraction:.2f}%",
                     f"{100 * tolerant.malformed_fraction:.2f}%",
                     tolerant.non_compliant))
    record("ablation_parser_modes", render_table(
        ["Year", "Frames", "Strict malformed", "Tolerant malformed",
         "Non-compliant decoded"], rows,
        title="Ablation — strict vs tolerant parser"))

    for label, (strict, tolerant) in results.items():
        # The strict baseline loses a measurable slice of the network.
        assert strict.malformed > 0
        # The tolerant parser decodes everything.
        assert tolerant.malformed == 0
        # It recovers every frame the baseline rejected (plus the
        # ambiguous frames from legacy links that happen to also parse
        # under the standard widths, which the cached per-link profile
        # correctly attributes to the legacy encoding).
        assert tolerant.non_compliant >= strict.malformed
        assert tolerant.non_compliant <= 1.2 * strict.malformed + 10
    # Y2 has more legacy RTUs (O53, O58 join; O28 leaves): the strict
    # parser's loss rate must be at least comparable.
    y1_strict, _ = results["Y1"]
    y2_strict, _ = results["Y2"]
    assert y2_strict.malformed_fraction > 0.5 * \
        y1_strict.malformed_fraction
