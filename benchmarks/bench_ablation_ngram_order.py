"""Ablation: N-gram order for the APDU language model.

Fits unigram/bigram/trigram models on half the Y1 connections and
evaluates held-out perplexity on the other half.
"""

from _common import record, run_once

from repro.analysis import NgramModel, render_table, tokenize


def test_ablation_ngram_order(benchmark, y1_extraction):
    def evaluate():
        sequences = [tokenize(events) for events in
                     y1_extraction.by_connection().values()
                     if len(events) >= 8]
        sequences.sort(key=len)
        train = sequences[0::2]
        held_out = sequences[1::2]
        perplexities = {}
        for order in (1, 2, 3):
            model = NgramModel(order=order, smoothing_k=0.05)
            model.fit(train)
            perplexities[order] = model.perplexity(held_out)
        return perplexities, len(train), len(held_out)

    perplexities, n_train, n_test = run_once(benchmark, evaluate)

    rows = [(order, f"{value:.2f}")
            for order, value in perplexities.items()]
    record("ablation_ngram_order", render_table(
        ["N-gram order", "held-out perplexity"], rows,
        title=f"Ablation — model order ({n_train} train / {n_test} "
              "held-out connections)"))

    # SCADA token streams are highly regular: conditioning on one
    # token of history must help substantially.
    assert perplexities[2] < perplexities[1]
    # All models stay far below the vocabulary-size ceiling.
    assert perplexities[2] < 8.0
