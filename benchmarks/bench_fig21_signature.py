"""Fig. 21: the power-system behaviour signature state machine.

Runs the activation signature over the DPI-extracted (U, breaker, P)
series of the synchronizing generator and asserts the full expected
path with zero anomalies — then shows the detector flagging a forged
trace.
"""

from _common import record, run_once

from repro.analysis import station_series
from repro.datasets import SYNC_GENERATOR
from repro.grid import (ActivationSignature, BREAKER_OPEN,
                        SignatureState)
from repro.iec104 import TypeID


def _series(extraction):
    everything = station_series(extraction, SYNC_GENERATOR,
                                min_samples=1)
    ramps = [s for s in everything
             if min(s.values) < 5.0 and max(s.values) > 5.0]
    voltage = min((s for s in ramps if max(s.values) > 100.0),
                  key=lambda s: abs(s.values[-1] - 130.0))
    breaker = max((s for s in everything
                   if s.key.type_id in (TypeID.M_DP_NA_1,
                                        TypeID.M_DP_TB_1)
                   and {int(v) for v in s.values} <= {0, 2}), key=len)
    power = max((s for s in ramps
                 if s is not voltage and s is not breaker),
                key=lambda s: max(s.values))
    return voltage, breaker, power


def test_fig21_signature(benchmark, y1_extraction):
    def detect():
        voltage, breaker, power = _series(y1_extraction)
        samples = {}
        for kind, series in (("U", voltage), ("P", power),
                             ("B", breaker)):
            for time, value in zip(series.times, series.values):
                samples.setdefault(round(time), {})[kind] = value
        signature = ActivationSignature()
        last = {"U": 0.0, "P": 0.0, "B": 0}
        for time in sorted(samples):
            last.update(samples[time])
            signature.observe(float(time), last["U"], int(last["B"]),
                              last["P"])
        return signature

    signature = run_once(benchmark, detect)

    lines = ["Fig. 21 — signature over DPI series of "
             f"{SYNC_GENERATOR}:"]
    for event in signature.events:
        marker = f"ANOMALY ({event.anomaly}) " if event.is_anomaly \
            else ""
        lines.append(f"  t={event.time:9.1f}s  {marker}"
                     f"{event.state.value}")
    # Negative control: a forged trace violating physics.
    forged = ActivationSignature()
    forged.observe(0.0, 130.0, BREAKER_OPEN, 80.0)
    lines.append("")
    lines.append("Forged trace (power through an open breaker): "
                 f"{forged.events[0].anomaly}")
    record("fig21_signature", "\n".join(lines))

    assert signature.completed_activation
    assert signature.anomalies == []
    states = [event.state for event in signature.events]
    assert states.index(SignatureState.SYNCHRONIZED) \
        < states.index(SignatureState.CONNECTED) \
        < states.index(SignatureState.GENERATING)
    assert forged.anomalies
