"""Table 7: observed ASDU typeID distribution over both years.

Paper: I36 65.13%, I13 31.70% — together 97% of all ASDUs; 13 of the
54 typeIDs observed. Shape to hold: I36 > I13 >> everything else.
"""

from _common import record, run_once

from repro.analysis import render_table, type_id_distribution
from repro.iec104 import TypeID


def test_table7_typeid_distribution(benchmark, y1_extraction,
                                    y2_extraction):
    def analyze():
        counts = {}
        for extraction in (y1_extraction, y2_extraction):
            for type_id, count in type_id_distribution(
                    extraction).counts.items():
                counts[type_id] = counts.get(type_id, 0) + count
        from repro.analysis.physical import TypeIDDistribution
        return TypeIDDistribution(counts=counts)

    distribution = run_once(benchmark, analyze)

    rows = [(token, count, f"{pct:.4f}%")
            for token, count, pct in distribution.rows()]
    record("table7_typeid_distribution", render_table(
        ["ASDU TypeID", "Count", "Percentage"], rows,
        title="Table 7 — ASDU typeID distribution, Y1+Y2 "
              "(paper: I36 65.13%, I13 31.70%, 97% combined)"))

    ordered = distribution.rows()
    assert ordered[0][0] == "I36"
    assert ordered[1][0] == "I13"
    assert distribution.top_two_share() > 85.0
    assert distribution.percentage(TypeID.M_ME_TF_1) \
        > distribution.percentage(TypeID.M_ME_NC_1)
    # All and only a small subset of the 54 typeIDs is observed
    # (paper: 13).
    assert 10 <= len(distribution.counts) <= 16
