"""Fig. 16: a server switchover captured inside one connection.

Paper: the chain contains keep-alive pairs (U16/U32) from its life as
a secondary connection, then U1/U2 and I100 from the moment it was
promoted to primary, then regular I-format traffic.
"""

from _common import record, run_once

from repro.analysis import ConnectionChains, switchover_chain, tokenize


def test_fig16_switchover(benchmark, y1_extraction):
    def infer():
        chains = ConnectionChains.from_extraction(y1_extraction)
        switchovers = {connection: chain
                       for connection, chain in chains.chains.items()
                       if chain.has_switchover}
        return switchovers

    switchovers = run_once(benchmark, infer)

    assert switchovers, "no switchover chain captured"
    connection, chain = sorted(switchovers.items())[0]
    record("fig16_switchover",
           f"Fig. 16 — switchover chain for "
           f"{connection[0]}-{connection[1]}:\n{chain.render(40)}")

    # The promoted connection belongs to a switchover outstation.
    assert {c[1] for c in switchovers} <= {"O20", "O29"}
    # Chain carries the secondary phase AND the primary phase.
    assert chain.has_token("U16") and chain.has_token("U32")
    assert chain.has_token("U1") and chain.has_interrogation
    assert any(token in chain.nodes for token in ("I13", "I36"))

    # Temporal order check on the raw token sequence: keep-alives come
    # before the STARTDT (the defining Fig. 16 property).
    events = y1_extraction.by_connection()[connection]
    tokens = tokenize(events)
    assert tokens.index("U16") < tokens.index("U1")
    # Also reachable through the convenience accessor.
    same = switchover_chain(y1_extraction, *connection)
    assert same.size == chain.size
