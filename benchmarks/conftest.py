"""Session-scoped synthetic captures shared by every benchmark."""

from __future__ import annotations

import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _common import BENCH_SCALE  # noqa: E402

from repro.analysis import extract_apdus  # noqa: E402
from repro.datasets import CaptureConfig  # noqa: E402
from repro.perf import cached_generate  # noqa: E402

# The captures are served through the content-addressed cache
# (docs/performance.md): the first run of a given scale/code state
# simulates and stores; every later run deserializes the stored pcap,
# which is orders of magnitude faster. `repro cache clear` resets.


@pytest.fixture(scope="session")
def y1_capture():
    return cached_generate(1, CaptureConfig(time_scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def y2_capture():
    return cached_generate(2, CaptureConfig(time_scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def y1_extraction(y1_capture):
    return extract_apdus(y1_capture)


@pytest.fixture(scope="session")
def y2_extraction(y2_capture):
    return extract_apdus(y2_capture)
