"""Session-scoped synthetic captures shared by every benchmark."""

from __future__ import annotations

import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _common import BENCH_SCALE  # noqa: E402

from repro.analysis import extract_apdus  # noqa: E402
from repro.datasets import CaptureConfig, generate_capture  # noqa: E402


@pytest.fixture(scope="session")
def y1_capture():
    return generate_capture(1, CaptureConfig(time_scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def y2_capture():
    return generate_capture(2, CaptureConfig(time_scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def y1_extraction(y1_capture):
    return extract_apdus(y1_capture.packets,
                         names=y1_capture.host_names())


@pytest.fixture(scope="session")
def y2_extraction(y2_capture):
    return extract_apdus(y2_capture.packets,
                         names=y2_capture.host_names())
