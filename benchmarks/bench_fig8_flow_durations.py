"""Fig. 8: log-scale histogram of Y1 short-lived flow durations.

Paper shape: a large mass of very short flows (tens of milliseconds),
with a thin tail of longer short-lived flows.
"""

from _common import record, run_once

from repro.analysis import FlowAnalysis, render_histogram


def test_fig8_flow_durations(benchmark, y1_capture):
    def analyze():
        analysis = FlowAnalysis.from_packets(
            "Y1", y1_capture.packets, names=y1_capture.host_names())
        return analysis, analysis.duration_histogram(bins_per_decade=3)

    analysis, bins = run_once(benchmark, analyze)

    record("fig8_flow_durations", render_histogram(
        bins, title="Fig. 8 — Y1 short-lived flow durations "
                    "(log-scale bins)"))

    durations = analysis.short_lived_durations()
    assert durations
    # The bulk of short-lived flows lasts well under a second...
    sub_second = sum(1 for d in durations if d < 1.0)
    assert sub_second / len(durations) > 0.9
    # ...with most mass below 100 ms (handshake + TESTFR + RST).
    sub_100ms = sum(1 for d in durations if d < 0.1)
    assert sub_100ms / len(durations) > 0.5
    assert sum(count for _, _, count in bins) == len(durations)
