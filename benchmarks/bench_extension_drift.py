"""Extension: Hypothesis 1 at capture-day granularity.

The paper compares the network across years; the captures themselves
span multiple days. This bench measures per-session behavioural drift
across the Y1 capture days: the overwhelming majority of sessions keep
their behaviour, and the drifting ones are the known dynamic cases
(switchover days, type-4 server alternation).
"""

from _common import record, run_once

from repro.analysis import render_table
from repro.analysis.drift import (day_boundaries, session_drift,
                                  summarize_drift)


def test_extension_drift(benchmark, y1_extraction):
    def analyze():
        boundaries = day_boundaries(y1_extraction)
        drifts = session_drift(y1_extraction, boundaries=boundaries)
        return boundaries, drifts, summarize_drift(drifts)

    boundaries, drifts, summary = run_once(benchmark, analyze)

    worst = sorted(drifts, key=lambda record: -record.drift)[:10]
    rows = [(f"{src}->{dst}", record.observed_days,
             f"{record.drift:.2f}",
             "yes" if record.intermittent else "no")
            for record in worst
            for src, dst in [record.session]]
    text = render_table(
        ["Session", "Days seen", "Drift", "Intermittent"], rows,
        title="Extension — top drifting sessions across Y1 days")
    text += (f"\n\ncapture days detected: {len(boundaries) + 1}; "
             f"sessions: {summary.sessions}; multi-day: "
             f"{summary.multi_day_sessions}; stable: "
             f"{summary.stable_sessions} "
             f"({100 * summary.stability_fraction:.1f}%)")
    record("extension_drift", text)

    assert len(boundaries) == 4  # five Y1 capture days
    assert summary.stability_fraction > 0.8
    # The dynamic outstations surface among drifters/intermittents.
    flagged = {session for record in drifts
               if record.drift > 0.6 or record.intermittent
               for session in [record.session]}
    flagged_outstations = {host for session in flagged
                           for host in session
                           if not host.startswith("C")}
    assert flagged_outstations & {"O27", "O29", "O31", "O32", "O12",
                                  "O17", "O20", "O36", "O41", "O42",
                                  "O44"}
