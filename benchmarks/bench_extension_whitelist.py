"""Extension: the cyber-physical whitelist IDS (paper future work).

Trains the combined detector on Y1 and evaluates: (a) false-positive
behaviour on held-out Y2 traffic from unchanged outstations, and
(b) detection of an injected Industroyer-style command sweep.
"""

from _common import record, run_once

from repro.analysis import render_table, tokenize
from repro.analysis.whitelist import CombinedDetector, CyberWhitelist


def test_extension_whitelist(benchmark, y1_extraction, y2_extraction):
    def evaluate():
        detector = CombinedDetector().fit(y1_extraction)
        train_alerts = detector.detect(y1_extraction)

        # Per-connection cyber whitelist scored on Y2: connections
        # whose outstation persisted unchanged should mostly pass.
        verdicts = detector.cyber.score_extraction(y2_extraction)
        known = [v for v in verdicts
                 if v.connection in detector.cyber.learned_connections]
        quiet = sum(1 for v in known if not v.is_alert())

        # The attack: a global whitelist over all Y1 connections,
        # scored against an Industroyer-style sequence.
        attack = (["U1", "U2", "I100"] + ["I45"] * 8 + ["I46"] * 8)
        global_whitelist = CyberWhitelist(per_connection=False)
        for events in y1_extraction.by_connection().values():
            global_whitelist.fit_sequence(tokenize(events))
        attack_verdict = global_whitelist.score(attack)
        return detector, train_alerts, known, quiet, attack_verdict

    detector, train_alerts, known, quiet, attack = run_once(benchmark,
                                                            evaluate)

    rows = [
        ("connections learned (Y1)",
         len(detector.cyber.learned_connections)),
        ("physical points learned (Y1)", detector.physical.point_count),
        ("alerts on training capture", len(train_alerts)),
        ("known Y2 connections scored", len(known)),
        ("... of which quiet", quiet),
        ("Industroyer sweep unseen-transition fraction",
         f"{100 * attack.unseen_fraction:.1f}%"),
        ("Industroyer sweep flagged", attack.is_alert()),
    ]
    record("extension_whitelist", render_table(
        ["Quantity", "Value"], rows,
        title="Extension — cyber-physical whitelist IDS"))

    assert train_alerts == []                  # no training alarms
    assert quiet / max(1, len(known)) > 0.7    # Y2 mostly quiet
    assert attack.is_alert()                   # the attack is caught
    assert attack.unseen_fraction > 0.5
