"""Table 1: transmission vs distribution system scale."""

from _common import record, run_once

from repro.analysis import render_table
from repro.grid import TABLE1_ROWS


def test_table1_grid_scale(benchmark):
    def build():
        return [(row.name, f"{row.power_watts:.0e}",
                 f"{row.area_km2:,.0f}", row.voltage_kv_bound)
                for row in TABLE1_ROWS]

    rows = run_once(benchmark, build)
    record("table1_grid_scale", render_table(
        ["Segment", "Power [W]", "Area [km^2]", "Voltage level [kV]"],
        rows, title="Table 1 — transmission vs distribution"))
    assert rows[0][1] == "1e+09"
    assert rows[1][1] == "1e+06"
