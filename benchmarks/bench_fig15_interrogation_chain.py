"""Fig. 15: a chain from the ellipse — STARTDT, then interrogation.

Paper: U1 (STARTDT act) is answered by U2, the first I-format frame is
the I100 interrogation command, and the outstation then transmits its
regular I types (I13, I36, ...).
"""

from _common import record, run_once

from repro.analysis import ChainCluster, ConnectionChains


def test_fig15_interrogation_chain(benchmark, y1_extraction):
    def infer():
        chains = ConnectionChains.from_extraction(y1_extraction)
        ellipse = chains.by_cluster()[ChainCluster.INTERROGATION]
        # A fresh type-4 connection (no keep-alive history) shows the
        # pattern most cleanly.
        for connection in ellipse:
            chain = chains.chains[connection]
            if not chain.has_token("U16"):
                return connection, chain
        return ellipse[0], chains.chains[ellipse[0]]

    connection, chain = run_once(benchmark, infer)

    record("fig15_interrogation_chain",
           f"Fig. 15 — interrogation chain for "
           f"{connection[0]}-{connection[1]}:\n{chain.render(40)}")

    assert chain.has_token("U1") and chain.has_token("U2")
    assert chain.has_interrogation
    # STARTDT act is always answered by STARTDT con...
    assert chain.probability("U1", "U2") == 1.0
    # ...and the interrogation follows immediately after.
    assert chain.probability("U2", "I100") > 0.9
    # The burst introduces regular measurement types.
    assert any(token in chain.nodes for token in ("I13", "I36"))
