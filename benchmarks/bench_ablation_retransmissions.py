"""Ablation: per-packet (paper-faithful) vs TCP-reassembled parsing.

The paper observed repeated U16/U32 Markov tokens and traced them to
TCP retransmissions. Parsing the reassembled stream removes exactly
those duplicates; this bench quantifies the difference.
"""

from _common import record, run_once

from repro.analysis import extract_apdus, render_table, tokenize


def test_ablation_retransmissions(benchmark, y1_capture):
    def compare():
        per_packet = extract_apdus(y1_capture, per_packet=True)
        reassembled = extract_apdus(y1_capture, per_packet=False)
        return per_packet, reassembled

    per_packet, reassembled = run_once(benchmark, compare)

    duplicates = len(per_packet.events) - len(reassembled.events)
    rows = [
        ("per-packet APDUs (paper methodology)",
         len(per_packet.events)),
        ("reassembled APDUs", len(reassembled.events)),
        ("duplicate APDUs from TCP retransmissions", duplicates),
        ("TCP retransmissions detected by reassembler",
         reassembled.retransmissions),
    ]
    record("ablation_retransmissions", render_table(
        ["Quantity", "Value"], rows,
        title="Ablation — per-packet vs reassembled APDU extraction"))

    # The injected retransmissions produce duplicate tokens in
    # per-packet mode and are fully removed by reassembly.
    assert duplicates > 0
    assert duplicates <= reassembled.retransmissions
    # Neither mode loses frames: the reassembled token multiset is a
    # sub-multiset of the per-packet one.
    from collections import Counter
    packet_tokens = Counter(tokenize(per_packet.events))
    stream_tokens = Counter(tokenize(reassembled.events))
    assert all(packet_tokens[token] >= count
               for token, count in stream_tokens.items())
