"""Table 6 + Fig. 17: outstation behaviour classification.

Paper shape: Type 3 (backup, U-only) is the most common at 34.3%;
Type 4 is the second most common; Type 7 is roughly a fourth of all
backup outstations.
"""

from _common import record, run_once

from repro.analysis import classify_all, render_table, type_distribution
from repro.simnet.behaviors import OutstationType


def test_table6_outstation_types(benchmark, y1_extraction):
    def classify():
        return type_distribution(classify_all(y1_extraction))

    distribution = run_once(benchmark, classify)

    rows = [(kind, description, count, f"{pct:.1f}%")
            for kind, description, count, pct in distribution.rows()]
    record("table6_outstation_types", render_table(
        ["Type", "Description", "Count", "Share"], rows,
        title="Table 6 / Fig. 17 — Y1 outstation classification "
              "(paper: type 3 most common at 34.3%, type 4 second)"))

    assert distribution.most_common is OutstationType.BACKUP_U_ONLY
    counts = distribution.counts
    non_backup = {kind: count for kind, count in counts.items()
                  if kind is not OutstationType.BACKUP_U_ONLY}
    assert max(non_backup, key=non_backup.get) \
        is OutstationType.I_ONLY_BOTH_SERVERS
    backups = (counts.get(OutstationType.BACKUP_U_ONLY, 0)
               + counts.get(OutstationType.BACKUP_REJECTS, 0))
    fraction = counts.get(OutstationType.BACKUP_REJECTS, 0) / backups
    assert 0.15 <= fraction <= 0.45  # paper: "just a fourth"
