"""Fig. 13: Markov chain sizes (nodes, edges) for every connection.

Paper shape: three groups — the point (1,1) of reset-backup
connections; a 'square' of ordinary connections; an 'ellipse' of
connections containing the I100 interrogation command, with markedly
more edges.
"""

from _common import record, run_once

from repro.analysis import ChainCluster, ConnectionChains, render_table


def test_fig13_chain_sizes(benchmark, y1_extraction):
    def infer():
        chains = ConnectionChains.from_extraction(y1_extraction)
        return chains, chains.by_cluster()

    chains, clusters = run_once(benchmark, infer)

    rows = []
    for connection, nodes, edges in chains.sizes():
        cluster = next(cluster for cluster, members in clusters.items()
                       if connection in members)
        label = {ChainCluster.RESET_POINT: "(1,1) point",
                 ChainCluster.PLAIN: "square",
                 ChainCluster.INTERROGATION: "ellipse"}[cluster]
        rows.append((f"{connection[0]}-{connection[1]}", nodes, edges,
                     label))
    rows.sort(key=lambda row: (row[3], row[0]))
    record("fig13_chain_sizes", render_table(
        ["Connection", "Nodes", "Edges", "Fig. 13 region"], rows,
        title="Fig. 13 — Markov chain sizes per connection"))

    reset = clusters[ChainCluster.RESET_POINT]
    plain = clusters[ChainCluster.PLAIN]
    ellipse = clusters[ChainCluster.INTERROGATION]
    assert len(reset) >= 7      # the paper found 10 such connections
    assert len(plain) > len(ellipse)
    # Reset connections all sit exactly at (1,1).
    for connection in reset:
        assert chains.chains[connection].size == (1, 1)
    # Ellipse chains have more edges than plain ones on average.
    mean = lambda cs: (sum(chains.chains[c].edge_count for c in cs)
                       / len(cs))
    assert mean(ellipse) > 1.5 * mean(plain)
    # Ellipse members come in pairs per outstation where a switchover
    # occurred (paper: O20 with C3/C4, O29 with C1/C2).
    ellipse_outstations = [c[1] for c in ellipse]
    assert ellipse_outstations.count("O29") == 2
    assert ellipse_outstations.count("O20") == 2
