"""Ablation: selecting K by elbow, explained variance and Silhouette.

The paper reports that all three criteria point to K=5 on its session
features; this bench sweeps K and prints the three curves.
"""

from _common import record, run_once

from repro.analysis import (extract_sessions, feature_matrix,
                            render_table, select_k)


def test_ablation_k_selection(benchmark, y1_extraction):
    def sweep():
        sessions = extract_sessions(y1_extraction)
        matrix = feature_matrix(sessions)
        return select_k(matrix, range(2, 9), seed=104)

    selection = run_once(benchmark, sweep)

    rows = [(k, f"{sse:.1f}", f"{sil:.3f}", f"{ev:.3f}")
            for k, sse, sil, ev in zip(selection.ks, selection.sse,
                                       selection.silhouette,
                                       selection.explained)]
    record("ablation_k_selection", render_table(
        ["K", "SSE (elbow)", "Silhouette", "Explained variance"], rows,
        title=f"Ablation — K selection (paper: K=5; "
              f"silhouette-best here: K={selection.best_by_silhouette}, "
              f"elbow: K={selection.elbow})"))

    # SSE decreases monotonically with K.
    assert all(a >= b for a, b in zip(selection.sse, selection.sse[1:]))
    # Explained variance increases monotonically.
    assert all(a <= b + 1e-9 for a, b in
               zip(selection.explained, selection.explained[1:]))
    # A K in the paper's neighbourhood scores near the best silhouette.
    by_k = dict(zip(selection.ks, selection.silhouette))
    assert max(by_k[k] for k in (4, 5, 6)) \
        >= max(selection.silhouette) - 0.05
