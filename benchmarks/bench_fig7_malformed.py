"""Fig. 7: correct vs malformed packets, with field-level explanation.

Paper: O37, O53, O58 and O28 show 100% invalid packets under a
standard parser; the tolerant parser attributes them to a 2-octet IOA
(O37) and a 1-octet COT (O53/O58/O28).
"""

from _common import record, run_once

from repro.analysis import analyze_compliance, field_diffs, render_table
from repro.datasets import NON_COMPLIANT


def test_fig7_malformed(benchmark, y1_capture, y2_capture):
    def analyze():
        reports = {}
        for label, capture in (("Y1", y1_capture), ("Y2", y2_capture)):
            reports[label] = analyze_compliance(
                capture.packets, names=capture.host_names())
        return reports

    reports = run_once(benchmark, analyze)

    rows = []
    flagged = {}
    for label, report in reports.items():
        for host in report.non_compliant_hosts():
            diffs = "; ".join(str(d) for d in
                              field_diffs(host.inferred_profile))
            rows.append((label, host.host, host.frames,
                         f"{100 * host.strict_malformed_fraction:.0f}%",
                         diffs))
            flagged.setdefault(host.host, set()).add(label)
    record("fig7_malformed", render_table(
        ["Year", "RTU", "I-frames", "standard-parser malformed",
         "field diff (Fig. 7)"], rows,
        title="Fig. 7 — non-compliant frames and their explanation"))

    # All four of the paper's legacy RTUs are caught in their years.
    assert flagged.get("O37") == {"Y1", "Y2"}
    assert flagged.get("O28") == {"Y1"}   # removed in Y2
    assert flagged.get("O53") == {"Y2"}   # added in Y2
    assert flagged.get("O58") == {"Y2"}
    assert set(flagged) == set(NON_COMPLIANT)
    # Every flagged host is 100% malformed for the strict baseline.
    for label, report in reports.items():
        for host in report.non_compliant_hosts():
            assert host.strict_malformed_fraction == 1.0
            # ... while the tolerant parser decodes every frame.
            assert host.tolerant_decoded == host.frames
