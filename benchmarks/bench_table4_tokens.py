"""Table 4: the APDU token catalog, checked against live traffic."""

from collections import Counter

from _common import record, run_once

from repro.analysis import (TOKEN_DESCRIPTIONS, is_valid_token,
                            render_table, tokenize)


def test_table4_tokens(benchmark, y1_extraction):
    def build():
        tokens = tokenize(y1_extraction.events)
        assert all(is_valid_token(token) for token in tokens)
        return Counter(tokens)

    counts = run_once(benchmark, build)

    rows = [(token, description, counts.get(token, 0))
            for token, description in TOKEN_DESCRIPTIONS.items()]
    i_tokens = sorted((t for t in counts if t.startswith("I")),
                      key=lambda t: -counts[t])
    for token in i_tokens:
        rows.append((token, "Sensor and Control Values", counts[token]))
    record("table4_tokens", render_table(
        ["Token", "Description", "Observed count"], rows,
        title="Table 4 — APDU token catalog with Y1 observations"))

    # Every traffic token obeys the Table 4 grammar, and the session
    # contains all three APDU families.
    assert counts["S"] > 0
    assert counts["U16"] > 0 and counts["U32"] > 0
    assert any(token.startswith("I") for token in counts)
