"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it times
the analysis step with pytest-benchmark, prints the reproduced
rows/series, and records them under ``benchmarks/output/`` so the
paper-vs-measured comparison of EXPERIMENTS.md can be refreshed.
"""

from __future__ import annotations

import json
import os
import pathlib

#: Fraction of the paper's capture durations the benches simulate.
#: Override with REPRO_BENCH_SCALE=0.1 (or 1.0 for full length).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def record(name: str, text: str) -> None:
    """Print a reproduced artifact and save it to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)


def run_once(benchmark, func):
    """Benchmark ``func`` with few rounds (analysis steps are heavy)."""
    return benchmark.pedantic(func, rounds=3, iterations=1,
                              warmup_rounds=0)


def load_json(path) -> dict | None:
    """Parse a JSON document; None when absent or malformed."""
    try:
        return json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError):
        return None


def save_json(path, document: dict) -> None:
    """Write a JSON document with stable formatting (diff-friendly)."""
    pathlib.Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n")
