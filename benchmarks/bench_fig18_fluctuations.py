"""Fig. 18: voltage and active-power fluctuations seen via DPI.

Paper: most voltages sit at their nominal level, one series jumps from
0 kV to ~120-130 kV (a generator coming online), and active power shows
the unmet-load fluctuation. The normalized-variance screen surfaces
both events.
"""

from _common import record, run_once

from repro.analysis import (extract_series, interesting_events,
                            render_series)
from repro.datasets import SYNC_GENERATOR


def test_fig18_fluctuations(benchmark, y1_extraction):
    def analyze():
        series = extract_series(y1_extraction)
        events = interesting_events(y1_extraction, top=10)
        return series, events

    series, events = run_once(benchmark, analyze)

    # The 0 -> nominal voltage jump of the synchronizing generator.
    jump = [s for s in series.values()
            if s.key.station == SYNC_GENERATOR and len(s) > 5
            and min(s.values) < 10.0 and max(s.values) > 100.0]
    assert jump, "no 0 -> nominal voltage jump observed"
    voltage = max(jump, key=lambda s: max(s.values))

    # Most other voltage-like series stay near nominal.
    steady = [s for s in series.values()
              if len(s) > 5 and 100.0 < min(s.values)
              and max(s.values) < 160.0]
    assert len(steady) >= 5

    text = render_series(
        voltage.times, voltage.values,
        title=f"Fig. 18 (top) — {SYNC_GENERATOR} voltage jumps "
              f"0 -> {max(voltage.values):.0f} kV; "
              f"{len(steady)} other voltage series remain nominal")
    lines = [text, "", "Normalized-variance screen (Fig. 18 events):"]
    for event in events:
        lines.append(f"  {event.key.station} IOA {event.key.ioa} "
                     f"[{event.symbol}] nv="
                     f"{event.normalized_variance:.3f}")
    record("fig18_fluctuations", "\n".join(lines))

    # The screen ranks the activating generator's points prominently.
    flagged_stations = {event.key.station for event in events}
    assert SYNC_GENERATOR in flagged_stations
