"""Fig. 20: the generator synchronization sequence via DPI.

Paper: terminal voltage ramps to nominal while power stays flat; the
breaker status steps 0 -> 2 (closed); only then does active power ramp.
"""

from _common import record, run_once

from repro.analysis import render_series, station_series
from repro.datasets import SYNC_GENERATOR
from repro.iec104 import TypeID


def test_fig20_generator_sync(benchmark, y1_extraction):
    def analyze():
        everything = station_series(y1_extraction, SYNC_GENERATOR,
                                    min_samples=1)
        ramps = [s for s in everything
                 if min(s.values) < 5.0 and max(s.values) > 5.0]
        voltage = min((s for s in ramps if max(s.values) > 100.0),
                      key=lambda s: abs(s.values[-1] - 130.0))
        breaker = max((s for s in everything
                       if s.key.type_id in (TypeID.M_DP_NA_1,
                                            TypeID.M_DP_TB_1)
                       and {int(v) for v in s.values} <= {0, 2}),
                      key=len)
        power = max((s for s in ramps
                     if s is not voltage and s is not breaker),
                    key=lambda s: max(s.values))
        return voltage, breaker, power

    voltage, breaker, power = run_once(benchmark, analyze)

    lines = [render_series(voltage.times, voltage.values,
                           title="Fig. 20 (top) — terminal voltage "
                                 "ramp"),
             "",
             "Fig. 20 (middle) — breaker status:",
             *(f"  t={t:9.1f}s  state={int(v)}"
               for t, v in zip(breaker.times, breaker.values)),
             "",
             render_series(power.times, power.values,
                           title="Fig. 20 (bottom) — active power after "
                                 "connection")]
    record("fig20_generator_sync", "\n".join(lines))

    breaker_close = next(t for t, v in zip(breaker.times,
                                           breaker.values)
                         if int(v) == 2)
    # Voltage reached ~nominal before the breaker closed.
    ramped = [t for t, v in zip(voltage.times, voltage.values)
              if v > 0.95 * max(voltage.values)]
    assert min(ramped) <= breaker_close
    # Power only flows after the breaker closes.
    flowing = [t for t, v in zip(power.times, power.values) if v > 2.0]
    assert flowing and min(flowing) >= breaker_close - 1.0
    # And it then ramps substantially.
    assert max(power.values) > 10.0
