"""Fig. 9: outstations rejecting backup connections with RST/FIN.

Paper: a subset of outstations answers the backup server's TESTFR act
with a TCP reset; C2-O30 does so at a 430 s interval, an order of
magnitude above the others' ~tens of seconds.
"""

from _common import record, run_once

from repro.analysis import FlowAnalysis, render_table
from repro.datasets import Y1_RESET_CONNECTIONS


def test_fig9_reset_backup(benchmark, y1_capture):
    def analyze():
        analysis = FlowAnalysis.from_packets(
            "Y1", y1_capture.packets, names=y1_capture.host_names())
        return analysis.rejecting_pairs()

    pairs = run_once(benchmark, analyze)

    rows = [(pair.server, pair.outstation, pair.attempts,
             pair.rst_count, pair.fin_count,
             f"{pair.median_interval:.1f}s")
            for pair in pairs]
    record("fig9_reset_backup", render_table(
        ["Server", "Outstation", "Attempts", "RST", "FIN",
         "Median interval"], rows,
        title="Fig. 9 — backup-connection rejection (paper: 10 pairs, "
              "C2-O30 at 430 s)"))

    observed = {(pair.server, pair.outstation) for pair in pairs}
    allowed = {tuple(connection)
               for connection in Y1_RESET_CONNECTIONS}
    # Every detected pair is on the paper's list...
    assert observed <= allowed
    # ...and the fast RST/FIN rejectors are all present.
    expected = {("C1", "O5"), ("C1", "O6"), ("C1", "O7"), ("C1", "O8"),
                ("C1", "O9"), ("C1", "O35"), ("C2", "O24")}
    assert expected <= observed
    # O24 rejects with FIN, the rest with RST (paper: "FIN or RST").
    by_pair = {(p.server, p.outstation): p for p in pairs}
    assert by_pair[("C2", "O24")].fin_count > 0
    assert by_pair[("C1", "O5")].rst_count > 0
