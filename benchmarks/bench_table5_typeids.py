"""Table 5: the 54 IEC 104 typeIDs — catalog plus codec round-trip."""

from _common import record, run_once

from repro.analysis import render_table
from repro.iec104 import TYPE_ID_DESCRIPTIONS, TypeID
from repro.iec104.information_elements import ELEMENT_CODECS


def test_table5_typeids(benchmark):
    def roundtrip_all():
        # Exercise every typeID's codec via the shared test samples.
        import sys
        import pathlib
        sys.path.insert(0, str(pathlib.Path(__file__).parent.parent
                               / "tests" / "iec104"))
        from test_information_elements import SAMPLES
        verified = 0
        for type_id, codec in ELEMENT_CODECS.items():
            element = SAMPLES[type_id]
            encoded = codec.encode(element)
            decoded, consumed = codec.decode(memoryview(encoded), 0)
            assert consumed == len(encoded)
            verified += 1
        return verified

    verified = run_once(benchmark, roundtrip_all)

    rows = [(int(type_id), type_id.name, TYPE_ID_DESCRIPTIONS[type_id])
            for type_id in sorted(TypeID)]
    record("table5_typeids", render_table(
        ["Type ID Code", "Acronym", "Description"], rows,
        title=f"Table 5 — all {verified} IEC 104 typeIDs "
              "(each codec round-trip verified)"))

    assert verified == 54
    assert len(rows) == 54
