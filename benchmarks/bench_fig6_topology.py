"""Fig. 6: the observed network topology with Y1 -> Y2 deltas.

Regenerates the figure's content as text: servers, substations,
outstations, per-outstation IOA-count clouds and the change arrows.
"""

from _common import record, run_once

from repro.analysis import render_table
from repro.analysis.topology_diff import (ObservedTopology,
                                          diff_topologies)
from repro.datasets import roster, spec_by_name


def test_fig6_topology(benchmark, y1_extraction, y2_extraction):
    def observe():
        before = ObservedTopology.from_extraction(y1_extraction)
        after = ObservedTopology.from_extraction(y2_extraction)
        return before, after, diff_topologies(before, after)

    before, after, diff = run_once(benchmark, observe)

    substation_of = {spec.name: spec.substation
                     for spec in roster(1) + roster(2)}
    rows = []
    for name in sorted(before.outstations | after.outstations,
                       key=lambda n: int(n[1:])):
        ioa_y1 = before.ioa_counts.get(name)
        ioa_y2 = after.ioa_counts.get(name)
        if name in diff.added_outstations:
            status = "added (green)"
        elif name in diff.removed_outstations:
            status = "removed (red)"
        elif any(c.outstation == name for c in diff.ioa_changes):
            change = next(c for c in diff.ioa_changes
                          if c.outstation == name)
            status = f"IOAs {change.direction} (arrow)"
        else:
            status = "unchanged"
        servers = sorted(before.peers.get(name, set())
                         | after.peers.get(name, set()))
        rows.append((name, substation_of.get(name, "?"),
                     "/".join(servers),
                     "-" if ioa_y1 is None else ioa_y1,
                     "-" if ioa_y2 is None else ioa_y2, status))
    record("fig6_topology", render_table(
        ["Outstation", "Substation", "Servers", "IOAs Y1", "IOAs Y2",
         "Y1->Y2"], rows,
        title="Fig. 6 — observed topology with year-over-year deltas"))

    assert before.servers == {"C1", "C2", "C3", "C4"}
    assert len(before.outstations) == 49
    assert len(after.outstations) == 51
    # The stability statistic of Hypothesis 1 (paper: ~25%).
    assert 0.10 <= diff.outstation_stability <= 0.45
    # Every outstation talks only to servers of its own pair.
    for name, servers in before.peers.items():
        assert servers <= set(spec_by_name(name).pair)
