"""Record the capture→analysis pipeline's performance trajectory.

Produces/refreshes ``BENCH_pipeline.json`` at the repo root — a
machine-readable before/after record of the pipeline fast paths
(docs/performance.md):

* ``before`` — fixed measurements taken on the tree *prior* to the
  fast-path work (buffered pcap scan, zero-copy decode, windowed
  generation, capture cache), at ``time_scale=0.05``;
* ``after`` — the same metrics measured on the current tree;
* ``speedup`` — ``before / after`` per metric (>1 is faster).

Usage::

    python benchmarks/record_pipeline.py            # refresh "after"
    python benchmarks/record_pipeline.py --check    # CI regression gate

``--check`` re-measures only the cheap, machine-stable gate metrics
(strict parser and streaming decode) and exits non-zero when any is
more than ``--threshold``× (default 2.0) slower than the committed
``after`` value. A missing or unreadable committed record downgrades
the gate to a warning, so the first run on a fresh branch cannot fail.
"""

from __future__ import annotations

import argparse
import io
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _common import load_json, save_json  # noqa: E402

from repro.analysis import extract_apdus  # noqa: E402
from repro.datasets import CaptureConfig, generate_capture  # noqa: E402
from repro.iec104 import (IFrame, ShortFloat, StrictParser,  # noqa: E402
                          TolerantParser, TypeID, measurement)
from repro.netstack.pcap import (PcapReader, PcapRecord,  # noqa: E402
                                 PcapWriter)

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_pipeline.json"

#: Capture scale the generation/extraction metrics are measured at.
SCALE = 0.05

#: Seed-state numbers (same methodology, measured before the fast-path
#: work landed). Kept literal so the trajectory survives in git even
#: though the slow paths are gone.
BEFORE = {
    "strict_parse_ns_per_frame": 14352.6,
    "tolerant_parse_ns_per_frame": 14264.7,
    "extract_apdus_ns_per_packet": 28246.0,
    "pcap_read_ns_per_record": 2118.3,
    "generate_y1_wall_s": 3.475,
    "repeat_acquire_wall_s": 3.475,  # no cache: acquire == regenerate
}

#: The CI gate metrics: cheap to measure and independent of machine
#: I/O, so a 2x drift reliably means a code regression. The stream
#: metric covers the repro.stream pipeline (ByteChunk -> decode ->
#: dispatch) the same way the parser metric covers the codec; the
#: fleet metric covers the sharded supervisor end to end (worker
#: spawn, per-shard demux, snapshot merge).
GATE_METRICS = ("strict_parse_ns_per_frame",
                "stream_decode_ns_per_frame",
                "modbus_decode_ns_per_frame",
                "fleet_ns_per_packet_w1")

#: Extra --check headroom per metric: process spawn and pipe IPC make
#: the sharded metric far noisier than the pure-CPU gates, especially
#: on shared single-core CI runners.
GATE_HEADROOM = {"fleet_ns_per_packet_w1": 2.0}


def _frames(count: int = 2000) -> list[bytes]:
    frames = []
    for index in range(count):
        asdu = measurement(TypeID.M_ME_NC_1, 2001 + index % 20,
                           ShortFloat(value=50.0 + index % 10))
        frames.append(IFrame(asdu=asdu,
                             send_seq=index % (1 << 15)).encode())
    return frames


def _best_ns(func, rounds: int = 5) -> float:
    best = None
    for _ in range(rounds):
        start = time.perf_counter_ns()
        func()
        elapsed = time.perf_counter_ns() - start
        best = elapsed if best is None else min(best, elapsed)
    return float(best)


def measure_parsers(frame_count: int = 2000) -> dict:
    frames = _frames(frame_count)

    def strict():
        parser = StrictParser()
        for frame in frames:
            parser.parse_frame(frame)

    def tolerant():
        parser = TolerantParser()
        for frame in frames:
            parser.parse_frame(frame, link_key="x")

    return {
        "strict_parse_ns_per_frame":
            round(_best_ns(strict) / len(frames), 1),
        "tolerant_parse_ns_per_frame":
            round(_best_ns(tolerant) / len(frames), 1),
    }


def measure_stream(frame_count: int = 2000) -> dict:
    """Streaming throughput: synthetic frames through the event bus."""
    from repro.stream import (ByteChunk, ListSource, OnlineChains,
                              StreamPipeline)

    frames = _frames(frame_count)
    chunks = [ByteChunk(time_us=(index + 1) * 1000, src="C1", dst="O1",
                        data=frame)
              for index, frame in enumerate(frames)]

    def run():
        pipeline = StreamPipeline(ListSource(chunks),
                                  analyzers=[OnlineChains()])
        pipeline.run_until_exhausted()

    return {
        "stream_decode_ns_per_frame":
            round(_best_ns(run) / len(frames), 1),
    }


def measure_modbus(frame_count: int = 2000) -> dict:
    """Modbus/TCP MBAP decode throughput through the stream decoder.

    Mirrors the IEC 104 ``stream_decode_ns_per_frame`` gate one
    protocol over: synthetic read-holding-registers ADUs pushed
    byte-stream-wise through ``ModbusStreamDecoder`` — framing,
    resync bookkeeping and PDU decode, no packet or analyzer cost.
    """
    from repro.protocols.modbus import (MODBUS_SPEC, ModbusAdu,
                                        READ_HOLDING_REGISTERS)

    frames = [ModbusAdu(transaction=index & 0xFFFF, unit=1,
                        function=READ_HOLDING_REGISTERS,
                        data=bytes([4]) + (index & 0xFFFF).to_bytes(2, "big")
                        + ((index * 3) & 0xFFFF).to_bytes(2, "big")).encode()
              for index in range(frame_count)]

    def run():
        parser = MODBUS_SPEC.new_parser()
        decoder = MODBUS_SPEC.new_stream_decoder(parser, "bench")
        for frame in frames:
            decoder.feed(frame)

    return {
        "modbus_decode_ns_per_frame":
            round(_best_ns(run) / len(frames), 1),
    }


def measure_fleet(worker_counts: tuple[int, ...] = (1, 2, 4)) -> dict:
    """Sharded fleet wall-clock per packet, per worker count.

    Times the whole sharded drive loop — worker spawn, per-shard
    demux over one merged pcapng, pipeline analysis, typed snapshot
    merge — so the numbers are honest end-to-end costs. On a
    single-core host the multi-worker values record the sharding
    *overhead* (spawn + pipe IPC on top of the same CPU); the
    parallel win only shows up with real cores to spread over.
    """
    from repro.netstack.pcapng import write_pcapng
    from repro.stream import (MonitorPipelineFactory,
                              ShardedFleetSupervisor)

    capture = generate_capture(1, CaptureConfig(time_scale=0.001))
    names = capture.host_names()
    records = [PcapRecord(time_us=packet.time_us, data=packet.encode())
               for packet in capture.packets]
    results: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        merged = pathlib.Path(tmp) / "merged.pcapng"
        write_pcapng(merged, records)
        factory = MonitorPipelineFactory(names=names)
        for workers in worker_counts:
            def run(workers: int = workers) -> None:
                with ShardedFleetSupervisor(
                        factory, workers=workers, path=str(merged),
                        names=names) as fleet:
                    while True:
                        moved = fleet.step()
                        if not moved and fleet.exhausted:
                            break
                        if not moved:
                            time.sleep(0.005)
                    fleet.flush()
                    fleet.snapshot()

            results[f"fleet_ns_per_packet_w{workers}"] = round(
                _best_ns(run, rounds=2) / len(records), 1)
    return results


def measure_serve(clients: int = 5000, rounds: int = 3) -> dict:
    """Snapshot fan-out cost per subscriber for one poll.

    Times one ``SnapshotHub.publish`` reaching ``clients`` concurrent
    subscribers — the serialized payload and the WebSocket frame are
    built once and shared by reference, so this is pure wake-up and
    delivery cost, flat in payload size. Not a CI gate metric: the
    asyncio scheduler's wake-up cost is too host-dependent.
    """
    import asyncio

    from repro.serve import SnapshotHub
    from repro.stream import LinkSnapshot, StageCounters

    snapshot = LinkSnapshot(
        link="C1-O12", time_us=1_000_000, packets=100, events=90,
        failures=0, late_items=0, order_violations=0,
        reorder_pending=0, reassemblers=0,
        stages={"ingest": StageCounters(received=100, emitted=100)},
        eviction={"sweeps": 1},
        analyzers={"chains": {"connections": 3}})

    async def fanout() -> float:
        hub = SnapshotHub()
        hub.bind(asyncio.get_running_loop())

        async def subscriber() -> int:
            async for payload, _skipped in hub.subscribe(
                    start_with_latest=False):
                return payload.seq
            return 0

        tasks = [asyncio.ensure_future(subscriber())
                 for _ in range(clients)]
        await asyncio.sleep(0)  # let every subscriber start waiting
        start = time.perf_counter_ns()
        hub.publish(snapshot)
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter_ns() - start
        assert hub.serializations == 1
        hub.close()
        return float(elapsed)

    best = min(asyncio.run(fanout()) for _ in range(rounds))
    return {"serve_fanout_ns_per_client": round(best / clients, 1)}


def measure_pipeline(scale: float = SCALE) -> dict:
    """Generation, cached re-acquisition, extraction and pcap read."""
    import os

    from repro.perf import cached_generate

    results: dict = {}
    start = time.perf_counter()
    capture = generate_capture(1, CaptureConfig(time_scale=scale))
    results["generate_y1_wall_s"] = round(time.perf_counter() - start, 3)
    results["generate_y1_packets"] = len(capture.packets)

    # Repeat acquisition through the content-addressed cache: one miss
    # (generate + store), then time the hit — what every benchmark run
    # after the first pays.
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            cached_generate(1, CaptureConfig(time_scale=scale))
            start = time.perf_counter()
            cached_generate(1, CaptureConfig(time_scale=scale))
            results["repeat_acquire_wall_s"] = round(
                time.perf_counter() - start, 3)
        finally:
            del os.environ["REPRO_CACHE_DIR"]

    from repro.analysis import PacketCapture
    subset = PacketCapture(packets=capture.packets[:20000],
                           names=capture.host_names())
    results["extract_apdus_ns_per_packet"] = round(
        _best_ns(lambda: extract_apdus(subset), rounds=3)
        / len(subset.packets), 1)

    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    for packet in capture.packets:
        writer.write(PcapRecord(time_us=packet.time_us,
                                data=packet.encode()))
    raw = buffer.getvalue()

    def read_all():
        return sum(1 for _ in PcapReader(io.BytesIO(raw)))

    results["pcap_read_ns_per_record"] = round(
        _best_ns(read_all, rounds=3) / len(capture.packets), 1)

    # Full streaming pipeline (frame -> reassemble -> decode ->
    # dispatch with the standard analyzer set) over the same subset
    # the batch extract_apdus metric uses.
    from repro.stream import (CaptureSource, LiveFlowTable,
                              OnlineChains, StreamPipeline)

    def stream_all():
        pipeline = StreamPipeline(
            CaptureSource(subset),
            analyzers=[LiveFlowTable(), OnlineChains()])
        pipeline.run_until_exhausted()

    results["stream_pipeline_ns_per_packet"] = round(
        _best_ns(stream_all, rounds=3) / len(subset.packets), 1)
    return results


def build_document(after: dict) -> dict:
    speedup = {metric: round(BEFORE[metric] / after[metric], 2)
               for metric in BEFORE if after.get(metric)}
    return {"scale": SCALE, "before": BEFORE, "after": after,
            "speedup": speedup}


def cmd_record(args) -> int:
    after = measure_parsers()
    after.update(measure_stream())
    after.update(measure_modbus())
    after.update(measure_fleet())
    after.update(measure_serve())
    after.update(measure_pipeline())
    document = build_document(after)
    save_json(args.out, document)
    print(f"wrote {args.out}")
    for metric, ratio in sorted(document["speedup"].items()):
        print(f"  {metric}: {ratio}x")
    return 0


def cmd_check(args) -> int:
    committed = load_json(args.out)
    measured = measure_parsers()
    measured.update(measure_stream())
    measured.update(measure_modbus())
    measured.update(measure_fleet(worker_counts=(1,)))
    failed = []
    for metric in GATE_METRICS:
        value = measured[metric]
        baseline = (committed or {}).get("after", {}).get(metric)
        if not baseline:
            print(f"WARNING: no committed baseline for {metric} at "
                  f"{args.out}; measured {value} ns (gate skipped)")
            continue
        limit = args.threshold * GATE_HEADROOM.get(metric, 1.0)
        ratio = value / baseline
        print(f"{metric}: measured {value} ns vs committed "
              f"{baseline} ns ({ratio:.2f}x, limit {limit:.1f}x)")
        if ratio > limit:
            failed.append(metric)
    if failed:
        print(f"FAIL: regressed past the per-metric limit vs the "
              f"committed baseline: {', '.join(failed)}")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=RESULT_PATH,
                        help="result path (default: BENCH_pipeline.json"
                             " at the repo root)")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: compare a fresh "
                             "strict-parser measurement against the "
                             "committed record")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="--check failure ratio (default 2.0)")
    args = parser.parse_args(argv)
    return cmd_check(args) if args.check else cmd_record(args)


if __name__ == "__main__":
    raise SystemExit(main())
