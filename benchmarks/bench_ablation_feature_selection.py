"""Ablation: the paper's 10 -> 5 feature reduction for clustering.

Reproduces the per-feature Silhouette screening and compares cluster
quality between the full ten-feature space and the selected five.
"""

from _common import record, run_once

from repro.analysis import (ALL_FEATURES, SELECTED_FEATURES,
                            extract_sessions, feature_matrix, kmeans,
                            per_feature_silhouette, render_table,
                            silhouette_score)


def test_ablation_feature_selection(benchmark, y1_extraction):
    def screen():
        sessions = extract_sessions(y1_extraction)
        full = feature_matrix(sessions, features=ALL_FEATURES)
        scores = per_feature_silhouette(full, ALL_FEATURES, k=5,
                                        seed=104)
        selected = feature_matrix(sessions, features=SELECTED_FEATURES)
        quality = {}
        for label, matrix in (("all 10 features", full),
                              ("selected 5 features", selected)):
            result = kmeans(matrix, 5, seed=104)
            quality[label] = silhouette_score(matrix, result.labels)
        return scores, quality

    scores, quality = run_once(benchmark, screen)

    rows = [(name, f"{score:.3f}",
             "kept" if name in SELECTED_FEATURES else "dropped")
            for name, score in sorted(scores.items(),
                                      key=lambda item: -item[1])]
    text = render_table(["Feature", "single-feature Silhouette",
                         "decision"], rows,
                        title="Ablation — per-feature Silhouette screen")
    text += "\n\n" + render_table(
        ["Feature space", "K=5 Silhouette"],
        [(label, f"{score:.3f}") for label, score in quality.items()])
    record("ablation_feature_selection", text)

    # The selected five features cluster at least as crisply as the
    # raw ten (the motivation for the paper's reduction).
    assert quality["selected 5 features"] \
        >= quality["all 10 features"] - 0.05
    assert quality["selected 5 features"] > 0.4
