"""Fig. 19: AGC set-point commands and the generators' response.

Paper: the bottom series is the stream of AGC control commands (I50);
the top series show generator outputs tracking those commands through
the unmet-load event.
"""

from _common import record, run_once

from repro.analysis import (agc_command_series, render_series,
                            station_series)


def test_fig19_agc_response(benchmark, y1_extraction):
    def analyze():
        commands = agc_command_series(y1_extraction)
        responses = {}
        for station, command in commands.items():
            # The responding output is the station series that tracks
            # the commanded level — identified from the data, since
            # value heuristics cannot tell a steady 260 MW output from
            # a voltage.
            candidates = [s for s in station_series(y1_extraction,
                                                    station)
                          if len(s) >= 3 and s.key.ioa != 100]
            if candidates:
                responses[station] = min(
                    candidates,
                    key=lambda s: abs(s.values[-1] - command.values[-1]))
        return commands, responses

    commands, responses = run_once(benchmark, analyze)

    assert len(commands) == 4  # the four AGC participants
    station = sorted(commands)[0]
    command = commands[station]
    lines = [render_series(command.times, command.values,
                           title=f"Fig. 19 (bottom) — AGC set points "
                                 f"to {station} (I50)")]
    if station in responses:
        response = responses[station]
        lines.append(render_series(
            response.times, response.values,
            title=f"Fig. 19 (top) — {station} active power response"))
    record("fig19_agc_response", "\n\n".join(lines))

    # Enough dispatches to constitute a control series.
    assert all(len(series) >= 3 for series in commands.values())
    # The generator's observed output approaches the last set point.
    for station, command in commands.items():
        response = responses.get(station)
        if response is None or len(response) < 3:
            continue
        final_setpoint = command.values[-1]
        final_output = response.values[-1]
        assert abs(final_output - final_setpoint) \
            < 0.15 * max(1.0, abs(final_setpoint)), station
