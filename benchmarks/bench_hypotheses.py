"""Section 5: the paper's five hypotheses, evaluated end to end.

Paper verdicts: H1 mixed ("the answer is not clear"), H2 rejected
(legacy field widths), H3 rejected (sub-second flows dominate), H4
supported (clear clusters), H5 supported (DPI reveals physics).
"""

from _common import record, run_once

from repro.analysis import Verdict, evaluate_all, render_table


def test_hypotheses(benchmark, y1_capture, y1_extraction,
                    y2_extraction):
    def evaluate():
        return evaluate_all(y1_capture.packets, y1_extraction,
                            y2_extraction,
                            names=y1_capture.host_names())

    results = run_once(benchmark, evaluate)

    rows = [(result.hypothesis, result.statement,
             result.verdict.value, result.evidence)
            for result in results]
    record("hypotheses", render_table(
        ["H", "Statement", "Verdict", "Evidence"], rows,
        title="Section 5 hypotheses — paper: mixed / rejected / "
              "rejected / supported / supported"))

    verdicts = {result.hypothesis: result.verdict
                for result in results}
    assert verdicts["H1"] is Verdict.MIXED
    assert verdicts["H2"] is Verdict.REJECTED
    assert verdicts["H3"] is Verdict.REJECTED
    assert verdicts["H4"] is Verdict.SUPPORTED
    assert verdicts["H5"] is Verdict.SUPPORTED
