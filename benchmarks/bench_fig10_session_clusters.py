"""Fig. 10: PCA projection of K-means++ clustered Y1 sessions (K=5)."""

import numpy as np

from _common import record, run_once

from repro.analysis import (extract_sessions, feature_matrix, fit_pca,
                            kmeans, render_table, silhouette_score)


def test_fig10_session_clusters(benchmark, y1_extraction):
    def cluster():
        sessions = extract_sessions(y1_extraction)
        matrix = feature_matrix(sessions)
        result = kmeans(matrix, 5, seed=104)
        projection = fit_pca(matrix, 2)
        return sessions, matrix, result, projection

    sessions, matrix, result, projection = run_once(benchmark, cluster)

    projected = projection.transform(matrix)
    rows = []
    for cluster_id in range(5):
        members = np.where(result.labels == cluster_id)[0]
        center = projected[members].mean(axis=0)
        examples = ", ".join(sessions[i].name for i in members[:3])
        rows.append((cluster_id, len(members),
                     f"({center[0]:+.2f}, {center[1]:+.2f})", examples))
    evr = projection.explained_variance_ratio
    record("fig10_session_clusters", render_table(
        ["Cluster", "Sessions", "PCA centroid", "Examples"], rows,
        title=f"Fig. 10 — K=5 session clusters in PCA plane "
              f"(PC1+PC2 explain {100 * evr.sum():.0f}% of variance)"))

    assert result.k == 5
    assert len(sessions) > 80
    assert silhouette_score(matrix, result.labels) > 0.4
    assert evr.sum() > 0.5
