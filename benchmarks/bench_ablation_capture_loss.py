"""Ablation: analysis robustness under capture loss.

A span port dropping frames is routine in production taps. The
endpoints' TCP exchange is unaffected — only the *capture* has holes —
so the pipeline must resynchronize framing and skip reassembly gaps.
This bench measures APDU recovery at increasing loss rates.
"""

from _common import BENCH_SCALE, record, run_once

from repro.analysis import extract_apdus, render_table
from repro.datasets import CaptureConfig, generate_capture


def test_ablation_capture_loss(benchmark):
    def sweep():
        results = []
        baseline = None
        for loss in (0.0, 0.01, 0.05):
            capture = generate_capture(1, CaptureConfig(
                time_scale=max(0.01, BENCH_SCALE / 2),
                max_outstations=16, capture_loss_probability=loss))
            extraction = extract_apdus(capture)
            recovered = len(extraction.events)
            if baseline is None:
                baseline = recovered
            results.append((loss, capture.tap.lost, recovered,
                            len(extraction.failures),
                            recovered / baseline))
        return results

    results = run_once(benchmark, sweep)

    rows = [(f"{100 * loss:.0f}%", lost, recovered, failures,
             f"{100 * fraction:.1f}%")
            for loss, lost, recovered, failures, fraction in results]
    record("ablation_capture_loss", render_table(
        ["Capture loss", "Frames lost", "APDUs recovered",
         "Parse failures", "Recovery vs lossless"], rows,
        title="Ablation — APDU recovery under capture loss"))

    lossless = results[0]
    assert lossless[3] == 0  # no failures without loss
    for loss, _, recovered, failures, fraction in results[1:]:
        # Recovery degrades roughly proportionally, never collapses.
        assert fraction > 1.0 - 6 * loss
        # Parse failures stay a tiny fraction of recovered APDUs
        # (framing resync works).
        assert failures < 0.05 * recovered
