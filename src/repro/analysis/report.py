"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an ASCII table with padded columns."""
    body: list[list[str]] = [[str(cell) for cell in row]
                             for row in rows]
    widths: list[int] = [len(header) for header in headers]
    for row in body:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    separator = "-+-".join("-" * width for width in widths)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in body:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(bins: Sequence[tuple[float, float, int]],
                     width: int = 40, title: str | None = None) -> str:
    """Render a horizontal bar histogram (Fig. 8-style)."""
    lines: list[str] = [title] if title else []
    peak = max((count for _, _, count in bins), default=0)
    for low, high, count in bins:
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"[{low:9.3f}s, {high:9.3f}s) {count:6d} {bar}")
    return "\n".join(lines)


def render_series(times: Sequence[float], values: Sequence[float],
                  width: int = 60, height: int = 12,
                  title: str | None = None) -> str:
    """Render a coarse ASCII line chart for a time series."""
    if len(times) != len(values):
        raise ValueError("times and values must have equal length")
    lines: list[str] = [title] if title else []
    if not values:
        lines.append("(empty series)")
        return "\n".join(lines)
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    t0, t1 = times[0], times[-1]
    t_span = (t1 - t0) or 1.0
    grid: list[list[str]] = [[" "] * width for _ in range(height)]
    for time, value in zip(times, values):
        x = min(width - 1, int((time - t0) / t_span * (width - 1)))
        y = min(height - 1, int((value - low) / span * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines.append(f"max={high:.3f}")
    lines.extend("".join(row) for row in grid)
    lines.append(f"min={low:.3f}  (t: {t0:.1f}s .. {t1:.1f}s)")
    return "\n".join(lines)
