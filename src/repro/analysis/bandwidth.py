"""Bandwidth and timing characteristics (paper §1, §6: "traffic
analysis of TCP flows, bandwidth used, and timing characteristics").

Provides per-session throughput series, inter-arrival statistics, and
autocorrelation-based periodicity detection — SCADA traffic is largely
machine-paced, so strong periodic components are the expected baseline
and their absence (or change) is itself a signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .apdu_stream import ApduEvent, StreamExtraction


@dataclass(frozen=True)
class ThroughputSeries:
    """Bytes-per-second over fixed bins for one traffic subset."""

    start: float
    bin_size: float
    bytes_per_bin: tuple[float, ...]

    @property
    def times(self) -> list[float]:
        return [self.start + (index + 0.5) * self.bin_size
                for index in range(len(self.bytes_per_bin))]

    @property
    def rates(self) -> list[float]:
        return [value / self.bin_size for value in self.bytes_per_bin]

    @property
    def mean_rate(self) -> float:
        if not self.bytes_per_bin:
            return 0.0
        return float(np.mean(self.bytes_per_bin)) / self.bin_size

    @property
    def peak_rate(self) -> float:
        if not self.bytes_per_bin:
            return 0.0
        return max(self.bytes_per_bin) / self.bin_size


def throughput(events: Sequence[ApduEvent],
               bin_size: float = 10.0) -> ThroughputSeries:
    """Wire-byte throughput of a set of APDU events."""
    if bin_size <= 0:
        raise ValueError("bin_size must be positive")
    if not events:
        return ThroughputSeries(start=0.0, bin_size=bin_size,
                                bytes_per_bin=())
    ordered = sorted(events, key=lambda event: event.time_us)
    start = ordered[0].time_us / 1_000_000
    end = ordered[-1].time_us / 1_000_000
    bins = max(1, int((end - start) / bin_size) + 1)
    totals = [0.0] * bins
    for event in ordered:
        seconds = event.time_us / 1_000_000
        index = min(bins - 1, int((seconds - start) / bin_size))
        totals[index] += event.wire_bytes
    return ThroughputSeries(start=start, bin_size=bin_size,
                            bytes_per_bin=tuple(totals))


@dataclass(frozen=True)
class InterArrivalStats:
    """Timing statistics of one event stream."""

    count: int
    mean: float
    median: float
    p95: float
    #: Coefficient of variation: ~0 for periodic, ~1 for Poisson,
    #: > 1 for bursty traffic.
    cv: float

    @property
    def is_machine_paced(self) -> bool:
        """Heuristic for strongly regular (machine-driven) timing."""
        return self.count >= 5 and self.cv < 0.5


def inter_arrival_stats(events: Sequence[ApduEvent],
                        max_gap: float | None = None
                        ) -> InterArrivalStats:
    """Inter-arrival statistics of an event stream.

    ``max_gap`` drops gaps larger than the given value — use it to
    exclude the idle time between separate capture days, which would
    otherwise swamp the within-capture timing statistics.
    """
    times = sorted(event.time_us / 1_000_000 for event in events)
    gaps = np.diff(times)
    if max_gap is not None:
        gaps = gaps[gaps <= max_gap]
    if len(gaps) == 0:
        return InterArrivalStats(count=len(times), mean=0.0, median=0.0,
                                 p95=0.0, cv=0.0)
    mean = float(gaps.mean())
    cv = float(gaps.std() / mean) if mean > 0 else 0.0
    return InterArrivalStats(count=len(times), mean=mean,
                             median=float(np.median(gaps)),
                             p95=float(np.percentile(gaps, 95)), cv=cv)


@dataclass(frozen=True)
class Periodicity:
    """Dominant periodic component of an event stream."""

    period: float | None
    strength: float  # normalized autocorrelation peak, 0..1

    @property
    def is_periodic(self) -> bool:
        return self.period is not None and self.strength > 0.3


def detect_period(timestamps: Sequence[float], bin_size: float = 1.0,
                  max_period: float = 600.0) -> Periodicity:
    """Find the dominant period via autocorrelation of binned counts.

    Returns the lag (in seconds) of the highest autocorrelation peak
    within (bin_size, max_period], or ``None`` when nothing repeats.
    """
    if bin_size <= 0 or max_period <= bin_size:
        raise ValueError("need 0 < bin_size < max_period")
    times = sorted(timestamps)
    if len(times) < 4:
        return Periodicity(period=None, strength=0.0)
    start, end = times[0], times[-1]
    bins = int((end - start) / bin_size) + 1
    counts = np.zeros(bins)
    for time in times:
        counts[min(bins - 1, int((time - start) / bin_size))] += 1
    centered = counts - counts.mean()
    denominator = float((centered ** 2).sum())
    if denominator <= 0:
        return Periodicity(period=None, strength=0.0)
    max_lag = min(bins - 1, int(max_period / bin_size))
    if max_lag < 1:
        return Periodicity(period=None, strength=0.0)
    best_lag, best_value = None, 0.0
    previous = None
    values = []
    for lag in range(1, max_lag + 1):
        value = float((centered[:-lag] * centered[lag:]).sum()
                      ) / denominator
        values.append(value)
    # Pick the first local maximum above threshold; fall back to the
    # global maximum.
    for index in range(1, len(values) - 1):
        if values[index] >= values[index - 1] \
                and values[index] >= values[index + 1] \
                and values[index] > 0.1:
            best_lag, best_value = index + 1, values[index]
            break
    if best_lag is None and values:
        best_index = int(np.argmax(values))
        if values[best_index] > 0.1:
            best_lag, best_value = best_index + 1, values[best_index]
    if best_lag is None:
        return Periodicity(period=None, strength=0.0)
    return Periodicity(period=best_lag * bin_size,
                       strength=max(0.0, min(1.0, best_value)))


@dataclass(frozen=True)
class SessionTimingProfile:
    """Combined timing profile of one session."""

    session: tuple[str, str]
    stats: InterArrivalStats
    periodicity: Periodicity
    mean_rate_bps: float


def timing_profiles(extraction: StreamExtraction,
                    min_packets: int = 10,
                    bin_size: float = 1.0,
                    max_gap: float = 600.0
                    ) -> list[SessionTimingProfile]:
    """Timing profile per session — SCADA's predictability made
    measurable (the paper's Hypothesis 1 at the session level).

    ``max_gap`` excludes idle stretches longer than the given number of
    seconds (the boundaries between capture days)."""
    profiles = []
    for session, events in sorted(extraction.by_session().items()):
        if len(events) < min_packets:
            continue
        stats = inter_arrival_stats(events, max_gap=max_gap)
        duration = ((events[-1].time_us - events[0].time_us) / 1_000_000
                    if len(events) > 1 else 0.0)
        max_period = max(bin_size * 4, min(600.0, duration / 2))
        periodicity = detect_period(
            [event.time_us / 1_000_000 for event in events],
            bin_size=bin_size, max_period=max_period)
        series = throughput(events, bin_size=max(10.0, bin_size))
        profiles.append(SessionTimingProfile(
            session=session, stats=stats, periodicity=periodicity,
            mean_rate_bps=8.0 * series.mean_rate))
    return profiles
