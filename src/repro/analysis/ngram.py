"""N-gram language models over APDU token sequences (§6.3.1, Eq. 1-2).

The paper tokenizes each APDU per Table 4 (``S``, ``U1``..``U32``,
``I<typeID>``) and fits maximum-likelihood N-gram models:

    P(t_n | t_{n-1}) = C(t_{n-1} t_n) / C(t_{n-1})

Sequence boundaries are padded with ``<s>``/``</s>`` markers so the
model is a proper distribution over finite sequences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Paper Table 4 token catalog (descriptions verbatim).
TOKEN_DESCRIPTIONS: dict[str, str] = {
    "S": "Ack of I APDUs",
    "U1": "Start sending I APDUs",
    "U2": "Ack of STARTDT",
    "U4": "Stop sending I APDUs",
    "U8": "Ack of STOPDT",
    "U16": "Test status of connection",
    "U32": "Ack of TESTFR",
}

START_TOKEN = "<s>"
END_TOKEN = "</s>"


def is_valid_token(token: str) -> bool:
    """Check a token against the protocol-generic token grammar.

    The IEC 104 alphabet is the paper's Table 4 (``S``, ``U1``..
    ``U32``, ``I<typeID>`` with type IDs 1..127). The Modbus/TCP
    alphabet layers on top (:mod:`repro.protocols.modbus`): ``F<fc>``
    for a normal PDU and ``X<fc>`` for an exception response, with
    function codes 1..127 — so the same Markov/whitelist models fit
    either protocol's sequences unchanged.
    """
    if token in TOKEN_DESCRIPTIONS or token in (START_TOKEN, END_TOKEN):
        return True
    if token[:1] in ("I", "F", "X") and token[1:].isdigit():
        return 1 <= int(token[1:]) <= 127
    return False


@dataclass
class NgramModel:
    """MLE N-gram model with optional add-k smoothing."""

    order: int = 2
    smoothing_k: float = 0.0
    _context_counts: dict[tuple[str, ...], int] = field(
        default_factory=dict)
    _ngram_counts: dict[tuple[str, ...], int] = field(default_factory=dict)
    vocabulary: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.smoothing_k < 0:
            raise ValueError("smoothing_k must be >= 0")

    def _pad(self, sequence: Sequence[str]) -> list[str]:
        return ([START_TOKEN] * (self.order - 1) + list(sequence)
                + [END_TOKEN])

    def fit(self, sequences: Iterable[Sequence[str]]) -> "NgramModel":
        for sequence in sequences:
            for token in sequence:
                if not is_valid_token(token):
                    raise ValueError(f"invalid APDU token {token!r}")
            padded = self._pad(sequence)
            self.vocabulary.update(padded)
            for index in range(len(padded) - self.order + 1):
                ngram = tuple(padded[index:index + self.order])
                context = ngram[:-1]
                self._ngram_counts[ngram] = (
                    self._ngram_counts.get(ngram, 0) + 1)
                self._context_counts[context] = (
                    self._context_counts.get(context, 0) + 1)
        return self

    def probability(self, token: str, context: Sequence[str] = ()) -> float:
        """P(token | context) by MLE (paper Eq. 2), with add-k backup."""
        context = tuple(context)[-(self.order - 1):] if self.order > 1 \
            else ()
        if self.order > 1 and len(context) < self.order - 1:
            context = ((START_TOKEN,) * (self.order - 1 - len(context))
                       + context)
        ngram = context + (token,)
        count = self._ngram_counts.get(ngram, 0)
        context_total = self._context_counts.get(context, 0)
        if self.smoothing_k > 0:
            vocab = max(1, len(self.vocabulary))
            return ((count + self.smoothing_k)
                    / (context_total + self.smoothing_k * vocab))
        if context_total == 0:
            return 0.0
        return count / context_total

    def sequence_log_probability(self, sequence: Sequence[str]) -> float:
        """log P(w_1..w_n) by the chain rule (paper Eq. 1)."""
        padded = self._pad(sequence)
        log_prob = 0.0
        for index in range(self.order - 1, len(padded)):
            context = tuple(padded[index - self.order + 1:index])
            probability = self.probability(padded[index], context)
            if probability <= 0.0:
                return float("-inf")
            log_prob += math.log(probability)
        return log_prob

    def perplexity(self, sequences: Iterable[Sequence[str]]) -> float:
        """Per-token perplexity over held-out sequences."""
        total_log = 0.0
        total_tokens = 0
        for sequence in sequences:
            log_prob = self.sequence_log_probability(sequence)
            if math.isinf(log_prob):
                return float("inf")
            total_log += log_prob
            total_tokens += len(sequence) + 1  # + END token
        if total_tokens == 0:
            raise ValueError("no tokens to evaluate")
        return math.exp(-total_log / total_tokens)

    def bigrams(self) -> dict[tuple[str, ...], float]:
        """All learned N-grams with their MLE probabilities."""
        return {ngram: self._ngram_counts[ngram]
                / self._context_counts[ngram[:-1]]
                for ngram in self._ngram_counts}
