"""Connection lifecycle timelines.

Reconstructs, per (server, outstation) connection, the sequence of
operationally meaningful events — TCP establishment and teardown,
STARTDT, general interrogations, switchover promotions, backup
rejections — with timestamps. This is the narrative form of the
paper's Figs. 9 and 16: instead of a Markov chain that abstracts time
away, a timeline shows *when* the backup was refused or the standby
took over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..iec104.apci import IFrame, UFrame
from ..iec104.constants import Cause, TypeID, UFunction
from .apdu_stream import StreamExtraction, is_iec104
from .sources import PacketSource, resolve_source


class TimelineEvent(enum.Enum):
    TCP_SYN = "TCP connection attempt"
    TCP_FIN = "TCP graceful close"
    TCP_RST = "TCP reset"
    STARTDT = "data transfer started"
    STOPDT = "data transfer stopped"
    INTERROGATION = "general interrogation"
    FIRST_DATA = "first measurement report"
    KEEPALIVE_UNANSWERED = "TESTFR act without con"
    SWITCHOVER = "secondary promoted to primary"


@dataclass(frozen=True)
class TimelineEntry:
    """One lifecycle event; ``time_us`` is canonical integer
    microseconds."""

    time_us: int
    event: TimelineEvent
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        seconds = self.time_us / 1_000_000
        return f"t={seconds:10.3f}s  {self.event.value}{suffix}"


@dataclass
class ConnectionTimeline:
    """All lifecycle events of one (server, outstation) connection."""

    connection: tuple[str, str]
    entries: list[TimelineEntry] = field(default_factory=list)

    def add(self, time_us: int, event: TimelineEvent,
            detail: str = "") -> None:
        self.entries.append(TimelineEntry(time_us=time_us, event=event,
                                          detail=detail))

    def sort(self) -> None:
        self.entries.sort(key=lambda entry: entry.time_us)

    def events(self, kind: TimelineEvent) -> list[TimelineEntry]:
        return [entry for entry in self.entries if entry.event is kind]

    @property
    def reject_count(self) -> int:
        """Backup-rejection pattern: teardowns (RST *or* FIN — the
        paper saw both) racing the connection attempts."""
        return (len(self.events(TimelineEvent.TCP_RST))
                + len(self.events(TimelineEvent.TCP_FIN)))

    @property
    def has_switchover(self) -> bool:
        return bool(self.events(TimelineEvent.SWITCHOVER))

    def render(self, limit: int = 20) -> str:
        lines = [f"{self.connection[0]}-{self.connection[1]}:"]
        lines.extend(f"  {entry}" for entry in self.entries[:limit])
        if len(self.entries) > limit:
            lines.append(f"  ... {len(self.entries) - limit} more "
                         "events")
        return "\n".join(lines)


def _host_pair(src: str, dst: str) -> tuple[str, str]:
    if src.startswith("C") and not dst.startswith("C"):
        return (src, dst)
    if dst.startswith("C") and not src.startswith("C"):
        return (dst, src)
    first, second = sorted((src, dst))
    return (first, second)


def build_timelines(source: PacketSource,
                    extraction: StreamExtraction
                    ) -> dict[tuple[str, str], ConnectionTimeline]:
    """Reconstruct lifecycle timelines from packets + decoded APDUs.

    Capture-first: ``source`` may be a capture object, a pcap reader
    or a plain packet iterable.
    """
    packets, names = resolve_source(source, caller="build_timelines")
    timelines: dict[tuple[str, str], ConnectionTimeline] = {}

    def timeline_for(pair: tuple[str, str]) -> ConnectionTimeline:
        timeline = timelines.get(pair)
        if timeline is None:
            timeline = ConnectionTimeline(connection=pair)
            timelines[pair] = timeline
        return timeline

    # TCP-level events straight from the packets.
    for packet in packets:
        if not is_iec104(packet):
            continue
        flags = packet.flags
        if not (flags.syn or flags.fin or flags.rst):
            continue
        src = names.get(packet.ip.src, str(packet.ip.src))
        dst = names.get(packet.ip.dst, str(packet.ip.dst))
        pair = _host_pair(src, dst)
        timeline = timeline_for(pair)
        if flags.syn and not flags.ack:
            timeline.add(packet.time_us, TimelineEvent.TCP_SYN,
                         detail=f"from {src}")
        elif flags.rst:
            timeline.add(packet.time_us, TimelineEvent.TCP_RST,
                         detail=f"by {src}")
        elif flags.fin:
            timeline.add(packet.time_us, TimelineEvent.TCP_FIN,
                         detail=f"by {src}")

    # Application-level events from decoded APDUs.
    saw_keepalive: dict[tuple[str, str], bool] = {}
    saw_data: dict[tuple[str, str], bool] = {}
    pending_testfr: dict[tuple[str, str], int | None] = {}
    for event in sorted(extraction.events,
                        key=lambda event: event.time_us):
        pair = _host_pair(event.src, event.dst)
        timeline = timeline_for(pair)
        apdu = event.apdu
        if isinstance(apdu, UFrame):
            if apdu.function is UFunction.STARTDT_ACT:
                detail = ""
                if saw_keepalive.get(pair):
                    timeline.add(event.time_us,
                                 TimelineEvent.SWITCHOVER,
                                 detail="keep-alives preceded STARTDT")
                timeline.add(event.time_us, TimelineEvent.STARTDT,
                             detail)
            elif apdu.function is UFunction.STOPDT_ACT:
                timeline.add(event.time_us, TimelineEvent.STOPDT)
            elif apdu.function is UFunction.TESTFR_ACT:
                saw_keepalive[pair] = True
                pending_testfr[pair] = event.time_us
            elif apdu.function is UFunction.TESTFR_CON:
                pending_testfr[pair] = None
        elif isinstance(apdu, IFrame):
            asdu = apdu.asdu
            if asdu.type_id is TypeID.C_IC_NA_1 \
                    and asdu.cause is Cause.ACTIVATION:
                timeline.add(event.time_us,
                             TimelineEvent.INTERROGATION,
                             detail=f"by {event.src}")
            elif not asdu.is_command and not saw_data.get(pair):
                saw_data[pair] = True
                timeline.add(event.time_us, TimelineEvent.FIRST_DATA,
                             detail=asdu.token)

    # Unanswered keep-alives (the Fig. 9 probe the RTU killed).
    for pair, pending in pending_testfr.items():
        if pending is not None:
            timelines[pair].add(pending,
                                TimelineEvent.KEEPALIVE_UNANSWERED)

    for timeline in timelines.values():
        timeline.sort()
    return timelines


def rejected_backup_timelines(
        timelines: dict[tuple[str, str], ConnectionTimeline],
        min_rejects: int = 3) -> list[ConnectionTimeline]:
    """Timelines showing the Fig. 9 reject pattern."""
    return sorted((timeline for timeline in timelines.values()
                   if timeline.reject_count >= min_rejects
                   and not timeline.events(TimelineEvent.FIRST_DATA)),
                  key=lambda timeline: -timeline.reject_count)


def switchover_timelines(
        timelines: dict[tuple[str, str], ConnectionTimeline]
        ) -> list[ConnectionTimeline]:
    """Timelines showing the Fig. 16 promotion pattern."""
    return [timeline for timeline in timelines.values()
            if timeline.has_switchover]
