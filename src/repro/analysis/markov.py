"""Markov-chain models of per-connection APDU sequences (§6.3.1).

Each connection's token sequence induces a Markov chain whose nodes are
unique tokens and whose edges are observed transitions with MLE
probabilities. The (nodes, edges) size plane of paper Fig. 13 cleanly
separates three behaviours:

* point (1,1): the reset-backup pathology — only repeated ``U16``;
* the "square": ordinary primaries/secondaries (no interrogation);
* the "ellipse": connections containing the ``I100`` interrogation
  command, whose answer bursts add many previously-unseen I types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from .apdu_stream import ApduEvent, StreamExtraction, tokenize


@dataclass(frozen=True)
class Transition:
    source: str
    target: str
    count: int
    probability: float


@dataclass
class MarkovChain:
    """First-order Markov chain inferred from one token sequence."""

    nodes: tuple[str, ...] = ()
    transitions: tuple[Transition, ...] = ()

    @classmethod
    def from_tokens(cls, tokens: Sequence[str]) -> "MarkovChain":
        if not tokens:
            return cls()
        counts: dict[tuple[str, str], int] = {}
        outgoing: dict[str, int] = {}
        for source, target in zip(tokens, tokens[1:]):
            counts[(source, target)] = counts.get((source, target), 0) + 1
            outgoing[source] = outgoing.get(source, 0) + 1
        nodes = tuple(dict.fromkeys(tokens))
        transitions = tuple(sorted(
            (Transition(source=source, target=target, count=count,
                        probability=count / outgoing[source])
             for (source, target), count in counts.items()),
            key=lambda t: (t.source, t.target)))
        return cls(nodes=nodes, transitions=transitions)

    @classmethod
    def from_events(cls, events: Sequence[ApduEvent]) -> "MarkovChain":
        return cls.from_tokens(tokenize(events))

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.transitions)

    @property
    def size(self) -> tuple[int, int]:
        """The Fig. 13 coordinates: (nodes, edges)."""
        return (self.node_count, self.edge_count)

    def probability(self, source: str, target: str) -> float:
        for transition in self.transitions:
            if transition.source == source and transition.target == target:
                return transition.probability
        return 0.0

    def successors(self, source: str) -> dict[str, float]:
        return {t.target: t.probability for t in self.transitions
                if t.source == source}

    def has_token(self, token: str) -> bool:
        return token in self.nodes

    @property
    def has_interrogation(self) -> bool:
        return self.has_token("I100")

    @property
    def is_reset_backup(self) -> bool:
        """True for the paper's point (1,1): a self-loop of U16 only."""
        return (self.size == (1, 1) and self.nodes[0] == "U16")

    @property
    def has_switchover(self) -> bool:
        """Keep-alives followed by STARTDT on the same connection
        (paper Fig. 16)."""
        return (self.has_token("U16") and self.has_token("U32")
                and self.has_token("U1") and self.has_interrogation)

    def to_networkx(self):
        """Export as a weighted :class:`networkx.DiGraph`.

        Edge attributes: ``probability`` (MLE transition probability)
        and ``count`` (observed transitions)."""
        import networkx as nx
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for transition in self.transitions:
            graph.add_edge(transition.source, transition.target,
                           probability=transition.probability,
                           count=transition.count)
        return graph

    def to_dot(self) -> str:
        """Render as Graphviz dot (for the paper's chain figures)."""
        lines = ["digraph markov {", "  rankdir=LR;"]
        for node in self.nodes:
            lines.append(f'  "{node}";')
        for transition in self.transitions:
            lines.append(
                f'  "{transition.source}" -> "{transition.target}" '
                f'[label="{transition.probability:.2f}"];')
        lines.append("}")
        return "\n".join(lines)

    def stationary_distribution(self) -> dict[str, float]:
        """Stationary distribution of the chain (power iteration).

        Returns an empty dict for chains with dangling nodes (tokens
        that never transition onward), where no stationary distribution
        over the observed transitions exists."""
        if not self.nodes:
            return {}
        outgoing = {node: self.successors(node) for node in self.nodes}
        if any(not successors for successors in outgoing.values()):
            return {}
        probabilities = {node: 1.0 / len(self.nodes)
                         for node in self.nodes}
        for _ in range(200):
            updated = {node: 0.0 for node in self.nodes}
            for node, mass in probabilities.items():
                for target, probability in outgoing[node].items():
                    updated[target] += mass * probability
            delta = max(abs(updated[node] - probabilities[node])
                        for node in self.nodes)
            probabilities = updated
            if delta < 1e-12:
                break
        return probabilities

    def render(self, max_edges: int = 30) -> str:
        """Human-readable chain: one 'src -> dst (p=..)' line per edge."""
        lines = [f"nodes={self.node_count} edges={self.edge_count}"]
        for transition in self.transitions[:max_edges]:
            lines.append(f"  {transition.source:>5} -> "
                         f"{transition.target:<5} "
                         f"p={transition.probability:.3f} "
                         f"(n={transition.count})")
        if self.edge_count > max_edges:
            lines.append(f"  ... {self.edge_count - max_edges} more edges")
        return "\n".join(lines)


class ChainCluster(enum.Enum):
    """The three regions of paper Fig. 13."""

    RESET_POINT = "point (1,1): repeated U16, no U32"
    PLAIN = "square: no interrogation command"
    INTERROGATION = "ellipse: contains I100"


def classify_chain(chain: MarkovChain) -> ChainCluster:
    if chain.is_reset_backup:
        return ChainCluster.RESET_POINT
    if chain.has_interrogation:
        return ChainCluster.INTERROGATION
    return ChainCluster.PLAIN


@dataclass
class ConnectionChains:
    """Markov chains for every connection (host pair) in a capture."""

    chains: dict[tuple[str, str], MarkovChain] = field(default_factory=dict)

    @classmethod
    def from_extraction(cls, extraction: StreamExtraction
                        ) -> "ConnectionChains":
        chains: dict[tuple[str, str], MarkovChain] = {}
        for connection, events in sorted(
                extraction.by_connection().items()):
            chains[connection] = MarkovChain.from_events(events)
        return cls(chains=chains)

    def sizes(self) -> list[tuple[tuple[str, str], int, int]]:
        """Fig. 13 scatter data: (connection, nodes, edges)."""
        return [(connection, chain.node_count, chain.edge_count)
                for connection, chain in sorted(self.chains.items())]

    def by_cluster(self) -> dict[ChainCluster, list[tuple[str, str]]]:
        grouped: dict[ChainCluster, list[tuple[str, str]]] = {
            cluster: [] for cluster in ChainCluster}
        for connection, chain in sorted(self.chains.items()):
            grouped[classify_chain(chain)].append(connection)
        return grouped

    def reset_connections(self) -> list[tuple[str, str]]:
        """The paper's point-(1,1) list (Fig. 14)."""
        return self.by_cluster()[ChainCluster.RESET_POINT]
