"""TCP flow analysis (paper Section 6.2, Table 3, Figs. 8-9).

Splits connections into short-lived (SYN and FIN/RST both observed)
versus long-lived, builds the log-scale duration histogram of Fig. 8,
and identifies the hosts that reject backup connections (Fig. 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..netstack.addresses import IPv4Address
from ..netstack.flows import FlowKind, FlowRecord, FlowTable
from ..netstack.packet import Endpoint
from .sources import PacketSource, resolve_source


@dataclass(frozen=True)
class FlowSummary:
    """The four rows of paper Table 3 for one dataset."""

    label: str
    sub_second_short: int
    longer_short: int
    long_lived: int

    @property
    def short_lived(self) -> int:
        return self.sub_second_short + self.longer_short

    @property
    def total(self) -> int:
        return self.short_lived + self.long_lived

    @property
    def short_fraction(self) -> float:
        return self.short_lived / self.total if self.total else 0.0

    @property
    def sub_second_fraction_of_short(self) -> float:
        if not self.short_lived:
            return 0.0
        return self.sub_second_short / self.short_lived

    def rows(self) -> list[tuple[str, str]]:
        """Render the Table 3 rows (count and proportion)."""
        def pct(value: float) -> str:
            return f"{100.0 * value:.1f}%"
        short = self.short_lived
        return [
            ("Less-than-one-second short-lived flows",
             f"{self.sub_second_short} "
             f"({pct(self.sub_second_short / short if short else 0.0)})"),
            ("Longer-than-one-second short-lived flows",
             f"{self.longer_short} "
             f"({pct(self.longer_short / short if short else 0.0)})"),
            ("Short-lived flows",
             f"{short} ({pct(self.short_fraction)})"),
            ("Long-lived flows",
             f"{self.long_lived} ({pct(1.0 - self.short_fraction)})"),
        ]


@dataclass
class RejectingPair:
    """A (server, outstation) pair whose backup connections die young."""

    server: str
    outstation: str
    attempts: int = 0
    rst_count: int = 0
    fin_count: int = 0
    #: Median interval between attempts (the "interval between U
    #: messages" of the paper's cluster-0 analysis; 430 s for C2-O30).
    #: The median is robust to the large gaps between capture days.
    median_interval: float = 0.0


@dataclass
class FlowAnalysis:
    """Full Section 6.2 analysis over one capture."""

    label: str
    flows: list[FlowRecord]
    names: dict[IPv4Address, str] = field(default_factory=dict)

    @classmethod
    def from_packets(cls, label: str,
                     source: PacketSource,
                     iec104_only: bool = True) -> "FlowAnalysis":
        """Build flow records from a capture.

        Capture-first: ``source`` may be the capture object itself, a
        pcap reader, or a plain packet iterable. ``iec104_only`` keeps
        only port-2404 traffic — the paper's captures also carried
        ICCP and C37.118, which its analysis set aside.
        """
        from .apdu_stream import is_iec104
        packets, names = resolve_source(
            source, caller="FlowAnalysis.from_packets")
        table = FlowTable()
        for packet in packets:
            if iec104_only and not is_iec104(packet):
                continue
            table.add(packet)
        return cls(label=label, flows=table.flows, names=names)

    def _name(self, endpoint: Endpoint) -> str:
        return self.names.get(endpoint.address,
                              f"{endpoint.address}:{endpoint.port}")

    def summary(self) -> FlowSummary:
        """Paper Table 3 for this capture."""
        sub = longer = long_lived = 0
        for flow in self.flows:
            if flow.kind is FlowKind.LONG_LIVED:
                long_lived += 1
            elif flow.duration < 1.0:
                sub += 1
            else:
                longer += 1
        return FlowSummary(label=self.label, sub_second_short=sub,
                           longer_short=longer, long_lived=long_lived)

    def short_lived_durations(self) -> list[float]:
        return [flow.duration for flow in self.flows
                if flow.kind is FlowKind.SHORT_LIVED]

    def duration_histogram(self, bins_per_decade: int = 3,
                           floor: float = 1e-3
                           ) -> list[tuple[float, float, int]]:
        """Log-scale histogram of short-lived durations (Fig. 8).

        Returns (low, high, count) per bin; durations below ``floor``
        are clamped into the first bin.
        """
        durations = self.short_lived_durations()
        if not durations:
            return []
        low_exp = math.floor(math.log10(
            max(floor, min(durations))) * bins_per_decade)
        high_exp = math.ceil(math.log10(
            max(floor, max(durations))) * bins_per_decade)
        edges = [10 ** (exp / bins_per_decade)
                 for exp in range(low_exp, high_exp + 1)]
        if len(edges) < 2:
            edges = [floor, max(durations) + floor]
        counts = [0] * (len(edges) - 1)
        for duration in durations:
            clamped = max(duration, edges[0])
            for index in range(len(counts)):
                if edges[index] <= clamped < edges[index + 1]:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        return [(edges[i], edges[i + 1], counts[i])
                for i in range(len(counts))]

    def rejecting_pairs(self, min_attempts: int = 3
                        ) -> list[RejectingPair]:
        """The Fig. 9 pathology: hosts refusing backup connections.

        Groups rejected flows (SYN then RST/FIN, no payload exchanged —
        or a lone TESTFR probe) by host pair and reports attempt rates.
        """
        grouped: dict[tuple[str, str], list[FlowRecord]] = {}
        for flow in self.flows:
            if flow.kind is not FlowKind.SHORT_LIVED:
                continue
            payload = (flow.forward.payload_bytes
                       + flow.reverse.payload_bytes)
            # A rejected attempt carries at most one 6-octet U frame.
            if payload > 12:
                continue
            initiator = flow.initiator or flow.key
            server = self._name(initiator.src)
            outstation = self._name(initiator.dst)
            grouped.setdefault((server, outstation), []).append(flow)

        pairs: list[RejectingPair] = []
        for (server, outstation), flows in sorted(grouped.items()):
            if len(flows) < min_attempts:
                continue
            starts = sorted(flow.first_time for flow in flows)
            gaps = sorted(b - a for a, b in zip(starts, starts[1:]))
            median = gaps[len(gaps) // 2] if gaps else 0.0
            pairs.append(RejectingPair(
                server=server, outstation=outstation,
                attempts=len(flows),
                rst_count=sum(1 for flow in flows if flow.saw_rst),
                fin_count=sum(1 for flow in flows
                              if flow.saw_fin and not flow.saw_rst),
                median_interval=median))
        pairs.sort(key=lambda pair: -pair.attempts)
        return pairs
