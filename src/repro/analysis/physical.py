"""Physical-measurement DPI (paper Section 6.4).

Extracts per-point time series from the decoded I-frames, reproduces
the typeID distribution (Table 7) and the typeID-to-physical-symbol
mapping with transmitting-station counts (Table 8), performs the
normalized-variance screening the paper used to find "interesting"
events, and assembles the series behind Figs. 18-20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..iec104.apci import IFrame
from ..iec104.constants import Cause, TypeID
from .apdu_stream import ApduEvent, StreamExtraction

#: TypeIDs whose elements carry numeric process values.
_VALUE_TYPES = {
    TypeID.M_SP_NA_1, TypeID.M_DP_NA_1, TypeID.M_ST_NA_1,
    TypeID.M_BO_NA_1, TypeID.M_ME_NA_1, TypeID.M_ME_NB_1,
    TypeID.M_ME_NC_1, TypeID.M_SP_TB_1, TypeID.M_DP_TB_1,
    TypeID.M_ST_TB_1, TypeID.M_BO_TB_1, TypeID.M_ME_TD_1,
    TypeID.M_ME_TE_1, TypeID.M_ME_TF_1, TypeID.C_SE_NA_1,
    TypeID.C_SE_NB_1, TypeID.C_SE_NC_1,
}

_STATUS_TYPES = {TypeID.M_SP_NA_1, TypeID.M_SP_TB_1, TypeID.M_DP_NA_1,
                 TypeID.M_DP_TB_1}

_SETPOINT_TYPES = {TypeID.C_SE_NA_1, TypeID.C_SE_NB_1, TypeID.C_SE_NC_1}


@dataclass(frozen=True)
class PointKey:
    """Identity of one field point: reporting host + IOA + typeID."""

    station: str
    ioa: int
    type_id: TypeID


@dataclass
class PointSeries:
    """A time series extracted for one field point."""

    key: PointKey
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)

    def normalized_variance(self) -> float:
        """Variance normalized by squared scale (the paper's screen for
        variables "changing more than usual")."""
        data = self.array
        if len(data) < 2:
            return 0.0
        scale = max(1e-9, float(np.abs(data).mean()))
        return float(data.var() / (scale * scale))

    def inferred_symbol(self) -> str:
        """Heuristic physical-symbol inference (paper Table 8 legend).

        The paper identified symbols by inspecting value semantics; this
        reproduces that inspection: frequencies sit at ~50/60 Hz with
        tiny variance, voltages near the nominal kV level, statuses are
        small non-negative integers, reactive power changes sign, set
        points are known from the command typeIDs.
        """
        if self.key.type_id in _SETPOINT_TYPES:
            return "AGC-SP"
        data = self.array
        if len(data) == 0:
            return "-"
        if self.key.type_id in (TypeID.M_BO_NA_1, TypeID.M_BO_TB_1,
                                TypeID.M_ST_NA_1, TypeID.M_ST_TB_1):
            # Bitstrings and step positions have no scalar physical
            # meaning the paper could assign (Table 8 marks them "-").
            return "-"
        if self.key.type_id in _STATUS_TYPES:
            return "Status"
        if np.allclose(data, np.round(data)) and data.min() >= 0 \
                and data.max() <= 3:
            return "Status"
        mean = float(data.mean())
        spread = float(data.std())
        if 45.0 <= mean <= 65.0 and spread < 0.5:
            return "Freq"
        if 90.0 <= abs(mean) <= 550.0 and spread < 0.1 * abs(mean) + 5.0:
            return "U"
        if data.min() < 0.0 < data.max():
            return "Q"
        if 0.0 <= mean < 5.0:
            return "I"
        return "P"


def _element_value(element: object) -> float | None:
    value = getattr(element, "value", None)
    if value is None:
        return None
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


def iter_point_samples(event: ApduEvent
                       ) -> Iterator[tuple[PointKey, float, float]]:
    """Yield ``(key, time_s, value)`` for every numeric sample in one
    decoded APDU event.

    This is the per-event kernel shared by the batch
    :func:`extract_series` and the streaming physical whitelist, so
    the two attribute samples identically by construction:
    monitor-direction values go to the sending outstation; set-point
    commands to the *target* outstation (that is where the physical
    set point applies), counted once on the ACTIVATION leg."""
    if not isinstance(event.apdu, IFrame):
        return
    asdu = event.apdu.asdu
    if asdu.type_id not in _VALUE_TYPES:
        return
    is_setpoint = asdu.type_id in _SETPOINT_TYPES
    if is_setpoint and asdu.cause is not Cause.ACTIVATION:
        return  # count each command once (skip the mirror con)
    station = event.dst if is_setpoint else event.src
    time_s = event.time_us / 1_000_000
    for obj in asdu.objects:
        value = _element_value(obj.element)
        if value is None:
            continue
        yield (PointKey(station=station, ioa=obj.address,
                        type_id=asdu.type_id), time_s, value)


def extract_series(extraction: StreamExtraction
                   ) -> dict[PointKey, PointSeries]:
    """Collect every numeric point series from the decoded traffic."""
    series: dict[PointKey, PointSeries] = {}
    for event in extraction.events:
        for key, time_s, value in iter_point_samples(event):
            entry = series.get(key)
            if entry is None:
                entry = PointSeries(key=key)
                series[key] = entry
            entry.append(time_s, value)
    return series


@dataclass(frozen=True)
class TypeIDDistribution:
    """Paper Table 7: share of ASDUs per observed typeID."""

    counts: dict[TypeID, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def percentage(self, type_id: TypeID) -> float:
        if not self.total:
            return 0.0
        return 100.0 * self.counts.get(type_id, 0) / self.total

    def rows(self) -> list[tuple[str, int, float]]:
        ordered = sorted(self.counts.items(),
                         key=lambda item: -item[1])
        return [(type_id.token, count, self.percentage(type_id))
                for type_id, count in ordered]

    def top_two_share(self) -> float:
        """Combined share of the two dominant typeIDs (paper: I36+I13
        carry 97% of ASDUs)."""
        ordered = sorted(self.counts.values(), reverse=True)
        if not self.total:
            return 0.0
        return 100.0 * sum(ordered[:2]) / self.total


def type_id_distribution(extraction: StreamExtraction
                         ) -> TypeIDDistribution:
    counts: dict[TypeID, int] = {}
    for event in extraction.events:
        if isinstance(event.apdu, IFrame):
            type_id = event.apdu.asdu.type_id
            counts[type_id] = counts.get(type_id, 0) + 1
    return TypeIDDistribution(counts=counts)


@dataclass(frozen=True)
class SymbolRow:
    """One row of paper Table 8."""

    token: str
    station_count: int
    symbols: tuple[str, ...]


def symbol_table(extraction: StreamExtraction,
                 server_prefix: str = "C") -> list[SymbolRow]:
    """Paper Table 8: typeID, transmitting-station count, symbols.

    Station counts are attributed to the *field* side of each
    connection (the outstation), so a command typeID counts the RTUs it
    is exchanged with, not the control servers that issue it."""
    stations: dict[TypeID, set[str]] = {}
    symbols: dict[TypeID, set[str]] = {}
    for event in extraction.events:
        if not isinstance(event.apdu, IFrame):
            continue
        asdu = event.apdu.asdu
        station = (event.dst if event.src.startswith(server_prefix)
                   else event.src)
        stations.setdefault(asdu.type_id, set()).add(station)
    for key, series in extract_series(extraction).items():
        if len(series) >= 2:
            symbols.setdefault(key.type_id, set()).add(
                series.inferred_symbol())
    rows: list[SymbolRow] = []
    for type_id, senders in sorted(stations.items(),
                                   key=lambda item: -len(item[1])):
        row_symbols = tuple(sorted(symbols.get(type_id, set())))
        if type_id is TypeID.C_IC_NA_1:
            row_symbols = ("Inter(global)",)
        rows.append(SymbolRow(token=type_id.token,
                              station_count=len(senders),
                              symbols=row_symbols or ("-",)))
    return rows


@dataclass(frozen=True)
class InterestingEvent:
    """A point flagged by the normalized-variance screening."""

    key: PointKey
    normalized_variance: float
    symbol: str
    samples: int


def interesting_events(extraction: StreamExtraction, top: int = 10,
                       min_samples: int = 5) -> list[InterestingEvent]:
    """The paper's screening for variables changing more than usual."""
    flagged: list[InterestingEvent] = []
    for key, series in extract_series(extraction).items():
        if len(series) < min_samples:
            continue
        flagged.append(InterestingEvent(
            key=key, normalized_variance=series.normalized_variance(),
            symbol=series.inferred_symbol(), samples=len(series)))
    flagged.sort(key=lambda event: -event.normalized_variance)
    return flagged[:top]


def station_series(extraction: StreamExtraction, station: str,
                   symbol: str | None = None,
                   min_samples: int = 2) -> list[PointSeries]:
    """All series reported by one station (for Figs. 18-20), optionally
    filtered by inferred physical symbol.

    ``min_samples`` defaults to 2 (a single sample has no dynamics);
    pass 1 to include rarely-reported points such as breaker statuses
    that only show their transition on the wire."""
    matches: list[PointSeries] = []
    for key, series in extract_series(extraction).items():
        if key.station != station or len(series) < min_samples:
            continue
        if symbol is not None and series.inferred_symbol() != symbol:
            continue
        matches.append(series)
    matches.sort(key=lambda series: series.key.ioa)
    return matches


def agc_command_series(extraction: StreamExtraction
                       ) -> dict[str, PointSeries]:
    """AGC set-point command series per target station (Fig. 19)."""
    commands: dict[str, PointSeries] = {}
    for key, series in extract_series(extraction).items():
        if key.type_id in _SETPOINT_TYPES:
            commands[key.station] = series
    return commands
