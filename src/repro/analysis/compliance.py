"""IEC 104 compliance analysis (paper Section 6.1, Fig. 7).

Runs the standard-compliant baseline parser and the tolerant parser
side by side over a capture, reports which outstations a Wireshark-like
tool would flag as 100% malformed, and explains *why* by naming the
legacy field widths the tolerant parser inferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..iec104.codec import StrictParser, TolerantParser
from ..iec104.profiles import STANDARD_PROFILE, LinkProfile
from ..netstack.packet import CapturedPacket
from .apdu_stream import is_iec104
from .sources import PacketSource, resolve_source


@dataclass
class HostCompliance:
    """Per-sending-host compliance verdict."""

    host: str
    frames: int = 0
    strict_malformed: int = 0
    tolerant_decoded: int = 0
    inferred_profile: LinkProfile | None = None

    @property
    def strict_malformed_fraction(self) -> float:
        return self.strict_malformed / self.frames if self.frames else 0.0

    @property
    def is_compliant(self) -> bool:
        return (self.inferred_profile is None
                or self.inferred_profile.is_standard)

    @property
    def explanation(self) -> str:
        if self.is_compliant or self.inferred_profile is None:
            return "IEC 104 compliant"
        return self.inferred_profile.describe()


@dataclass
class ComplianceReport:
    """Section 6.1 over one capture."""

    hosts: dict[str, HostCompliance] = field(default_factory=dict)

    def non_compliant_hosts(self) -> list[HostCompliance]:
        """Hosts a standard parser flags on (nearly) every I-frame."""
        return sorted(
            (host for host in self.hosts.values()
             if not host.is_compliant),
            key=lambda host: host.host)

    def fully_malformed_hosts(self, threshold: float = 0.999
                              ) -> list[str]:
        """The paper's "100% invalid packets" host list."""
        return [host.host for host in self.hosts.values()
                if host.frames > 0
                and host.strict_malformed_fraction >= threshold
                and host.strict_malformed > 0]


def analyze_compliance(source: PacketSource) -> ComplianceReport:
    """Compare strict vs tolerant parsing per sending host.

    Capture-first: pass the capture object itself (or a pcap reader /
    packet iterable). Only I-format frames discriminate between
    profiles, so hosts that send only S/U frames (pure backups) are
    counted but never flagged.
    """
    packets, names = resolve_source(source,
                                    caller="analyze_compliance")
    report = ComplianceReport()
    strict = StrictParser()
    tolerant = TolerantParser()
    for packet in packets:
        if not is_iec104(packet) or not packet.payload:
            continue
        src = names.get(packet.ip.src,
                        f"{packet.ip.src}:{packet.tcp.src_port}")
        host = report.hosts.get(src)
        if host is None:
            host = HostCompliance(host=src)
            report.hosts[src] = host
        for result in strict.parse_stream(packet.payload):
            # Count only I-format frames: S/U APDUs are 4-octet control
            # frames identical under every profile.
            if len(result.raw) > 6:
                host.frames += 1
                if not result.ok:
                    host.strict_malformed += 1
        for result in tolerant.parse_stream(packet.payload, link_key=src):
            if len(result.raw) > 6 and result.ok:
                host.tolerant_decoded += 1
    for src, host in report.hosts.items():
        host.inferred_profile = tolerant.profile_for(src)
    return report


@dataclass(frozen=True)
class FieldDiff:
    """Fig. 7: how a legacy frame's fields differ from the standard."""

    field_name: str
    standard_octets: int
    observed_octets: int

    def __str__(self) -> str:
        return (f"{self.field_name}: {self.observed_octets} octet(s) "
                f"observed vs {self.standard_octets} in IEC 104")


def field_diffs(profile: LinkProfile) -> list[FieldDiff]:
    """Enumerate the Fig. 7-style deviations of a legacy profile."""
    diffs: list[FieldDiff] = []
    if profile.cot_length != STANDARD_PROFILE.cot_length:
        diffs.append(FieldDiff("Cause of Transmission",
                               STANDARD_PROFILE.cot_length,
                               profile.cot_length))
    if profile.ioa_length != STANDARD_PROFILE.ioa_length:
        diffs.append(FieldDiff("Information Object Address",
                               STANDARD_PROFILE.ioa_length,
                               profile.ioa_length))
    if (profile.common_address_length
            != STANDARD_PROFILE.common_address_length):
        diffs.append(FieldDiff("Common Address",
                               STANDARD_PROFILE.common_address_length,
                               profile.common_address_length))
    return diffs
