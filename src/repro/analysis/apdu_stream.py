"""From captured packets to APDU event streams.

This is the front half of the paper's pipeline: take the raw capture,
group packets into directional streams, and decode IEC 104 APDUs with
the tolerant parser. Two modes are exposed:

* ``per_packet=True`` (paper-faithful): each packet's payload is parsed
  independently, so TCP retransmissions produce duplicate APDU events —
  exactly the repeated U16/U32 tokens the authors traced back to the
  transport layer in Section 6.3.1;
* ``per_packet=False``: streams are TCP-reassembled first, removing
  retransmissions (the ablation mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..iec104.apci import APDU, IFrame, UFrame
from ..iec104.codec import ParseResult, TolerantParser
from ..iec104.constants import IEC104_PORT, TypeID
from ..netstack.addresses import IPv4Address
from ..netstack.packet import CapturedPacket
from ..netstack.reassembly import StreamReassembler
from ..protocols.base import ProtocolSpec, get_protocol
from .sources import PacketSource, resolve_source


@dataclass(frozen=True, slots=True)
class ApduEvent:
    """One decoded APDU with its network context.

    ``time_us`` is the canonical capture time in integer microseconds.
    """

    time_us: int
    src: str
    dst: str
    #: The decoded protocol data unit — an IEC 104 :class:`APDU` or,
    #: under the modbus spec, a :class:`~repro.protocols.modbus.
    #: ModbusAdu` (anything with a ``.token`` property).
    apdu: APDU | Any
    compliant: bool = True
    wire_bytes: int = 0

    @property
    def token(self) -> str:
        """Protocol token (paper Table 4 for IEC 104: S, U1..U32,
        I<typeID>; F<fc>/X<fc> for Modbus)."""
        return self.apdu.token

    @property
    def session(self) -> tuple[str, str]:
        """Directional host pair (the paper's *session*)."""
        return (self.src, self.dst)

    @property
    def connection(self) -> tuple[str, str]:
        """Undirected host pair (the paper's *connection*), with the
        control-server name first when recognizable."""
        a, b = sorted((self.src, self.dst))
        if b.startswith("C") and not a.startswith("C"):
            return (b, a)
        return (a, b)


@dataclass
class StreamExtraction:
    """Everything the analysis stages consume.

    The session/connection groupings are memoized: the sessions, markov
    and classification stages each re-group the same event list, so the
    dicts are built once and reused until ``events`` grows (appends
    invalidate the caches; events are only ever appended, never edited
    in place).
    """

    events: list[ApduEvent]
    #: The spec-built parser (duck-typed; TolerantParser for IEC 104).
    parser: TolerantParser | Any
    #: Parse failures as (time_us, src, dst, result).
    failures: list[tuple[int, str, str, ParseResult]] = (
        field(default_factory=list))
    retransmissions: int = 0
    #: Memoized groupings, tagged with the event count they were built
    #: from so appends invalidate them.
    _sessions: dict[tuple[str, str], list[ApduEvent]] | None = field(
        default=None, init=False, repr=False, compare=False)
    _sessions_size: int = field(default=-1, init=False, repr=False,
                                compare=False)
    _connections: dict[tuple[str, str], list[ApduEvent]] | None = field(
        default=None, init=False, repr=False, compare=False)
    _connections_size: int = field(default=-1, init=False, repr=False,
                                   compare=False)

    def by_session(self) -> dict[tuple[str, str], list[ApduEvent]]:
        if (self._sessions is None
                or self._sessions_size != len(self.events)):
            sessions: dict[tuple[str, str], list[ApduEvent]] = {}
            for event in self.events:
                sessions.setdefault(event.session, []).append(event)
            self._sessions = sessions
            self._sessions_size = len(self.events)
        return self._sessions

    def by_connection(self) -> dict[tuple[str, str], list[ApduEvent]]:
        if (self._connections is None
                or self._connections_size != len(self.events)):
            connections: dict[tuple[str, str], list[ApduEvent]] = {}
            for event in self.events:
                connections.setdefault(event.connection, []).append(event)
            self._connections = connections
            self._connections_size = len(self.events)
        return self._connections

    def i_events(self) -> list[ApduEvent]:
        return [event for event in self.events
                if isinstance(event.apdu, IFrame)]


def _name_for(address: IPv4Address, port: int,
              names: dict[IPv4Address, str]) -> str:
    name = names.get(address)
    if name is not None:
        return name
    return f"{address}:{port}"


def is_iec104(packet: CapturedPacket) -> bool:
    """IEC 104 traffic filter (port 2404 either side).

    The paper's captures also contained ICCP and C37.118; this is the
    filter that isolates the protocol under study.
    """
    return IEC104_PORT in (packet.tcp.src_port, packet.tcp.dst_port)


def extract_apdus(source: PacketSource,
                  per_packet: bool = True,
                  parser: TolerantParser | Any | None = None,
                  protocol: ProtocolSpec | None = None
                  ) -> StreamExtraction:
    """Decode every APDU of one protocol in ``source``.

    ``source`` is Capture-first: pass the capture object itself (its
    ``host_names()`` map the addresses to logical names C1, O17, ...),
    a pcap/pcapng reader, or a plain packet iterable. ``protocol``
    picks the :class:`~repro.protocols.base.ProtocolSpec` whose ports
    and parser apply (default IEC 104); packets on other ports are
    ignored, as the paper did with ICCP/C37.118.
    """
    packets, names = resolve_source(source, caller="extract_apdus")
    spec = protocol if protocol is not None else get_protocol("iec104")
    parser = parser if parser is not None else spec.new_parser()
    extraction = StreamExtraction(events=[], parser=parser)
    reassemblers: dict[object, StreamReassembler] = {}
    ports = spec.ports

    for packet in packets:
        if (packet.tcp.src_port not in ports
                and packet.tcp.dst_port not in ports):
            continue
        src = _name_for(packet.ip.src, packet.tcp.src_port, names)
        dst = _name_for(packet.ip.dst, packet.tcp.dst_port, names)
        link_key = (src, dst)
        if per_packet:
            if not packet.payload:
                continue
            results = parser.parse_stream(packet.payload, link_key=link_key)
        else:
            stream_key = packet.flow_key
            reassembler = reassemblers.get(stream_key)
            if reassembler is None:
                reassembler = StreamReassembler()
                reassemblers[stream_key] = reassembler
            data = reassembler.feed(packet.tcp.seq, packet.payload,
                                    syn=packet.flags.syn,
                                    fin=packet.flags.fin)
            if not data:
                continue
            results = parser.parse_stream(data, link_key=link_key)
        for result in results:
            if result.ok:
                extraction.events.append(ApduEvent(
                    time_us=packet.time_us, src=src, dst=dst,
                    apdu=result.apdu, compliant=result.compliant,
                    wire_bytes=packet.wire_length))
            else:
                extraction.failures.append(
                    (packet.time_us, src, dst, result))
    if not per_packet:
        extraction.retransmissions = sum(
            r.stats.retransmissions for r in reassemblers.values())
    return extraction


def tokenize(events: Iterable[ApduEvent]) -> list[str]:
    """Token sequence per paper Table 4 (time-ordered)."""
    ordered = sorted(events, key=lambda event: event.time_us)
    return [event.token for event in ordered]


def has_interrogation(tokens: Iterable[str]) -> bool:
    """True when the sequence contains the I100 interrogation command."""
    return any(token == "I100" for token in tokens)


def u_function_counts(events: Iterable[ApduEvent]) -> dict[str, int]:
    """Count U-format tokens (U1..U32) in a stream."""
    counts: dict[str, int] = {}
    for event in events:
        if isinstance(event.apdu, UFrame):
            token = event.apdu.token
            counts[token] = counts.get(token, 0) + 1
    return counts


def observed_ioas(events: Iterable[ApduEvent],
                  source: str | None = None) -> set[int]:
    """Distinct field-device addresses observed in monitor I-frames.

    ``source`` restricts to frames sent by one host (the Fig. 6 clouds
    count IOAs reported by each outstation). Command ASDUs (C_*, P_*,
    F_*) are excluded: their addresses (e.g. the station-wide IOA 0 of
    an interrogation) are not field devices.
    """
    ioas: set[int] = set()
    for event in events:
        if not isinstance(event.apdu, IFrame):
            continue
        if event.apdu.asdu.is_command:
            continue
        if source is not None and event.src != source:
            continue
        for obj in event.apdu.asdu.objects:
            ioas.add(obj.address)
    return ioas


def cause_distribution(events) -> dict["Cause", int]:
    """ASDU counts per cause of transmission.

    The COT is the "why" of each message (§4): periodic reporting,
    spontaneous threshold crossings, interrogation responses,
    command activations. Its distribution separates reporting styles —
    the paper's cluster 1 is characterized by spontaneous COTs.
    """
    from ..iec104.constants import Cause  # local to avoid cycle noise
    if isinstance(events, StreamExtraction):
        events = events.events
    counts: dict[Cause, int] = {}
    for event in events:
        if isinstance(event.apdu, IFrame):
            cause = event.apdu.asdu.cause
            counts[cause] = counts.get(cause, 0) + 1
    return counts


def observed_type_ids(events) -> dict[TypeID, int]:
    """ASDU counts per typeID (the basis of paper Table 7).

    Accepts an iterable of :class:`ApduEvent` or a whole
    :class:`StreamExtraction`.
    """
    if isinstance(events, StreamExtraction):
        events = events.events
    counts: dict[TypeID, int] = {}
    for event in events:
        if isinstance(event.apdu, IFrame):
            type_id = event.apdu.asdu.type_id
            counts[type_id] = counts.get(type_id, 0) + 1
    return counts
