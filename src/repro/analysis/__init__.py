"""The measurement/analysis pipeline — the paper's core methodology.

Front-end: :func:`extract_apdus` turns captured packets into APDU event
streams. On top of that sit the five analyses of Section 6: compliance
(6.1), TCP flows (6.2), session clustering and Markov/N-gram profiling
(6.3), outstation classification (Table 6), and physical DPI (6.4).
"""

from .apdu_stream import (ApduEvent, StreamExtraction, cause_distribution,
                          extract_apdus, has_interrogation, is_iec104,
                          observed_ioas, observed_type_ids, tokenize,
                          u_function_counts)
from .bandwidth import (InterArrivalStats, Periodicity,
                        SessionTimingProfile, ThroughputSeries,
                        detect_period, inter_arrival_stats, throughput,
                        timing_profiles)
from .classification import (ConnectionProfile, OutstationClassification,
                             TYPE_DESCRIPTIONS, TypeDistribution,
                             classify_all, classify_outstation,
                             connection_profile, switchover_chain,
                             type_distribution)
from .clustering import (KMeansResult, KSelection, explained_variance,
                         kmeans, per_feature_silhouette, select_k,
                         silhouette_score)
from .compliance import (ComplianceReport, FieldDiff, HostCompliance,
                         analyze_compliance, field_diffs)
from .drift import (DayProfile, DriftSummary, SessionDrift,
                    day_boundaries, session_drift, summarize_drift)
from .flows import FlowAnalysis, FlowSummary, RejectingPair
from .hypotheses import (HypothesisResult, Verdict, evaluate_all,
                         evaluate_h1_stability, evaluate_h2_compliance,
                         evaluate_h3_flows, evaluate_h4_clusters,
                         evaluate_h5_physical)
from .markov import (ChainCluster, ConnectionChains, MarkovChain,
                     Transition, classify_chain)
from .ngram import (END_TOKEN, NgramModel, START_TOKEN,
                    TOKEN_DESCRIPTIONS, is_valid_token)
from .pca import PCAResult, fit_pca
from .physical import (InterestingEvent, PointKey, PointSeries,
                       SymbolRow, TypeIDDistribution, agc_command_series,
                       extract_series, interesting_events, station_series,
                       symbol_table, type_id_distribution)
from .report import render_histogram, render_series, render_table
from .sessions import (ALL_FEATURES, CLUSTER_ROLES, SELECTED_FEATURES,
                       SessionFeatures, extract_sessions,
                       feature_matrix, label_clusters, session_features)
from .sources import PacketCapture, as_capture, resolve_source
from .timeline import (ConnectionTimeline, TimelineEntry,
                       TimelineEvent, build_timelines,
                       rejected_backup_timelines, switchover_timelines)
from .topology_diff import (IOAChange, ObservedTopology, TopologyDiff,
                            diff_topologies)
from .whitelist import (CombinedAlert, CombinedDetector, CyberVerdict,
                        CyberWhitelist, Envelope, PhysicalViolation,
                        PhysicalWhitelist)

__all__ = [
    "ALL_FEATURES", "ApduEvent", "ChainCluster", "CombinedAlert",
    "CombinedDetector", "ComplianceReport", "CyberVerdict",
    "CyberWhitelist", "Envelope", "InterArrivalStats", "Periodicity",
    "PhysicalViolation", "PhysicalWhitelist", "SessionTimingProfile",
    "ThroughputSeries", "detect_period", "inter_arrival_stats",
    "throughput", "timing_profiles",
    "ConnectionChains", "ConnectionProfile", "END_TOKEN",
    "FieldDiff", "FlowAnalysis", "FlowSummary", "HostCompliance",
    "HypothesisResult", "Verdict", "evaluate_all",
    "evaluate_h1_stability", "evaluate_h2_compliance",
    "evaluate_h3_flows", "evaluate_h4_clusters", "evaluate_h5_physical",
    "IOAChange", "InterestingEvent", "KMeansResult", "KSelection",
    "MarkovChain", "NgramModel", "ObservedTopology",
    "OutstationClassification", "PCAResult", "PointKey", "PointSeries",
    "RejectingPair", "SELECTED_FEATURES", "START_TOKEN", "SessionFeatures",
    "StreamExtraction", "SymbolRow", "TOKEN_DESCRIPTIONS",
    "TYPE_DESCRIPTIONS", "TopologyDiff", "Transition",
    "TypeDistribution", "TypeIDDistribution", "agc_command_series",
    "DayProfile", "DriftSummary", "SessionDrift", "day_boundaries",
    "session_drift", "summarize_drift",
    "analyze_compliance", "cause_distribution", "classify_all",
    "classify_chain",
    "classify_outstation", "connection_profile", "diff_topologies",
    "explained_variance", "extract_apdus", "extract_series",
    "extract_sessions", "feature_matrix", "field_diffs",
    "CLUSTER_ROLES", "label_clusters",
    "fit_pca", "has_interrogation", "interesting_events", "is_iec104",
    "is_valid_token", "kmeans", "observed_ioas", "observed_type_ids",
    "per_feature_silhouette", "render_histogram", "render_series",
    "render_table", "select_k", "session_features", "silhouette_score",
    "ConnectionTimeline", "TimelineEntry", "TimelineEvent",
    "build_timelines", "rejected_backup_timelines",
    "switchover_timelines",
    "PacketCapture", "as_capture", "resolve_source",
    "station_series", "switchover_chain", "symbol_table", "tokenize",
    "type_distribution", "type_id_distribution", "u_function_counts",
]
