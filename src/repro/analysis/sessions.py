"""Session feature extraction (paper Section 6.3).

A *session* is all packets sent in one direction between the same pair
of endpoints. The paper started from ten statistical features and kept
the five with the best single-feature Silhouette scores:

    dt      — average inter-arrival time between consecutive packets
    num     — total packets in the direction
    pct_i   — fraction of I-format data units
    pct_s   — fraction of S-format data units
    pct_u   — fraction of U-format data units

The full ten-feature vector is retained for the feature-selection
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..iec104.apci import IFrame, SFrame
from .apdu_stream import ApduEvent, StreamExtraction, extract_apdus
from .sources import PacketSource

#: The paper's selected five features, in order.
SELECTED_FEATURES = ("dt", "num", "pct_i", "pct_s", "pct_u")

#: The full candidate set (ten features).
ALL_FEATURES = ("dt", "num", "pct_i", "pct_s", "pct_u",
                "total_bytes", "mean_size", "from_server",
                "ioa_count", "type_variety")


@dataclass(frozen=True)
class SessionFeatures:
    """Feature vector for one directional session."""

    src: str
    dst: str
    dt: float
    num: int
    pct_i: float
    pct_s: float
    pct_u: float
    total_bytes: int
    mean_size: float
    from_server: float
    ioa_count: int
    type_variety: int

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def vector(self, features: Sequence[str] = SELECTED_FEATURES
               ) -> np.ndarray:
        return np.array([float(getattr(self, feature))
                         for feature in features])


def session_features(session: tuple[str, str],
                     events: list[ApduEvent]) -> SessionFeatures:
    """Compute the feature vector of one session."""
    src, dst = session
    ordered = sorted(events, key=lambda event: event.time_us)
    times = [event.time_us for event in ordered]
    gaps = [b - a for a, b in zip(times, times[1:])]
    # Gaps are integer microseconds; the feature stays in seconds.
    dt = float(np.mean(gaps)) / 1_000_000 if gaps else 0.0
    total = len(ordered)
    i_count = sum(1 for event in ordered if isinstance(event.apdu, IFrame))
    s_count = sum(1 for event in ordered if isinstance(event.apdu, SFrame))
    u_count = total - i_count - s_count
    ioas: set[int] = set()
    type_ids: set[int] = set()
    for event in ordered:
        if isinstance(event.apdu, IFrame):
            type_ids.add(event.apdu.asdu.type_id)
            for obj in event.apdu.asdu.objects:
                ioas.add(obj.address)
    total_bytes = sum(event.wire_bytes for event in ordered)
    return SessionFeatures(
        src=src, dst=dst, dt=dt, num=total,
        pct_i=i_count / total, pct_s=s_count / total,
        pct_u=u_count / total, total_bytes=total_bytes,
        mean_size=total_bytes / total if total else 0.0,
        from_server=1.0 if src.startswith("C") else 0.0,
        ioa_count=len(ioas), type_variety=len(type_ids))


def extract_sessions(source: StreamExtraction | PacketSource,
                     min_packets: int = 2) -> list[SessionFeatures]:
    """Feature vectors for every session with >= ``min_packets``.

    Capture-first: accepts a :class:`StreamExtraction` or anything
    :func:`repro.analysis.extract_apdus` accepts (a capture object, a
    pcap reader, a packet iterable).
    """
    extraction = (source if isinstance(source, StreamExtraction)
                  else extract_apdus(source))
    features: list[SessionFeatures] = []
    for session, events in sorted(extraction.by_session().items()):
        if len(events) < min_packets:
            continue
        features.append(session_features(session, events))
    return features


#: The five behavioural roles of paper Fig. 11.
CLUSTER_ROLES = ("outlier-long-gaps", "i-heavy-spontaneous",
                 "average-reporting", "server-acks", "keepalive")


def label_clusters(sessions: list[SessionFeatures],
                   labels: Iterable[int]) -> dict[int, str]:
    """Assign each K-means cluster one of the paper's Fig. 11 roles.

    Roles are matched greedily on the cluster means: the largest mean
    inter-arrival time is the outlier cluster (paper cluster 0), the
    highest %U is the keep-alive cluster (4), the highest %S the
    server-acknowledgement cluster (3), the highest %I the heavy
    I-format cluster (1), and the remainder the average case (2).
    """
    label_array = np.asarray(list(labels))
    cluster_ids = sorted(set(int(label) for label in label_array))
    means: dict[int, dict[str, float]] = {}
    for cluster_id in cluster_ids:
        members = [session
                   for session, label in zip(sessions, label_array)
                   if label == cluster_id]
        means[cluster_id] = {
            "dt": float(np.mean([m.dt for m in members])),
            "pct_i": float(np.mean([m.pct_i for m in members])),
            "pct_s": float(np.mean([m.pct_s for m in members])),
            "pct_u": float(np.mean([m.pct_u for m in members])),
        }
    assigned: dict[int, str] = {}
    remaining = set(cluster_ids)

    def take(metric: str, role: str) -> None:
        if not remaining:
            return
        best = max(remaining, key=lambda c: means[c][metric])
        assigned[best] = role
        remaining.discard(best)

    take("dt", "outlier-long-gaps")
    take("pct_u", "keepalive")
    take("pct_s", "server-acks")
    take("pct_i", "i-heavy-spontaneous")
    for cluster_id in sorted(remaining):
        assigned[cluster_id] = "average-reporting"
    return assigned


def feature_matrix(sessions: list[SessionFeatures],
                   features: Sequence[str] = SELECTED_FEATURES,
                   standardize: bool = True) -> np.ndarray:
    """Stack session vectors into an (n, d) matrix, optionally z-scored."""
    if not sessions:
        raise ValueError("no sessions to build a matrix from")
    matrix = np.vstack([session.vector(features) for session in sessions])
    if standardize:
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std == 0.0] = 1.0
        matrix = (matrix - mean) / std
    return matrix
