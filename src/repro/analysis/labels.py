"""Label-aware detection scoring: verdicts vs ground-truth intervals.

The scenario corpus (:mod:`repro.scenarios`) emits captures whose
sidecars label *when* an attack ran (``time_us`` intervals) and *who*
ran it (attacker endpoint names).  This module holds the generic
matching layer that turns a detector's per-connection first-alert
times into precision / recall / detection-latency numbers against
those labels.  It deliberately knows nothing about the scenario
registry — only about connections, endpoints and intervals — so any
analyzer that can report "connection X first alerted at time T" can
be scored with it.

Semantics (documented in ``docs/scenarios.md``):

* a connection is *malicious* when any of its endpoints is listed as
  an attacker endpoint in the ground truth;
* a **true positive** is a malicious connection that alerted, a
  **false positive** a benign connection that alerted, and a **false
  negative** a malicious connection that never alerted;
* **detection latency** is ``first_alert_us - onset_us`` where onset
  is the earliest labeled interval start, clamped at zero (an alert
  raised before the labeled onset still counts as latency 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..simnet.clock import Ticks


@dataclass(frozen=True, slots=True)
class LabeledInterval:
    """One labeled attack interval on the capture's ``time_us`` axis."""

    start_us: Ticks
    end_us: Ticks
    label: str = ""

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError(f"start_us must be >= 0, "
                             f"got {self.start_us}")
        if self.end_us < self.start_us:
            raise ValueError(
                f"end_us {self.end_us} precedes start_us "
                f"{self.start_us}")

    def contains(self, time_us: Ticks) -> bool:
        return self.start_us <= time_us <= self.end_us

    def to_json(self) -> dict[str, Any]:
        return {"start_us": self.start_us, "end_us": self.end_us,
                "label": self.label}

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "LabeledInterval":
        return cls(start_us=int(document["start_us"]),
                   end_us=int(document["end_us"]),
                   label=str(document.get("label", "")))


def connection_endpoints(connection: object) -> tuple[str, ...]:
    """Endpoint names of a detector connection key.

    Connections are either ``(server, outstation)`` name tuples (the
    per-connection whitelist key) or a single opaque label.
    """
    if isinstance(connection, tuple):
        return tuple(str(part) for part in connection)
    return (str(connection),)


def involves_endpoints(connection: object,
                       endpoints: Iterable[str]) -> bool:
    """True when any endpoint of ``connection`` is in ``endpoints``."""
    wanted = set(endpoints)
    return any(part in wanted
               for part in connection_endpoints(connection))


@dataclass(frozen=True, slots=True)
class ConnectionOutcome:
    """Scoring outcome for one connection observed in DETECT mode."""

    connection: str
    malicious: bool
    alerted: bool
    first_alert_us: Ticks | None
    latency_us: Ticks | None

    @property
    def kind(self) -> str:
        if self.malicious:
            return "tp" if self.alerted else "fn"
        return "fp" if self.alerted else "tn"


@dataclass(frozen=True, slots=True)
class DetectionScore:
    """Precision / recall / latency of one scored replay."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int
    #: Minimum latency over true positives (first detection of the
    #: attack); ``None`` when nothing malicious was caught.
    detection_latency_us: Ticks | None
    outcomes: tuple[ConnectionOutcome, ...]

    @property
    def precision(self) -> float:
        alerted = self.true_positives + self.false_positives
        if alerted == 0:
            return 1.0
        return self.true_positives / alerted

    @property
    def recall(self) -> float:
        malicious = self.true_positives + self.false_negatives
        if malicious == 0:
            return 1.0
        return self.true_positives / malicious

    def to_json(self) -> dict[str, Any]:
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "true_negatives": self.true_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "detection_latency_us": self.detection_latency_us,
        }


def score_detections(connections: Iterable[object],
                     attacker_endpoints: Iterable[str],
                     intervals: Sequence[LabeledInterval],
                     first_alerts: Mapping[object, Ticks]
                     ) -> DetectionScore:
    """Match per-connection alerts against ground-truth labels.

    ``connections`` is the universe of connections the detector
    scored (malicious ones missing from it cannot be counted as
    false negatives — the caller passes everything it observed);
    ``first_alerts`` maps the subset that alerted to the stream time
    of the first alerting event.
    """
    attackers = tuple(attacker_endpoints)
    onset_us: Ticks | None = (min(span.start_us for span in intervals)
                              if intervals else None)
    outcomes: list[ConnectionOutcome] = []
    seen: set[object] = set()
    for connection in connections:
        if connection in seen:
            continue
        seen.add(connection)
        malicious = involves_endpoints(connection, attackers)
        first = first_alerts.get(connection)
        latency: Ticks | None = None
        if malicious and first is not None and onset_us is not None:
            latency = max(0, first - onset_us)
        outcomes.append(ConnectionOutcome(
            connection=str(connection), malicious=malicious,
            alerted=first is not None, first_alert_us=first,
            latency_us=latency))
    outcomes.sort(key=lambda outcome: outcome.connection)
    kinds = [outcome.kind for outcome in outcomes]
    latencies = [outcome.latency_us for outcome in outcomes
                 if outcome.latency_us is not None]
    return DetectionScore(
        true_positives=kinds.count("tp"),
        false_positives=kinds.count("fp"),
        false_negatives=kinds.count("fn"),
        true_negatives=kinds.count("tn"),
        detection_latency_us=min(latencies) if latencies else None,
        outcomes=tuple(outcomes))
