"""Principal Component Analysis, from scratch on numpy.

Used to project the five-dimensional session feature space onto the 2D
plane of paper Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PCAResult:
    """A fitted PCA projection."""

    mean: np.ndarray
    components: np.ndarray        # (k, d), rows are principal axes
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        return (matrix - self.mean) @ self.components.T

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        return projected @ self.components + self.mean


def fit_pca(matrix: np.ndarray, n_components: int = 2) -> PCAResult:
    """Fit PCA by SVD of the centered data matrix."""
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2:
        raise ValueError("PCA expects a 2D matrix")
    n, d = data.shape
    if n < 2:
        raise ValueError("PCA needs at least two samples")
    if not 1 <= n_components <= d:
        raise ValueError(f"n_components must be in [1, {d}]")
    mean = data.mean(axis=0)
    centered = data - mean
    _, singular, vt = np.linalg.svd(centered, full_matrices=False)
    variance = (singular ** 2) / (n - 1)
    total = variance.sum()
    ratio = variance / total if total > 0 else np.zeros_like(variance)
    return PCAResult(mean=mean,
                     components=vt[:n_components],
                     explained_variance=variance[:n_components],
                     explained_variance_ratio=ratio[:n_components])
