"""Cyber-physical whitelisting — the paper's proposed future work.

The conclusion of the paper proposes "white lists that correlate cyber
(e.g., Markov networks) and physical (time-series analysis) network
measurements to identify suspicious activities". This module implements
that proposal on top of the repository's building blocks:

* :class:`CyberWhitelist` — learns the set of observed APDU-token
  transitions per connection (a Markov whitelist) and scores new
  sequences by their fraction of never-seen transitions;
* :class:`PhysicalWhitelist` — learns per-point value envelopes from
  clean DPI series and checks new samples against them, plus the
  Fig. 21 physics rules (no power through an open breaker);
* :class:`CombinedDetector` — correlates both layers, as the paper
  suggests a grid SOC should.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..grid.signature import ActivationSignature
from .apdu_stream import StreamExtraction, tokenize
from .ngram import is_valid_token
from .physical import PointKey, extract_series


@dataclass(frozen=True)
class CyberVerdict:
    """Score of one token sequence against the cyber whitelist."""

    connection: object
    tokens: int
    unseen_transitions: tuple[tuple[str, str], ...]
    unknown_tokens: tuple[str, ...]

    @property
    def unseen_fraction(self) -> float:
        if self.tokens < 2:
            return 0.0
        return len(self.unseen_transitions) / (self.tokens - 1)

    def is_alert(self, threshold: float = 0.2) -> bool:
        return bool(self.unknown_tokens) \
            or self.unseen_fraction > threshold


@dataclass
class CyberWhitelist:
    """Markov-transition whitelist over APDU token sequences.

    ``per_connection`` keeps one whitelist per connection (stricter:
    a token legal on an AGC link may be illegal on a backup link);
    otherwise a single global whitelist is learned.
    """

    per_connection: bool = True
    _transitions: dict[object, set[tuple[str, str]]] = (
        field(default_factory=dict))
    _vocabulary: set[str] = field(default_factory=set)

    #: Key used for the global whitelist.
    GLOBAL = "<global>"

    def _key(self, connection: object) -> object:
        return connection if self.per_connection else self.GLOBAL

    def fit(self, extraction: StreamExtraction) -> "CyberWhitelist":
        """Learn transitions from a clean capture."""
        for connection, events in extraction.by_connection().items():
            self.fit_sequence(tokenize(events), connection)
        return self

    def fit_sequence(self, tokens: Sequence[str],
                     connection: object = GLOBAL) -> None:
        for token in tokens:
            if not is_valid_token(token):
                raise ValueError(f"invalid APDU token {token!r}")
        key = self._key(connection)
        transitions = self._transitions.setdefault(key, set())
        transitions.update(zip(tokens, tokens[1:]))
        self._vocabulary.update(tokens)

    # -- incremental hooks (the streaming engine's learn path) --------

    def learn_token(self, token: str,
                    connection: object = GLOBAL) -> None:
        """Incremental fit: one token with no predecessor (the first of
        a connection). Equivalent to ``fit_sequence([token], conn)``."""
        self.fit_sequence([token], connection)

    def learn_transition(self, source: str, target: str,
                         connection: object = GLOBAL) -> None:
        """Incremental fit: one observed transition. A streamed
        connection learned token-by-token ends up with exactly the
        state ``fit_sequence`` builds from the full sequence."""
        self.fit_sequence([source, target], connection)

    def knows_connection(self, connection: object) -> bool:
        return self._key(connection) in self._transitions

    def knows_token(self, token: str) -> bool:
        return token in self._vocabulary

    def knows_transition(self, source: str, target: str,
                         connection: object = GLOBAL) -> bool:
        transitions = self._transitions.get(self._key(connection))
        return (transitions is not None
                and (source, target) in transitions)

    @property
    def learned_connections(self) -> list[object]:
        return sorted(self._transitions, key=str)

    def score(self, tokens: Sequence[str],
              connection: object = GLOBAL) -> CyberVerdict:
        """Score a token sequence for one connection."""
        key = self._key(connection)
        transitions = self._transitions.get(key)
        if transitions is None:
            # Unknown connection: everything about it is anomalous.
            return CyberVerdict(
                connection=connection, tokens=len(tokens),
                unseen_transitions=tuple(zip(tokens, tokens[1:])),
                unknown_tokens=tuple(dict.fromkeys(tokens)))
        unseen = tuple(pair for pair in zip(tokens, tokens[1:])
                       if pair not in transitions)
        unknown = tuple(dict.fromkeys(
            token for token in tokens if token not in self._vocabulary))
        return CyberVerdict(connection=connection, tokens=len(tokens),
                            unseen_transitions=unseen,
                            unknown_tokens=unknown)

    def score_extraction(self, extraction: StreamExtraction
                         ) -> list[CyberVerdict]:
        return [self.score(tokenize(events), connection)
                for connection, events
                in sorted(extraction.by_connection().items())]


@dataclass(frozen=True)
class Envelope:
    """Learned value envelope for one point."""

    low: float
    high: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


@dataclass(frozen=True)
class PhysicalViolation:
    """One physical-whitelist violation."""

    key: PointKey
    time: float
    value: float
    reason: str


@dataclass
class PhysicalWhitelist:
    """Per-point value envelopes plus physics rules.

    ``margin`` widens each learned [min, max] envelope by a fraction of
    its span (value ranges in a short training window understate the
    long-run range).
    """

    margin: float = 0.25
    _envelopes: dict[PointKey, Envelope] = field(default_factory=dict)
    #: Running (min, max) per point accumulated by the incremental
    #: learn path; :meth:`finalize` turns them into envelopes.
    _ranges: dict[PointKey, tuple[float, float]] = (
        field(default_factory=dict))

    def __post_init__(self) -> None:
        if self.margin < 0:
            raise ValueError("margin must be >= 0")

    def _envelope_for(self, low: float, high: float) -> Envelope:
        span = max(high - low, 0.05 * max(abs(low), abs(high), 1.0))
        pad = self.margin * span
        return Envelope(low=low - pad, high=high + pad)

    def fit(self, extraction: StreamExtraction) -> "PhysicalWhitelist":
        for key, series in extract_series(extraction).items():
            if len(series) == 0:
                continue
            low, high = min(series.values), max(series.values)
            self._envelopes[key] = self._envelope_for(low, high)
        return self

    # -- incremental hooks (the streaming engine's learn path) --------

    def learn_sample(self, key: PointKey, value: float) -> None:
        """Incremental fit: fold one sample into the running range.

        Call :meth:`finalize` once learning ends; a point learned
        sample-by-sample gets exactly the envelope :meth:`fit` builds
        from the whole series (both reduce to min/max)."""
        bounds = self._ranges.get(key)
        if bounds is None:
            self._ranges[key] = (value, value)
        else:
            low, high = bounds
            self._ranges[key] = (min(low, value), max(high, value))

    def finalize(self) -> "PhysicalWhitelist":
        """Turn incrementally learned ranges into envelopes."""
        for key, (low, high) in self._ranges.items():
            self._envelopes[key] = self._envelope_for(low, high)
        self._ranges.clear()
        return self

    @property
    def point_count(self) -> int:
        return len(self._envelopes)

    @property
    def pending_point_count(self) -> int:
        """Points with running ranges not yet finalized."""
        return len(self._ranges)

    def envelope(self, key: PointKey) -> Envelope | None:
        return self._envelopes.get(key)

    def check_sample(self, key: PointKey, time: float,
                     value: float) -> PhysicalViolation | None:
        envelope = self._envelopes.get(key)
        if envelope is None:
            return PhysicalViolation(key=key, time=time, value=value,
                                     reason="point never seen during "
                                            "training")
        if not envelope.contains(value):
            return PhysicalViolation(
                key=key, time=time, value=value,
                reason=f"value outside learned envelope "
                       f"[{envelope.low:.2f}, {envelope.high:.2f}]")
        return None

    def check_extraction(self, extraction: StreamExtraction
                         ) -> list[PhysicalViolation]:
        violations: list[PhysicalViolation] = []
        for key, series in extract_series(extraction).items():
            for time, value in zip(series.times, series.values):
                violation = self.check_sample(key, time, value)
                if violation is not None:
                    violations.append(violation)
        return violations

    @staticmethod
    def check_activation(times: Iterable[float],
                         voltages: Iterable[float],
                         breakers: Iterable[int],
                         powers: Iterable[float]) -> list[str]:
        """Physics rules over an activation trace (Fig. 21)."""
        signature = ActivationSignature()
        for time, voltage, breaker, power in zip(times, voltages,
                                                 breakers, powers):
            signature.observe(time, voltage, breaker, power)
        return [f"t={event.time:.1f}s: {event.anomaly}"
                for event in signature.anomalies]


@dataclass(frozen=True)
class CombinedAlert:
    """One correlated alert from the combined detector."""

    connection: object
    cyber: CyberVerdict | None
    physical: tuple[PhysicalViolation, ...]

    @property
    def correlated(self) -> bool:
        """Both layers flagged the same connection."""
        return (self.cyber is not None and self.cyber.is_alert()
                and bool(self.physical))


@dataclass
class CombinedDetector:
    """Correlates cyber and physical whitelists per connection."""

    cyber: CyberWhitelist = field(default_factory=CyberWhitelist)
    physical: PhysicalWhitelist = field(
        default_factory=PhysicalWhitelist)

    def fit(self, extraction: StreamExtraction) -> "CombinedDetector":
        self.cyber.fit(extraction)
        self.physical.fit(extraction)
        return self

    def detect(self, extraction: StreamExtraction,
               cyber_threshold: float = 0.2) -> list[CombinedAlert]:
        """Return one alert per connection that trips either layer."""
        cyber_verdicts = {verdict.connection: verdict
                          for verdict in
                          self.cyber.score_extraction(extraction)}
        # Keyed by object: connections are (src, dst) tuples or bare
        # labels, and the station half of a tuple is looked up as-is.
        violations_by_station: dict[object, list[PhysicalViolation]] = {}
        for violation in self.physical.check_extraction(extraction):
            violations_by_station.setdefault(
                violation.key.station, []).append(violation)

        alerts: list[CombinedAlert] = []
        for connection, verdict in sorted(cyber_verdicts.items(),
                                          key=lambda item: str(item[0])):
            station = connection[1] if isinstance(connection, tuple) \
                else connection
            physical = tuple(violations_by_station.get(station, ()))
            if verdict.is_alert(cyber_threshold) or physical:
                alerts.append(CombinedAlert(connection=connection,
                                            cyber=verdict,
                                            physical=physical))
        return alerts
