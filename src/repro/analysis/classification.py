"""Outstation behaviour classification (paper Table 6 / Fig. 17).

Classifies each outstation into the paper's eight types from the
observed per-connection token sequences alone (no access to simulator
ground truth):

  1  No secondary connection and I-format only
  2  With secondary connection and U16 & U32
  3  U-format only (redundant/backup RTU)
  4  I-format only, to both servers (switched between captures)
  5  Single server with both I and U formats
  6  With secondary connection, I-format and U16 only
  7  Backup RTU that resets every connection attempt (point (1,1))
  8  Switchover from secondary to primary observed in-capture
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simnet.behaviors import OutstationType
from .apdu_stream import StreamExtraction, tokenize
from .markov import MarkovChain

#: Table 6 descriptions, by type number.
TYPE_DESCRIPTIONS = {
    OutstationType.PRIMARY_ONLY:
        "No secondary connection and I-format only",
    OutstationType.IDEAL:
        "With secondary connection and U16&U32",
    OutstationType.BACKUP_U_ONLY: "U-format only",
    OutstationType.I_ONLY_BOTH_SERVERS: "I-format only to both servers",
    OutstationType.SINGLE_SERVER_I_AND_U:
        "Single server with both I and U formats",
    OutstationType.REJECTS_SECONDARY:
        "With secondary connection I-format and U16 only",
    OutstationType.BACKUP_REJECTS:
        "Backup RTU resetting every connection attempt (point (1,1))",
    OutstationType.SWITCHOVER_OBSERVED:
        "Secondary-to-primary switchover observed in capture",
}


@dataclass(frozen=True)
class ConnectionProfile:
    """Token-level summary of one (server, outstation) connection."""

    server: str
    outstation: str
    packets: int
    has_i: bool
    has_u16: bool
    has_u32: bool
    has_startdt: bool
    has_interrogation: bool

    @property
    def is_reset_backup(self) -> bool:
        return self.has_u16 and not self.has_u32 and not self.has_i

    @property
    def is_switchover(self) -> bool:
        return (self.has_u16 and self.has_u32 and self.has_startdt
                and self.has_interrogation and self.has_i)


def connection_profile(server: str, outstation: str,
                       tokens: list[str]) -> ConnectionProfile:
    token_set = set(tokens)
    has_i_measurement = any(
        token.startswith("I") and token not in ("I100",)
        for token in token_set)
    return ConnectionProfile(
        server=server, outstation=outstation, packets=len(tokens),
        has_i=has_i_measurement,
        has_u16="U16" in token_set, has_u32="U32" in token_set,
        has_startdt="U1" in token_set,
        has_interrogation="I100" in token_set)


@dataclass
class OutstationClassification:
    """Classification result for one outstation."""

    outstation: str
    outstation_type: OutstationType
    profiles: list[ConnectionProfile] = field(default_factory=list)

    @property
    def description(self) -> str:
        return TYPE_DESCRIPTIONS[self.outstation_type]


def classify_outstation(outstation: str,
                        profiles: list[ConnectionProfile]
                        ) -> OutstationClassification:
    """Apply the Table 6 decision rules to one outstation."""
    i_profiles = [p for p in profiles if p.has_i]
    u_only = [p for p in profiles if not p.has_i]

    if not i_profiles:
        if any(p.is_reset_backup for p in profiles):
            kind = OutstationType.BACKUP_REJECTS
        else:
            kind = OutstationType.BACKUP_U_ONLY
    elif len(i_profiles) >= 2:
        if any(p.is_switchover for p in profiles):
            kind = OutstationType.SWITCHOVER_OBSERVED
        else:
            kind = OutstationType.I_ONLY_BOTH_SERVERS
    else:  # exactly one I-carrying connection
        primary = i_profiles[0]
        if not u_only:
            if primary.has_u16 and primary.has_u32:
                kind = OutstationType.SINGLE_SERVER_I_AND_U
            else:
                kind = OutstationType.PRIMARY_ONLY
        else:
            backup = u_only[0]
            if backup.has_u16 and not backup.has_u32:
                kind = OutstationType.REJECTS_SECONDARY
            else:
                kind = OutstationType.IDEAL
    return OutstationClassification(outstation=outstation,
                                    outstation_type=kind,
                                    profiles=profiles)


def classify_all(extraction: StreamExtraction,
                 server_prefix: str = "C"
                 ) -> dict[str, OutstationClassification]:
    """Classify every outstation observed in a capture."""
    per_connection: dict[tuple[str, str], list] = (
        extraction.by_connection())
    by_outstation: dict[str, list[ConnectionProfile]] = {}
    for (first, second), events in sorted(per_connection.items()):
        if first.startswith(server_prefix):
            server, outstation = first, second
        else:
            server, outstation = second, first
        tokens = tokenize(events)
        by_outstation.setdefault(outstation, []).append(
            connection_profile(server, outstation, tokens))
    return {outstation: classify_outstation(outstation, profiles)
            for outstation, profiles in sorted(by_outstation.items())}


@dataclass(frozen=True)
class TypeDistribution:
    """Fig. 17: the share of outstations in each behaviour type."""

    counts: dict[OutstationType, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def percentage(self, kind: OutstationType) -> float:
        if not self.total:
            return 0.0
        return 100.0 * self.counts.get(kind, 0) / self.total

    def rows(self) -> list[tuple[int, str, int, float]]:
        return [(int(kind), TYPE_DESCRIPTIONS[kind],
                 self.counts.get(kind, 0), self.percentage(kind))
                for kind in OutstationType]

    @property
    def most_common(self) -> OutstationType:
        return max(OutstationType,
                   key=lambda kind: self.counts.get(kind, 0))


def type_distribution(classifications: dict[str, OutstationClassification]
                      ) -> TypeDistribution:
    counts: dict[OutstationType, int] = {}
    for classification in classifications.values():
        kind = classification.outstation_type
        counts[kind] = counts.get(kind, 0) + 1
    return TypeDistribution(counts=counts)


def switchover_chain(extraction: StreamExtraction, server: str,
                     outstation: str) -> MarkovChain:
    """The Fig. 16 chain for one (server, outstation) connection."""
    for connection, events in extraction.by_connection().items():
        if set(connection) == {server, outstation}:
            return MarkovChain.from_events(events)
    raise KeyError(f"no connection between {server} and {outstation}")
