"""K-means++ clustering and model selection, from scratch.

Implements the paper's Section 6.3 methodology: K-means++ seeding,
Lloyd iterations, and the three K-selection criteria the authors used —
the elbow on the sum of squared errors, explained variance, and the
Silhouette score. Also provides the per-feature Silhouette screening
that reduced their feature space from ten features to five.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """A fitted K-means model."""

    centers: np.ndarray   # (k, d)
    labels: np.ndarray    # (n,)
    inertia: float        # sum of squared distances to assigned centers
    iterations: int

    @property
    def k(self) -> int:
        return len(self.centers)

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        distances = _pairwise_sq(np.asarray(matrix, float), self.centers)
        return distances.argmin(axis=1)


def _pairwise_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and ``b``."""
    return ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)


def _kmeanspp_init(matrix: np.ndarray, k: int,
                   rng: random.Random) -> np.ndarray:
    """K-means++ seeding (Arthur & Vassilvitskii)."""
    n = len(matrix)
    first = rng.randrange(n)
    centers = [matrix[first]]
    for _ in range(1, k):
        distances = _pairwise_sq(matrix, np.vstack(centers)).min(axis=1)
        total = float(distances.sum())
        if total <= 0.0:
            centers.append(matrix[rng.randrange(n)])
            continue
        threshold = rng.random() * total
        cumulative = 0.0
        for index in range(n):
            cumulative += float(distances[index])
            if cumulative >= threshold:
                centers.append(matrix[index])
                break
        else:  # pragma: no cover - float round-off guard
            centers.append(matrix[-1])
    return np.vstack(centers)


def kmeans(matrix: np.ndarray, k: int, seed: int = 0,
           max_iterations: int = 300, n_init: int = 8) -> KMeansResult:
    """K-means++ with multiple restarts; returns the best fit."""
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2:
        raise ValueError("kmeans expects a 2D matrix")
    n = len(data)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")
    rng = random.Random(seed)
    best: KMeansResult | None = None
    for _ in range(n_init):
        centers = _kmeanspp_init(data, k, rng)
        labels = np.zeros(n, dtype=int)
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            distances = _pairwise_sq(data, centers)
            new_labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for index in range(k):
                members = data[new_labels == index]
                if len(members):
                    new_centers[index] = members.mean(axis=0)
            if (new_labels == labels).all() and iteration > 1:
                centers = new_centers
                break
            labels, centers = new_labels, new_centers
        inertia = float(
            _pairwise_sq(data, centers)[np.arange(n), labels].sum())
        result = KMeansResult(centers=centers, labels=labels,
                              inertia=inertia, iterations=iteration)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None  # n_init >= 1
    return best


def silhouette_score(matrix: np.ndarray, labels: np.ndarray) -> float:
    """Mean Silhouette coefficient (Rousseeuw 1987)."""
    data = np.asarray(matrix, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    distances = np.sqrt(np.maximum(_pairwise_sq(data, data), 0.0))
    scores: list[float] = []
    for index in range(len(data)):
        own = labels[index]
        own_mask = labels == own
        own_size = own_mask.sum()
        if own_size <= 1:
            scores.append(0.0)
            continue
        a = distances[index][own_mask].sum() / (own_size - 1)
        b = min(distances[index][labels == other].mean()
                for other in unique if other != own)
        denominator = max(a, b)
        scores.append((b - a) / denominator if denominator > 0 else 0.0)
    return float(np.mean(scores))


def explained_variance(matrix: np.ndarray,
                       result: KMeansResult) -> float:
    """Between-cluster variance fraction (Goutte et al. 1999)."""
    data = np.asarray(matrix, dtype=float)
    overall = data.mean(axis=0)
    total = float(((data - overall) ** 2).sum())
    if total <= 0:
        return 0.0
    between = 0.0
    for index in range(result.k):
        members = data[result.labels == index]
        if len(members):
            center = members.mean(axis=0)
            between += len(members) * float(((center - overall) ** 2).sum())
    return between / total


@dataclass(frozen=True)
class KSelection:
    """Model-selection curves over a range of K (paper's 3 criteria)."""

    ks: tuple[int, ...]
    sse: tuple[float, ...]
    silhouette: tuple[float, ...]
    explained: tuple[float, ...]

    @property
    def best_by_silhouette(self) -> int:
        return self.ks[int(np.argmax(self.silhouette))]

    @property
    def elbow(self) -> int:
        """Largest second difference of the SSE curve (Thorndike)."""
        if len(self.ks) < 3:
            return self.ks[0]
        drops = np.diff(self.sse)
        curvature = np.diff(drops)
        return self.ks[int(np.argmax(curvature)) + 1]


def select_k(matrix: np.ndarray, k_range: Iterable[int] = range(2, 9),
             seed: int = 0) -> KSelection:
    """Evaluate the paper's three K-selection criteria."""
    ks: list[int] = []
    sse: list[float] = []
    silhouettes: list[float] = []
    explained: list[float] = []
    for k in k_range:
        if k > len(matrix):
            break
        result = kmeans(matrix, k, seed=seed)
        ks.append(k)
        sse.append(result.inertia)
        silhouettes.append(silhouette_score(matrix, result.labels))
        explained.append(explained_variance(matrix, result))
    return KSelection(ks=tuple(ks), sse=tuple(sse),
                      silhouette=tuple(silhouettes),
                      explained=tuple(explained))


def per_feature_silhouette(matrix: np.ndarray,
                           feature_names: Sequence[str],
                           k: int = 5, seed: int = 0) -> dict[str, float]:
    """Silhouette of clustering on each feature alone (paper's screen).

    The paper kept the features with the highest single-feature
    Silhouette scores; this reproduces that screening.
    """
    data = np.asarray(matrix, dtype=float)
    if data.shape[1] != len(feature_names):
        raise ValueError("feature_names length must match matrix width")
    scores: dict[str, float] = {}
    for index, name in enumerate(feature_names):
        column = data[:, index:index + 1]
        if len(np.unique(column)) < 2:
            scores[name] = 0.0
            continue
        effective_k = min(k, len(np.unique(column)))
        result = kmeans(column, effective_k, seed=seed)
        scores[name] = silhouette_score(column, result.labels)
    return scores
