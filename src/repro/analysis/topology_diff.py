"""Topology observation and year-over-year diffing (Fig. 6, Table 2).

Builds the observed network picture from traffic alone — which servers
and outstations appear, how many IOAs each outstation reports — and
diffs two years to reproduce the paper's change analysis, including the
stability statistic of Hypothesis 1 (26% of substations / 25% of
outstations unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .apdu_stream import StreamExtraction, observed_ioas


@dataclass
class ObservedTopology:
    """What the tap reveals about the network in one year."""

    servers: set[str] = field(default_factory=set)
    outstations: set[str] = field(default_factory=set)
    #: Distinct IOAs reported by each outstation (Fig. 6 clouds).
    ioa_counts: dict[str, int] = field(default_factory=dict)
    #: Which servers each outstation talked to.
    peers: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def from_extraction(cls, extraction: StreamExtraction,
                        server_prefix: str = "C") -> "ObservedTopology":
        topology = cls()
        sessions = extraction.by_session()
        for (src, dst), events in sessions.items():
            for host in (src, dst):
                if host.startswith(server_prefix):
                    topology.servers.add(host)
                else:
                    topology.outstations.add(host)
            server, outstation = ((src, dst)
                                  if src.startswith(server_prefix)
                                  else (dst, src))
            topology.peers.setdefault(outstation, set()).add(server)
        for outstation in topology.outstations:
            events = [event for event in extraction.events
                      if outstation in (event.src, event.dst)]
            topology.ioa_counts[outstation] = len(
                observed_ioas(events, source=outstation))
        return topology


@dataclass(frozen=True)
class IOAChange:
    """One Fig. 6 arrow: an outstation's IOA count changed."""

    outstation: str
    before: int
    after: int

    @property
    def direction(self) -> str:
        return "up" if self.after > self.before else "down"


@dataclass
class TopologyDiff:
    """Year-over-year comparison (the content of Fig. 6 + Table 2)."""

    added_outstations: list[str]
    removed_outstations: list[str]
    persisting: list[str]
    ioa_changes: list[IOAChange]
    stable_outstations: list[str]
    before: ObservedTopology
    after: ObservedTopology

    @property
    def outstation_stability(self) -> float:
        """Fraction of all observed outstations that persisted with an
        unchanged IOA count (the paper's 25%)."""
        universe = set(self.before.outstations) | set(
            self.after.outstations)
        if not universe:
            return 0.0
        return len(self.stable_outstations) / len(universe)

    def substation_stability(self,
                             substation_of: dict[str, str]) -> float:
        """Fraction of substations fully stable (the paper's 26%).

        ``substation_of`` maps outstation name to substation name (from
        operator documentation, as the paper had)."""
        all_subs = {substation_of[o]
                    for o in (set(self.before.outstations)
                              | set(self.after.outstations))
                    if o in substation_of}
        if not all_subs:
            return 0.0
        changed = set()
        for outstation in self.added_outstations:
            changed.add(substation_of.get(outstation))
        for outstation in self.removed_outstations:
            changed.add(substation_of.get(outstation))
        for change in self.ioa_changes:
            changed.add(substation_of.get(change.outstation))
        stable = {sub for sub in all_subs if sub not in changed}
        return len(stable) / len(all_subs)


def diff_topologies(before: ObservedTopology,
                    after: ObservedTopology) -> TopologyDiff:
    added = sorted(after.outstations - before.outstations,
                   key=_outstation_sort_key)
    removed = sorted(before.outstations - after.outstations,
                     key=_outstation_sort_key)
    persisting = sorted(before.outstations & after.outstations,
                        key=_outstation_sort_key)
    changes = []
    stable = []
    for outstation in persisting:
        count_before = before.ioa_counts.get(outstation, 0)
        count_after = after.ioa_counts.get(outstation, 0)
        if count_before != count_after:
            changes.append(IOAChange(outstation=outstation,
                                     before=count_before,
                                     after=count_after))
        else:
            stable.append(outstation)
    return TopologyDiff(added_outstations=added,
                        removed_outstations=removed,
                        persisting=persisting, ioa_changes=changes,
                        stable_outstations=stable, before=before,
                        after=after)


def _outstation_sort_key(name: str):
    digits = "".join(ch for ch in name if ch.isdigit())
    return (0, int(digits)) if digits else (1, name)
