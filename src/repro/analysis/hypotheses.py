"""Structured evaluation of the paper's five hypotheses (Section 5).

The paper frames its measurements around five hypotheses:

* **H1** — SCADA networks are stable and predictable over time;
* **H2** — standard-based endpoints speak standard-conformant IEC 104;
* **H3** — SCADA TCP flows are long-lived;
* **H4** — connection behaviours fall into a few clear clusters;
* **H5** — DPI of the payload reveals the physical system.

This module evaluates each hypothesis on a capture (or a pair of
yearly captures) and reports a verdict mirroring the paper's own:
H1 mixed, H2 rejected, H3 rejected, H4 supported, H5 supported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..netstack.packet import CapturedPacket
from .apdu_stream import StreamExtraction
from .clustering import kmeans, silhouette_score
from .compliance import analyze_compliance
from .flows import FlowAnalysis
from .physical import extract_series, type_id_distribution
from .sessions import extract_sessions, feature_matrix
from .sources import PacketSource, as_capture
from .topology_diff import ObservedTopology, diff_topologies


class Verdict(enum.Enum):
    SUPPORTED = "supported"
    MIXED = "mixed"
    REJECTED = "rejected"


@dataclass(frozen=True)
class HypothesisResult:
    """Evaluation of one hypothesis."""

    hypothesis: str
    statement: str
    verdict: Verdict
    evidence: str
    metric: float

    def __str__(self) -> str:
        return (f"{self.hypothesis} [{self.verdict.value}] "
                f"{self.statement}\n    {self.evidence}")


def evaluate_h1_stability(before: StreamExtraction,
                          after: StreamExtraction) -> HypothesisResult:
    """H1: the network is stable across years (paper: mixed)."""
    diff = diff_topologies(ObservedTopology.from_extraction(before),
                           ObservedTopology.from_extraction(after))
    stability = diff.outstation_stability
    servers_stable = (diff.before.servers == diff.after.servers)
    if stability > 0.75 and servers_stable:
        verdict = Verdict.SUPPORTED
    elif stability > 0.10 and servers_stable:
        verdict = Verdict.MIXED
    else:
        verdict = Verdict.REJECTED
    return HypothesisResult(
        hypothesis="H1",
        statement="SCADA networks are stable and predictable",
        verdict=verdict,
        evidence=(f"{len(diff.added_outstations)} outstations added, "
                  f"{len(diff.removed_outstations)} removed, "
                  f"{100 * stability:.0f}% fully stable; server side "
                  f"{'unchanged' if servers_stable else 'changed'}"),
        metric=stability)


def evaluate_h2_compliance(source: PacketSource) -> HypothesisResult:
    """H2: endpoints speak standard IEC 104 (paper: rejected)."""
    capture = as_capture(source, caller="evaluate_h2_compliance")
    report = analyze_compliance(capture)
    offenders = report.fully_malformed_hosts()
    verdict = Verdict.SUPPORTED if not offenders else Verdict.REJECTED
    return HypothesisResult(
        hypothesis="H2",
        statement="IEC 104 endpoints emit standard-conformant frames",
        verdict=verdict,
        evidence=(f"{len(offenders)} host(s) 100% malformed under a "
                  f"standard parser: {', '.join(offenders) or 'none'}"),
        metric=float(len(offenders)))


def evaluate_h3_flows(source: PacketSource) -> HypothesisResult:
    """H3: TCP flows are long-lived (paper: rejected)."""
    capture = as_capture(source, caller="evaluate_h3_flows")
    summary = FlowAnalysis.from_packets("capture", capture).summary()
    short = summary.short_fraction
    verdict = Verdict.SUPPORTED if short < 0.3 else (
        Verdict.MIXED if short < 0.5 else Verdict.REJECTED)
    return HypothesisResult(
        hypothesis="H3",
        statement="SCADA TCP flows are long-lived",
        verdict=verdict,
        evidence=(f"{100 * short:.1f}% of {summary.total} flows are "
                  "short-lived "
                  f"({100 * summary.sub_second_fraction_of_short:.0f}"
                  "% of those sub-second)"),
        metric=short)


def evaluate_h4_clusters(extraction: StreamExtraction,
                         k: int = 5) -> HypothesisResult:
    """H4: connections form clear behavioural clusters (paper: yes)."""
    sessions = extract_sessions(extraction)
    if len(sessions) < k + 1:
        return HypothesisResult(
            hypothesis="H4", statement="behaviours form clear clusters",
            verdict=Verdict.MIXED,
            evidence="too few sessions to cluster", metric=0.0)
    matrix = feature_matrix(sessions)
    result = kmeans(matrix, k, seed=104)
    score = silhouette_score(matrix, result.labels)
    verdict = Verdict.SUPPORTED if score > 0.5 else (
        Verdict.MIXED if score > 0.25 else Verdict.REJECTED)
    return HypothesisResult(
        hypothesis="H4",
        statement="connection behaviours form clear clusters",
        verdict=verdict,
        evidence=(f"K={k} silhouette {score:.2f} over "
                  f"{len(sessions)} sessions"),
        metric=score)


def evaluate_h5_physical(extraction: StreamExtraction
                         ) -> HypothesisResult:
    """H5: DPI reveals the physical system (paper: yes)."""
    series = [s for s in extract_series(extraction).values()
              if len(s) >= 3]
    symbols = {s.inferred_symbol() for s in series}
    interesting = symbols & {"Freq", "U", "P", "Q", "AGC-SP", "Status"}
    distribution = type_id_distribution(extraction)
    verdict = (Verdict.SUPPORTED if len(interesting) >= 4
               else Verdict.MIXED if interesting else Verdict.REJECTED)
    return HypothesisResult(
        hypothesis="H5",
        statement="payload DPI reveals the physical system",
        verdict=verdict,
        evidence=(f"{len(series)} point series extracted, physical "
                  f"symbols identified: {sorted(interesting)}; "
                  f"top-2 typeIDs carry "
                  f"{distribution.top_two_share():.0f}% of ASDUs"),
        metric=float(len(interesting)))


def evaluate_all(y1_source: PacketSource,
                 y1_extraction: StreamExtraction,
                 y2_extraction: StreamExtraction
                 ) -> list[HypothesisResult]:
    """Evaluate H1-H5 the way the paper does across its datasets.

    Capture-first: ``y1_source`` is the year-1 capture object (or
    reader / packet iterable).
    """
    y1_capture = as_capture(y1_source, caller="evaluate_all")
    return [
        evaluate_h1_stability(y1_extraction, y2_extraction),
        evaluate_h2_compliance(y1_capture),
        evaluate_h3_flows(y1_capture),
        evaluate_h4_clusters(y1_extraction),
        evaluate_h5_physical(y1_extraction),
    ]
