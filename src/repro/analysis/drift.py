"""Behavioural drift across capture days (Hypothesis 1, fine-grained).

The paper compares the network across two *years*; its captures are
themselves split over several days. This module measures how stable
each session's behaviour is across those days — the day-granular
version of Hypothesis 1 — and flags the sessions that changed.

A session's per-day behaviour is summarized by its (rate, %I, %S, %U)
vector; drift is the maximum pairwise distance between its day vectors.
Machine-to-machine SCADA sessions should barely move; sessions that do
move (a switchover day, a reconfigured RTU) are exactly the events an
operator wants surfaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..iec104.apci import IFrame, SFrame
from .apdu_stream import ApduEvent, StreamExtraction


@dataclass(frozen=True)
class DayProfile:
    """One session's behaviour during one capture day."""

    day: int
    packets: int
    rate_per_s: float
    pct_i: float
    pct_s: float
    pct_u: float

    def vector(self) -> np.ndarray:
        return np.array([self.rate_per_s, self.pct_i, self.pct_s,
                         self.pct_u])


@dataclass
class SessionDrift:
    """Day-over-day stability of one session."""

    session: tuple[str, str]
    days: list[DayProfile] = field(default_factory=list)

    @property
    def observed_days(self) -> int:
        return len(self.days)

    @property
    def drift(self) -> float:
        """Largest pairwise distance between day vectors (rates are
        log-scaled so a 2x rate change counts like a mix change)."""
        if len(self.days) < 2:
            return 0.0
        vectors = []
        for day in self.days:
            vector = day.vector()
            vector[0] = np.log1p(vector[0])
            vectors.append(vector)
        worst = 0.0
        for i in range(len(vectors)):
            for j in range(i + 1, len(vectors)):
                worst = max(worst, float(np.linalg.norm(
                    vectors[i] - vectors[j])))
        return worst

    @property
    def intermittent(self) -> bool:
        """Session missing from one or more days it should cover."""
        return len(self.days) >= 1 and self.days[-1].day \
            - self.days[0].day + 1 > len(self.days)


def _split_days(events: list[ApduEvent],
                boundaries: list[float]) -> dict[int, list[ApduEvent]]:
    by_day: dict[int, list[ApduEvent]] = {}
    for event in events:
        day = 0
        for index, boundary in enumerate(boundaries):
            if event.time_us / 1_000_000 >= boundary:
                day = index + 1
        by_day.setdefault(day, []).append(event)
    return by_day


def day_boundaries(extraction: StreamExtraction,
                   min_gap: float = 300.0) -> list[float]:
    """Infer capture-day boundaries from global traffic gaps."""
    times = sorted(event.time_us / 1_000_000
                   for event in extraction.events)
    boundaries = []
    for earlier, later in zip(times, times[1:]):
        if later - earlier >= min_gap:
            boundaries.append((earlier + later) / 2.0)
    return boundaries


def session_drift(extraction: StreamExtraction,
                  boundaries: list[float] | None = None,
                  min_packets_per_day: int = 5) -> list[SessionDrift]:
    """Per-session drift profiles across capture days."""
    if boundaries is None:
        boundaries = day_boundaries(extraction)
    drifts = []
    for session, events in sorted(extraction.by_session().items()):
        record = SessionDrift(session=session)
        for day, day_events in sorted(
                _split_days(events, boundaries).items()):
            if len(day_events) < min_packets_per_day:
                continue
            times = [event.time_us / 1_000_000
                     for event in day_events]
            duration = max(times) - min(times)
            total = len(day_events)
            i_count = sum(1 for e in day_events
                          if isinstance(e.apdu, IFrame))
            s_count = sum(1 for e in day_events
                          if isinstance(e.apdu, SFrame))
            record.days.append(DayProfile(
                day=day, packets=total,
                rate_per_s=total / duration if duration > 0 else 0.0,
                pct_i=i_count / total, pct_s=s_count / total,
                pct_u=(total - i_count - s_count) / total))
        if record.days:
            drifts.append(record)
    return drifts


@dataclass(frozen=True)
class DriftSummary:
    """Capture-level stability summary."""

    sessions: int
    multi_day_sessions: int
    stable_sessions: int
    drifting_sessions: tuple[tuple[str, str], ...]

    @property
    def stability_fraction(self) -> float:
        if not self.multi_day_sessions:
            return 1.0
        return self.stable_sessions / self.multi_day_sessions


def summarize_drift(drifts: list[SessionDrift],
                    threshold: float = 0.6) -> DriftSummary:
    """Classify sessions as stable vs drifting by ``threshold``."""
    multi = [record for record in drifts if record.observed_days >= 2]
    drifting = tuple(record.session for record in multi
                     if record.drift > threshold)
    return DriftSummary(sessions=len(drifts),
                        multi_day_sessions=len(multi),
                        stable_sessions=len(multi) - len(drifting),
                        drifting_sessions=drifting)
