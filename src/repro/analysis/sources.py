"""Capture-first packet sources for the analysis entrypoints.

The analysis API historically threaded ``(packets, names=...)`` pairs
through every call. The canonical currency is now a *capture*: any
object with a ``packets`` iterable and a ``host_names()`` mapping —
:class:`repro.simnet.scenario.SyntheticCapture`, the perf cache's
``CachedCapture``, an :class:`repro.simnet.attacker.AttackResult`, or
the :class:`PacketCapture` wrapper below. Raw packet iterables and
pcap/pcapng readers are also accepted; the ``names=`` keyword remains
as a deprecated shim.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..netstack.addresses import IPv4Address
from ..netstack.packet import CapturedPacket
from ..netstack.pcap import PcapReader, PcapRecord
from ..netstack.pcapng import PcapngReader

#: Anything the Capture-first entrypoints accept.
PacketSource = object


@dataclass
class PacketCapture:
    """Minimal concrete capture: a packet list plus its name map."""

    packets: list[CapturedPacket]
    names: dict[IPv4Address, str] = field(default_factory=dict)

    def host_names(self) -> dict[IPv4Address, str]:
        return dict(self.names)

    def __len__(self) -> int:
        return len(self.packets)


def _decode_records(records: Iterable[PcapRecord]
                    ) -> Iterator[CapturedPacket]:
    for record in records:
        packet = CapturedPacket.decode(record.time_us, record.data)
        if packet is not None:
            yield packet


def _warn_names(caller: str) -> None:
    warnings.warn(  # staticcheck: remove-in=1.1.0
        f"{caller}(packets, names=...) is deprecated; pass the capture "
        "object itself (anything with .packets and .host_names())",
        DeprecationWarning, stacklevel=4)


def resolve_source(source: PacketSource,
                   names: dict[IPv4Address, str] | None = None,
                   caller: str = "this entrypoint"
                   ) -> tuple[Iterable[CapturedPacket],
                              dict[IPv4Address, str]]:
    """Coerce ``source`` into ``(packets, names)``.

    Accepts a capture object (``.packets`` + ``.host_names()``), a
    :class:`PcapReader`/:class:`PcapngReader`, an iterable of
    :class:`PcapRecord`, or a plain iterable of
    :class:`CapturedPacket`. An explicit ``names=`` (the legacy
    pair-threading form) still works but emits a
    :class:`DeprecationWarning`; it overrides the capture's own names.
    """
    if names is not None:
        _warn_names(caller)
    packets = getattr(source, "packets", None)
    host_names = getattr(source, "host_names", None)
    if packets is not None and callable(host_names):
        resolved = dict(host_names())
        if names:
            resolved.update(names)
        return packets, resolved
    if isinstance(source, (PcapReader, PcapngReader)):
        return _decode_records(source), dict(names or {})
    iterator = iter(source)  # type: ignore[arg-type]
    try:
        first = next(iterator)
    except StopIteration:
        return [], dict(names or {})
    rest = itertools.chain([first], iterator)
    if isinstance(first, PcapRecord):
        return _decode_records(rest), dict(names or {})
    return rest, dict(names or {})


def as_capture(source: PacketSource,
               names: dict[IPv4Address, str] | None = None,
               caller: str = "this entrypoint") -> PacketCapture:
    """Like :func:`resolve_source` but materializes a reusable
    :class:`PacketCapture` (multi-pass callers)."""
    if isinstance(source, PacketCapture) and names is None:
        return source
    packets, resolved = resolve_source(source, names, caller)
    return PacketCapture(packets=list(packets), names=resolved)
