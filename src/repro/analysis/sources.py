"""Capture-first packet sources for the analysis entrypoints.

The analysis API historically threaded ``(packets, names=...)`` pairs
through every call. The canonical currency is a *capture*: any object
with a ``packets`` iterable and a ``host_names()`` mapping —
:class:`repro.simnet.scenario.SyntheticCapture`, the perf cache's
``CachedCapture``, an :class:`repro.simnet.attacker.AttackResult`, or
the :class:`PacketCapture` wrapper below. Raw packet iterables and
pcap/pcapng readers are also accepted (with an empty name map); the
deprecated ``names=`` keyword was removed in 1.1.0.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..netstack.addresses import IPv4Address
from ..netstack.packet import CapturedPacket
from ..netstack.pcap import PcapReader, PcapRecord
from ..netstack.pcapng import PcapngReader

#: Anything the Capture-first entrypoints accept.
PacketSource = object


@dataclass
class PacketCapture:
    """Minimal concrete capture: a packet list plus its name map."""

    packets: list[CapturedPacket]
    names: dict[IPv4Address, str] = field(default_factory=dict)

    def host_names(self) -> dict[IPv4Address, str]:
        return dict(self.names)

    def __len__(self) -> int:
        return len(self.packets)


def _decode_records(records: Iterable[PcapRecord]
                    ) -> Iterator[CapturedPacket]:
    for record in records:
        packet = CapturedPacket.decode(record.time_us, record.data)
        if packet is not None:
            yield packet


def resolve_source(source: PacketSource,
                   caller: str = "this entrypoint"
                   ) -> tuple[Iterable[CapturedPacket],
                              dict[IPv4Address, str]]:
    """Coerce ``source`` into ``(packets, names)``.

    Accepts a capture object (``.packets`` + ``.host_names()``), a
    :class:`PcapReader`/:class:`PcapngReader`, an iterable of
    :class:`PcapRecord`, or a plain iterable of
    :class:`CapturedPacket` (the latter three with an empty name map
    — wrap in :class:`PacketCapture` to attach names).
    """
    packets = getattr(source, "packets", None)
    host_names = getattr(source, "host_names", None)
    if packets is not None and callable(host_names):
        return packets, dict(host_names())
    if isinstance(source, (PcapReader, PcapngReader)):
        return _decode_records(source), {}
    iterator = iter(source)  # type: ignore[arg-type]
    try:
        first = next(iterator)
    except StopIteration:
        return [], {}
    rest = itertools.chain([first], iterator)
    if isinstance(first, PcapRecord):
        return _decode_records(rest), {}
    return rest, {}


def as_capture(source: PacketSource,
               caller: str = "this entrypoint") -> PacketCapture:
    """Like :func:`resolve_source` but materializes a reusable
    :class:`PacketCapture` (multi-pass callers)."""
    if isinstance(source, PacketCapture):
        return source
    packets, resolved = resolve_source(source, caller)
    return PacketCapture(packets=list(packets), names=resolved)
