"""The ``repro serve`` application: routes, sockets, lifecycle.

One asyncio server speaks both protocols on one port:

===============================  ====================================
``GET /``                        endpoint index
``GET /healthz``                 liveness + poll counters
``GET /fleet``                   latest snapshot envelope (shared
                                 serialized bytes — no per-request
                                 serialization)
``GET /fleet/at?time_us=T``      time-travel fleet rebuild from the
                                 columnar history store
``GET /links``                   link names (live ∪ recorded)
``GET /links/<name>``            latest snapshot of one link
``GET /links/<name>/history``    per-link poll history
                                 (``since_us``/``until_us``/``limit``)
``GET /ws``                      WebSocket upgrade: one snapshot
                                 envelope frame per poll, conflated
                                 for slow consumers
===============================  ====================================

The concurrency contract: exactly one monitor thread
(:class:`~repro.serve.broadcast.MonitorRunner`) steps the pipeline
and publishes; the asyncio side only reads — shared payload bytes
from the hub, lock-guarded queries from the history store.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Mapping, Optional

from ..simnet.clock import Ticks
from ..stream.monitor import MonitorTarget, Snapshot
from ..stream.snapshots import FleetSnapshot, LinkSnapshot
from .broadcast import MonitorRunner, SnapshotHub
from .history import HistoryStore
from .wire import (OP_CLOSE, OP_PING, OP_PONG, HttpRequest, WireError,
                   close_frame, dump_document, encode_frame,
                   error_response, handshake_response, http_response,
                   json_response, read_frame, read_request)

#: The index document served at ``/`` (and the docs' source of truth).
ENDPOINTS = (
    "/", "/healthz", "/fleet", "/fleet/at?time_us=T", "/links",
    "/links/<name>", "/links/<name>/history?since_us=S&until_us=U"
    "&limit=N", "/ws")


def _int_query(request: HttpRequest, name: str,
               default: Optional[int] = None) -> Optional[int]:
    raw = request.query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise WireError(f"query parameter {name!r} must be an "
                        f"integer, got {raw!r}")


class ServeApp:
    """Routes requests against a hub + optional history store."""

    def __init__(self, hub: SnapshotHub,
                 history: Optional[HistoryStore] = None,
                 runner: Optional[MonitorRunner] = None):
        self.hub = hub
        self.history = history
        self.runner = runner
        #: Total WebSocket connections ever accepted (for /healthz).
        self.ws_accepted = 0

    # -- connection entry point ---------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """One client connection: a single HTTP exchange or a WS."""
        try:
            try:
                request = await read_request(reader)
            except WireError as exc:
                writer.write(error_response(400, str(exc)))
                await writer.drain()
                return
            if request is None:
                return
            if request.path == "/ws":
                await self._websocket(request, reader, writer)
                return
            writer.write(self.respond(request))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    # -- HTTP ---------------------------------------------------------

    def respond(self, request: HttpRequest) -> bytes:
        """The full response bytes for one HTTP request (pure)."""
        if request.method != "GET":
            return error_response(
                405, f"method {request.method} not allowed")
        try:
            return self._route(request)
        except WireError as exc:
            return error_response(400, str(exc))

    def _route(self, request: HttpRequest) -> bytes:
        path = request.path
        if path == "/":
            return json_response(200, {
                "service": "repro serve",
                "endpoints": list(ENDPOINTS)})
        if path == "/healthz":
            return json_response(200, self._health_document())
        if path == "/fleet":
            latest = self.hub.latest
            if latest is None:
                return error_response(503, "no snapshot yet")
            # The shared bytes: serialized once at publish time.
            return http_response(200, latest.document)
        if path == "/fleet/at":
            return self._fleet_at(request)
        if path == "/links":
            return json_response(200, {"links": self._link_names()})
        if path.startswith("/links/"):
            rest = path[len("/links/"):]
            name, _slash, tail = rest.partition("/")
            if not tail and name:
                return self._link_latest(name)
            if tail == "history" and name:
                return self._link_history(name, request)
        return error_response(404, f"no route for {path}")

    def _health_document(self) -> Mapping[str, Any]:
        document: dict[str, Any] = {
            "status": "serving",
            "polls": self.hub.seq,
            "ws_accepted": self.ws_accepted,
            "history_polls": (self.history.poll_count()
                              if self.history is not None else 0),
        }
        if self.runner is not None:
            document["monitor_alive"] = self.runner.is_alive()
            document["monitor_failed"] = self.runner.error is not None
        return document

    def _latest_links(self) -> tuple[LinkSnapshot, ...]:
        payload = self.hub.latest
        if payload is None:
            return ()
        snapshot = payload.snapshot
        if isinstance(snapshot, FleetSnapshot):
            return snapshot.links
        return (snapshot,)

    def _link_names(self) -> list[str]:
        names = {link.link for link in self._latest_links()}
        if self.history is not None:
            names.update(self.history.link_names())
        return sorted(names)

    def _link_latest(self, name: str) -> bytes:
        for link in self._latest_links():
            if link.link == name:
                return json_response(200, link.to_json())
        return error_response(404, f"no link named {name!r}")

    def _link_history(self, name: str,
                      request: HttpRequest) -> bytes:
        if self.history is None:
            return error_response(
                404, "history disabled (serve with --history)")
        since_us = _int_query(request, "since_us", 0)
        until_us = _int_query(request, "until_us")
        limit = _int_query(request, "limit")
        assert since_us is not None
        polls = self.history.link_history(
            name, since_us=since_us, until_us=until_us, limit=limit)
        if not polls and name not in self._link_names():
            return error_response(404, f"no link named {name!r}")
        return json_response(200, {
            "link": name, "count": len(polls), "polls": polls})

    def _fleet_at(self, request: HttpRequest) -> bytes:
        if self.history is None:
            return error_response(
                404, "history disabled (serve with --history)")
        time_us = _int_query(request, "time_us")
        if time_us is None:
            return error_response(
                400, "query parameter 'time_us' is required")
        document = self.history.fleet_at(time_us)
        if document is None:
            return error_response(
                404, f"no poll at or before time_us={time_us}")
        return json_response(200, document)

    # -- WebSocket ----------------------------------------------------

    async def _websocket(self, request: HttpRequest,
                         reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        if not request.wants_websocket:
            writer.write(error_response(
                426, "GET /ws requires a websocket upgrade"))
            await writer.drain()
            return
        writer.write(handshake_response(request))
        await writer.drain()
        self.ws_accepted += 1
        sender = asyncio.ensure_future(self._ws_stream(writer))
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                opcode, payload = frame
                if opcode == OP_CLOSE:
                    writer.write(close_frame())
                    await writer.drain()
                    break
                if opcode == OP_PING:
                    writer.write(encode_frame(payload,
                                              opcode=OP_PONG))
                    await writer.drain()
        except (WireError, ConnectionError):
            pass  # half-closed or garbled client; just drop it
        finally:
            sender.cancel()
            try:
                await sender
            except (asyncio.CancelledError, ConnectionError):
                pass

    async def _ws_stream(self,
                         writer: asyncio.StreamWriter) -> None:
        """Push the shared broadcast frame for every (kept) poll."""
        async for payload, skipped in self.hub.subscribe():
            if skipped:
                # Per-client, so it cannot ride the shared frame —
                # but it only costs anything when a client lags.
                writer.write(encode_frame(dump_document(
                    {"skipped": skipped})))
            writer.write(payload.ws_frame)
            await writer.drain()
        writer.write(close_frame())
        await writer.drain()


async def serve_until(target: MonitorTarget,
                      stop: asyncio.Event,
                      *,
                      host: str = "127.0.0.1",
                      port: int = 0,
                      history: Optional[HistoryStore] = None,
                      follow: bool = False,
                      interval_s: float = 2.0,
                      detect_after_us: Optional[Ticks] = None,
                      max_polls: Optional[int] = None,
                      poll_sleep_s: float = 0.05,
                      on_listening: Optional[Callable[[str, int],
                                                      None]] = None
                      ) -> int:
    """Run the full serving stack until ``stop`` is set.

    Wires the single-writer monitor thread to a hub (+ optional
    history store), serves HTTP/WS on ``host:port`` (port 0 picks a
    free one — ``on_listening(host, port)`` reports the bound
    address), then tears everything down in reverse order.  Returns
    the number of polls the monitor delivered.
    """
    loop = asyncio.get_running_loop()
    hub = SnapshotHub()
    hub.bind(loop)

    def on_snapshot(snapshot: Snapshot) -> None:
        if history is not None:
            history.record(snapshot)
        hub.publish(snapshot)

    runner = MonitorRunner(target, on_snapshot, follow=follow,
                           interval_s=interval_s,
                           detect_after_us=detect_after_us,
                           max_polls=max_polls,
                           poll_sleep_s=poll_sleep_s)
    app = ServeApp(hub, history=history, runner=runner)
    server = await asyncio.start_server(app.handle_connection,
                                        host=host, port=port)
    bound = server.sockets[0].getsockname()
    if on_listening is not None:
        on_listening(bound[0], bound[1])
    runner.start()
    try:
        await stop.wait()
    finally:
        runner.stop()
        await loop.run_in_executor(None, runner.join)
        hub.close()
        server.close()
        await server.wait_closed()
    runner.raise_if_failed()
    return runner.polls
