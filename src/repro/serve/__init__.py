"""``repro.serve`` — snapshot serving at user scale.

An asyncio HTTP + WebSocket layer (stdlib only) over the streaming
monitor: one single-writer monitor thread polls a pipeline, fleet or
sharded fleet; each poll is serialized exactly once and fanned out by
reference to every subscriber; a columnar sqlite store records every
poll for time-travel queries.  See docs/streaming.md ("Serving
snapshots") and the ``repro serve`` CLI.
"""

from .app import ENDPOINTS, ServeApp, serve_until
from .broadcast import MonitorRunner, SnapshotHub, SnapshotPayload
from .history import (JSON_FIELDS, LINK_COLUMNS, HistoryStore,
                      Retention, link_columns)
from .wire import (SnapshotEnvelope, WireError, dump_document,
                   encode_frame, read_frame, read_request)

__all__ = [
    "ENDPOINTS",
    "HistoryStore",
    "JSON_FIELDS",
    "LINK_COLUMNS",
    "MonitorRunner",
    "Retention",
    "ServeApp",
    "SnapshotEnvelope",
    "SnapshotHub",
    "SnapshotPayload",
    "WireError",
    "dump_document",
    "encode_frame",
    "link_columns",
    "read_frame",
    "read_request",
    "serve_until",
]
