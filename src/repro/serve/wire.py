"""HTTP/1.1 and WebSocket wire primitives (stdlib only).

``repro serve`` speaks to browsers, dashboards and scrapers over two
protocols on one port: plain HTTP for request/response queries and
WebSocket (RFC 6455) for the snapshot push stream.  Neither needs a
framework — the subset below (request parsing, response formatting,
the upgrade handshake, frame encode/decode) is small enough to own,
and owning it keeps the serving stack importable in the bare test
container.

The serialized payload contract lives here too:
:class:`SnapshotEnvelope` is the one document shape every subscriber
receives — ``{"seq": N, "time_us": T, "snapshot": <schema-1 doc>}``.
Its key inventory is machine-checked against the schema table in
``docs/streaming.md`` by the ``schema-drift`` lint rule, exactly like
the snapshot ``to_json`` forms it wraps.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from dataclasses import dataclass
from typing import Any, Mapping, Union
from urllib.parse import parse_qsl, urlsplit

from ..simnet.clock import Ticks
from ..stream.snapshots import FleetSnapshot, LinkSnapshot

#: Upper bound on one request head (request line + headers).
MAX_REQUEST_BYTES = 32 * 1024

#: RFC 6455 magic GUID for the accept-key digest.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket frame opcodes (the subset the server handles).
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Fixed masking key for the in-repo test client.  RFC 6455 masks
#: client frames to defeat cache poisoning through *untrusted*
#: intermediaries; the loopback clients in the tests and the CI smoke
#: script face none, and a constant key keeps every byte of a test
#: exchange reproducible.
TEST_MASK_KEY = b"\x37\xfa\x21\x3d"

_REASONS = {200: "OK", 101: "Switching Protocols", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            426: "Upgrade Required", 503: "Service Unavailable"}


class WireError(ValueError):
    """A malformed HTTP request head or WebSocket frame."""


@dataclass(frozen=True, slots=True)
class SnapshotEnvelope:
    """The served payload: one poll's snapshot plus its sequence.

    ``seq`` increases by one per poll of the monitor loop (so a
    subscriber can detect conflated skips), ``time_us`` is the
    snapshot's own stream clock, and ``snapshot`` is the typed
    schema-1 snapshot — a :class:`~repro.stream.snapshots.
    FleetSnapshot` for fleets, a :class:`~repro.stream.snapshots.
    LinkSnapshot` for a single-link monitor.
    """

    seq: int
    time_us: Ticks
    snapshot: Union[FleetSnapshot, LinkSnapshot]

    def to_json(self) -> dict[str, Any]:
        """The wire form (plain JSON-serializable dict)."""
        return {
            "seq": self.seq,
            "time_us": self.time_us,
            "snapshot": self.snapshot.to_json(),
        }


def dump_document(document: Mapping[str, Any]) -> bytes:
    """The canonical serialized form of a served JSON document.

    Sorted keys and minimal separators, so identical documents are
    byte-identical across runs — the history byte-stability tests
    pin this for time-travel queries.
    """
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# -- HTTP ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class HttpRequest:
    """One parsed request head (the server never reads bodies)."""

    method: str
    target: str
    path: str
    query: Mapping[str, str]
    headers: Mapping[str, str]

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_websocket(self) -> bool:
        return ("websocket" in self.header("upgrade").lower()
                and "upgrade" in self.header("connection").lower())


async def read_request(
        reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request head; ``None`` on a clean EOF before data."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise WireError("request head too large") from exc
    if len(head) > MAX_REQUEST_BYTES:
        raise WireError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise WireError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise WireError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=method, target=target,
                       path=split.path or "/", query=query,
                       headers=headers)


def http_response(status: int, body: bytes = b"",
                  content_type: str = "application/json",
                  extra_headers: Mapping[str, str] | None = None
                  ) -> bytes:
    """One full HTTP/1.1 response (always ``Connection: close``)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


def json_response(status: int, document: Mapping[str, Any]) -> bytes:
    return http_response(status, dump_document(document))


def error_response(status: int, message: str) -> bytes:
    return json_response(status, {"error": message})


# -- WebSocket -------------------------------------------------------


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client key."""
    digest = hashlib.sha1(
        (key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def handshake_response(request: HttpRequest) -> bytes:
    """The 101 upgrade response for a WebSocket request head."""
    key = request.header("sec-websocket-key")
    if not key:
        raise WireError("websocket upgrade without a key")
    head = ("HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n\r\n")
    return head.encode("latin-1")


def encode_frame(payload: bytes, opcode: int = OP_TEXT,
                 mask_key: bytes | None = None,
                 fin: bool = True) -> bytes:
    """One WebSocket frame.

    Servers send unmasked frames (``mask_key=None``) — which is what
    lets one encoded broadcast frame be shared verbatim by every
    subscriber.  Clients must mask; the test client passes
    :data:`TEST_MASK_KEY`.
    """
    head = bytearray()
    head.append((0x80 if fin else 0x00) | (opcode & 0x0F))
    mask_bit = 0x80 if mask_key is not None else 0x00
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head.extend(struct.pack(">H", length))
    else:
        head.append(mask_bit | 127)
        head.extend(struct.pack(">Q", length))
    if mask_key is None:
        return bytes(head) + payload
    if len(mask_key) != 4:
        raise WireError("mask key must be 4 bytes")
    head.extend(mask_key)
    masked = bytes(byte ^ mask_key[index % 4]
                   for index, byte in enumerate(payload))
    return bytes(head) + masked


def close_frame(code: int = 1000,
                mask_key: bytes | None = None) -> bytes:
    return encode_frame(struct.pack(">H", code), opcode=OP_CLOSE,
                        mask_key=mask_key)


async def read_frame(reader: asyncio.StreamReader
                     ) -> tuple[int, bytes] | None:
    """One ``(opcode, payload)`` frame; ``None`` on a clean EOF.

    Handles masked (client) and unmasked (server) frames alike.
    Continuation fragments are assembled into the initiating frame
    before returning, so callers only ever see whole messages.
    """
    message: bytearray | None = None
    opcode = OP_CONT
    while True:
        try:
            head = await reader.readexactly(2)
        except asyncio.IncompleteReadError as exc:
            # EOF on a frame boundary is a clean close; inside a
            # fragmented message (or mid-head) it is a protocol error.
            if not exc.partial and message is None:
                return None
            raise WireError("connection closed mid-frame") from exc
        try:
            fin = bool(head[0] & 0x80)
            frame_op = head[0] & 0x0F
            masked = bool(head[1] & 0x80)
            length = head[1] & 0x7F
            if length == 126:
                length = struct.unpack(
                    ">H", await reader.readexactly(2))[0]
            elif length == 127:
                length = struct.unpack(
                    ">Q", await reader.readexactly(8))[0]
            mask_key = await reader.readexactly(4) if masked else b""
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise WireError("connection closed mid-frame") from exc
        if masked:
            payload = bytes(byte ^ mask_key[index % 4]
                            for index, byte in enumerate(payload))
        if frame_op != OP_CONT:
            opcode = frame_op
            message = bytearray()
        elif message is None:
            raise WireError("continuation frame with nothing to "
                            "continue")
        assert message is not None
        message.extend(payload)
        if fin:
            return opcode, bytes(message)


def client_handshake(host: str, port: int, path: str = "/ws",
                     key: str = "cmVwcm8tc2VydmUtdGVzdAo=") -> bytes:
    """The request head the in-repo WebSocket test client sends."""
    return (f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n").encode("latin-1")
