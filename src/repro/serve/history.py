"""Columnar snapshot history: append-only sqlite, time-travel reads.

Every poll of the serving monitor appends one fleet row and one row
per link.  The layout is *columnar in the schema-1 field inventory*:
each scalar field of :class:`~repro.stream.snapshots.LinkSnapshot`
gets its own typed SQL column — derived programmatically from the
dataclass fields, so adding a snapshot field without teaching the
store fails loudly at import time instead of silently widening a JSON
blob — while the open-schema mapping fields (``stages``,
``eviction``, ``analyzers``) are stored as canonical JSON text.

Reads rebuild typed snapshots through the same
:meth:`~repro.stream.snapshots.LinkSnapshot.from_json` /
:meth:`~repro.stream.snapshots.FleetSnapshot.from_links` path the
sharded fleet uses, so a reconstructed fleet document is derived from
exactly the shapes a live snapshot is — and, because every stored
field is stream-time deterministic (no wall clock anywhere), two
identical runs produce byte-identical query results.

Retention is deterministic over stream state: ``max_polls`` keeps the
newest N polls, ``max_age_us`` drops polls whose fleet clock trails
the newest poll by more than the bound (capture time, not wall
clock), and compaction deletes whole polls oldest-first (a partial
poll never survives; the newest poll always does).
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import threading
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from ..simnet.clock import Ticks
from ..stream.snapshots import (SNAPSHOT_SCHEMA_VERSION, FleetSnapshot,
                                LinkSnapshot)

#: Version of the store layout itself (distinct from the snapshot
#: schema version, which is stored alongside it).
STORE_VERSION = 1

#: LinkSnapshot annotation text -> SQL column type.  Mapping-typed
#: fields become canonical-JSON TEXT columns.
_SQL_TYPES = {"str": "TEXT NOT NULL", "int": "INTEGER NOT NULL",
              "Ticks": "INTEGER NOT NULL"}

#: Fields serialized as JSON text rather than native columns.
JSON_FIELDS = ("stages", "eviction", "analyzers")


def link_columns() -> tuple[tuple[str, str], ...]:
    """``(column, sql_type)`` per schema-1 ``LinkSnapshot`` field.

    Derived from the dataclass field inventory so the store and the
    snapshot contract cannot drift silently: an unknown field type
    raises here, at import time.
    """
    columns: list[tuple[str, str]] = []
    for field in dataclasses.fields(LinkSnapshot):
        annotation = str(field.type)
        if field.name in JSON_FIELDS:
            columns.append((field.name, "TEXT NOT NULL"))
        elif annotation in _SQL_TYPES:
            columns.append((field.name, _SQL_TYPES[annotation]))
        else:
            raise TypeError(
                f"LinkSnapshot.{field.name}: no columnar mapping for "
                f"type {annotation!r} — teach repro.serve.history "
                "about it")
    return tuple(columns)


#: The derived columnar layout, fixed at import time.
LINK_COLUMNS = link_columns()


@dataclass(frozen=True)
class Retention:
    """How much history to keep.

    ``max_polls`` bounds the store to the newest N polls;
    ``max_age_us`` drops polls older than the bound relative to the
    newest recorded poll's fleet clock (stream time — replaying the
    same capture compacts identically).  Both ``None`` = unbounded;
    both set = both enforced.  ``compact_every`` is how many appends
    may pass between automatic compactions.
    """

    max_polls: Optional[int] = None
    max_age_us: Optional[int] = None
    compact_every: int = 64

    def __post_init__(self) -> None:
        if self.max_polls is not None and self.max_polls < 1:
            raise ValueError(
                f"max_polls must be >= 1, got {self.max_polls}")
        if self.max_age_us is not None and self.max_age_us < 0:
            raise ValueError(
                f"max_age_us must be >= 0, got {self.max_age_us}")
        if self.compact_every < 1:
            raise ValueError(
                f"compact_every must be >= 1, got {self.compact_every}")

    @property
    def bounded(self) -> bool:
        return self.max_polls is not None or self.max_age_us is not None


class HistoryStore:
    """Append-only columnar store of per-poll fleet snapshots.

    One writer (the monitor thread) appends; any number of readers
    (the asyncio handlers) query — a single internal lock serializes
    access to the shared sqlite connection.  ``path`` may be
    ``":memory:"`` for an ephemeral store.
    """

    def __init__(self, path: str = ":memory:",
                 retention: Retention | None = None):
        self.path = path
        self.retention = retention or Retention()
        self._lock = threading.Lock()
        # One connection shared across the writer thread and the
        # event-loop readers; every use is lock-guarded.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._appends_since_compact = 0
        with self._lock:
            self._create_tables()

    # -- schema -------------------------------------------------------

    def _create_tables(self) -> None:
        link_cols = ", ".join(f"{name} {sql}"
                              for name, sql in LINK_COLUMNS)
        self._conn.executescript(f"""
            CREATE TABLE IF NOT EXISTS meta(
                key TEXT PRIMARY KEY, value TEXT NOT NULL);
            CREATE TABLE IF NOT EXISTS polls(
                seq INTEGER PRIMARY KEY,
                time_us INTEGER NOT NULL,
                unrouted INTEGER NOT NULL,
                health TEXT NOT NULL);
            CREATE TABLE IF NOT EXISTS link_polls(
                seq INTEGER NOT NULL,
                {link_cols},
                PRIMARY KEY(seq, link));
            CREATE INDEX IF NOT EXISTS link_polls_by_link
                ON link_polls(link, time_us);
            """)
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'snapshot_schema'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta(key, value) VALUES(?, ?), (?, ?)",
                ("snapshot_schema", str(SNAPSHOT_SCHEMA_VERSION),
                 "store_version", str(STORE_VERSION)))
            self._conn.commit()
        elif row[0] != str(SNAPSHOT_SCHEMA_VERSION):
            raise ValueError(
                f"history store {self.path!r} holds snapshot schema "
                f"{row[0]}, this build writes "
                f"{SNAPSHOT_SCHEMA_VERSION} — start a fresh store")

    # -- writing ------------------------------------------------------

    def record(self, snapshot: FleetSnapshot | LinkSnapshot) -> int:
        """Append one poll; returns its sequence number.

        A single-link monitor records its :class:`LinkSnapshot` as a
        one-link poll (no health, no unrouted), so every serve shape
        shares one store layout.
        """
        if isinstance(snapshot, LinkSnapshot):
            links: Sequence[LinkSnapshot] = (snapshot,)
            health: dict[str, str] = {}
            unrouted = 0
        else:
            links = snapshot.links
            health = dict(snapshot.health)
            unrouted = snapshot.unrouted
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM polls").fetchone()
            seq = int(row[0]) + 1
            self._conn.execute(
                "INSERT INTO polls(seq, time_us, unrouted, health) "
                "VALUES(?, ?, ?, ?)",
                (seq, snapshot.time_us, unrouted,
                 json.dumps(health, sort_keys=True)))
            names = ", ".join(name for name, _sql in LINK_COLUMNS)
            slots = ", ".join("?" for _ in LINK_COLUMNS)
            self._conn.executemany(
                f"INSERT INTO link_polls(seq, {names}) "
                f"VALUES(?, {slots})",
                [(seq, *self._link_row(link)) for link in links])
            self._conn.commit()
            self._appends_since_compact += 1
            due = (self.retention.bounded
                   and self._appends_since_compact
                   >= self.retention.compact_every)
        if due:
            self.compact()
        return seq

    @staticmethod
    def _link_row(link: LinkSnapshot) -> tuple[Any, ...]:
        document = link.to_json()
        values: list[Any] = []
        for name, _sql in LINK_COLUMNS:
            value = document[name]
            if name in JSON_FIELDS:
                value = json.dumps(value, sort_keys=True)
            values.append(value)
        return tuple(values)

    def compact(self) -> int:
        """Drop the oldest polls beyond the retention bounds.

        Both bounds reduce to a single "first surviving seq" cutoff —
        the stricter one wins — and whole polls below it are deleted
        oldest-first.  The age bound compares each poll's fleet clock
        to the *newest* poll's, so the newest poll always survives.
        """
        retention = self.retention
        if not retention.bounded:
            return 0
        with self._lock:
            self._appends_since_compact = 0
            cutoff = 0
            if retention.max_polls is not None:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM polls").fetchone()
                excess = int(row[0]) - retention.max_polls
                if excess > 0:
                    cutoff = int(self._conn.execute(
                        "SELECT seq FROM polls "
                        "ORDER BY seq LIMIT 1 OFFSET ?",
                        (excess,)).fetchone()[0])
            if retention.max_age_us is not None:
                row = self._conn.execute(
                    "SELECT MAX(time_us) FROM polls").fetchone()
                if row[0] is not None:
                    horizon = int(row[0]) - retention.max_age_us
                    survivor = self._conn.execute(
                        "SELECT MIN(seq) FROM polls "
                        "WHERE time_us >= ?", (horizon,)).fetchone()
                    cutoff = max(cutoff, int(survivor[0]))
            if cutoff <= 0:
                return 0
            removed = self._conn.execute(
                "SELECT COUNT(*) FROM polls WHERE seq < ?",
                (cutoff,)).fetchone()[0]
            if not removed:
                return 0
            self._conn.execute(
                "DELETE FROM link_polls WHERE seq < ?", (cutoff,))
            self._conn.execute(
                "DELETE FROM polls WHERE seq < ?", (cutoff,))
            self._conn.commit()
            return int(removed)

    # -- reading ------------------------------------------------------

    def poll_count(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM polls").fetchone()
        return int(row[0])

    def span_us(self) -> tuple[Ticks, Ticks] | None:
        """``(earliest, latest)`` poll clock, ``None`` when empty."""
        with self._lock:
            row = self._conn.execute(
                "SELECT MIN(time_us), MAX(time_us) FROM polls"
            ).fetchone()
        if row[0] is None:
            return None
        return int(row[0]), int(row[1])

    def link_names(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT link FROM link_polls "
                "ORDER BY link").fetchall()
        return [row[0] for row in rows]

    def link_history(self, link: str, since_us: Ticks = 0,
                     until_us: Optional[Ticks] = None,
                     limit: Optional[int] = None
                     ) -> list[dict[str, Any]]:
        """Schema-1 link documents for ``link``, oldest first.

        ``since_us``/``until_us`` bound the link's own stream clock
        (inclusive); ``limit`` keeps the *newest* matching polls.
        """
        query = [f"SELECT seq, "
                 f"{', '.join(n for n, _s in LINK_COLUMNS)} "
                 f"FROM link_polls WHERE link = ? AND time_us >= ?"]
        args: list[Any] = [link, since_us]
        if until_us is not None:
            query.append("AND time_us <= ?")
            args.append(until_us)
        query.append("ORDER BY seq DESC")
        if limit is not None:
            query.append("LIMIT ?")
            args.append(limit)
        with self._lock:
            rows = self._conn.execute(
                " ".join(query), args).fetchall()
        documents = []
        for row in reversed(rows):
            document = self._link_document(row[1:])
            document["poll_seq"] = row[0]
            documents.append(document)
        return documents

    @staticmethod
    def _link_document(row: Sequence[Any]) -> dict[str, Any]:
        document: dict[str, Any] = {
            "schema": SNAPSHOT_SCHEMA_VERSION}
        for (name, _sql), value in zip(LINK_COLUMNS, row):
            if name in JSON_FIELDS:
                value = json.loads(value)
            document[name] = value
        return document

    def _links_of(self, seq: int) -> tuple[LinkSnapshot, ...]:
        rows = self._conn.execute(
            f"SELECT {', '.join(n for n, _s in LINK_COLUMNS)} "
            f"FROM link_polls WHERE seq = ? ORDER BY link",
            (seq,)).fetchall()
        return tuple(LinkSnapshot.from_json(self._link_document(row))
                     for row in rows)

    def fleet_at(self, time_us: Ticks) -> Optional[dict[str, Any]]:
        """The fleet document as of stream time ``time_us``.

        Rebuilds the newest recorded poll whose fleet clock is at or
        before ``time_us`` — the time-travel read behind
        ``GET /fleet/at``.  ``None`` when nothing that old exists.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT seq, time_us, unrouted, health FROM polls "
                "WHERE time_us <= ? ORDER BY seq DESC LIMIT 1",
                (time_us,)).fetchone()
            if row is None:
                return None
            links = self._links_of(row[0])
        snapshot = FleetSnapshot.from_links(
            links, now_us=int(row[1]),
            health=json.loads(row[3]), unrouted=int(row[2]))
        document = snapshot.to_json()
        document["poll_seq"] = row[0]
        return document

    def polls(self) -> Iterator[tuple[int, Ticks]]:
        """Every ``(seq, time_us)`` poll, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT seq, time_us FROM polls ORDER BY seq"
            ).fetchall()
        return iter([(int(seq), int(time)) for seq, time in rows])

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
