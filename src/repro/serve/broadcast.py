"""Snapshot fan-out: one serialization per poll, N subscribers.

The scaling contract of ``repro serve`` is that subscriber count must
not multiply serialization work: a poll costs exactly one
``to_json()`` + ``json.dumps`` + WebSocket frame encode, however many
clients are connected.  :class:`SnapshotHub` enforces that shape —
:meth:`publish` builds one immutable :class:`SnapshotPayload` (the
typed snapshot ref, its serialized document, and the pre-encoded
unmasked broadcast frame) and every subscriber shares those same
objects by reference.  ``tests/serve/test_broadcast.py`` pins the
one-serialization invariant for 10 000 subscribers.

Slow consumers conflate rather than queue: a subscriber that missed
polls is handed the *latest* payload and the count of polls it
skipped.  Snapshots are state, not events — the newest one supersedes
the missed ones, and the columnar history store serves anyone who
needs the full sequence.

The hub is the bridge between the two concurrency worlds of the
server: the single-writer monitor thread (:class:`MonitorRunner`)
publishes, asyncio connection handlers subscribe.  All waiter state
mutates on the event loop thread (via ``call_soon_threadsafe``);
``publish`` itself only builds the payload and stores the reference.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import AsyncIterator, Callable, Optional, Union

from ..simnet.clock import Ticks
from ..stream.monitor import MonitorTarget, Snapshot, run_monitor
from ..stream.snapshots import FleetSnapshot, LinkSnapshot
from .wire import (OP_TEXT, SnapshotEnvelope, dump_document,
                   encode_frame)


@dataclass(frozen=True, slots=True)
class SnapshotPayload:
    """One poll's broadcast material, immutable and shared.

    ``document`` is the serialized :class:`~repro.serve.wire.
    SnapshotEnvelope` (UTF-8 JSON bytes) and ``ws_frame`` the same
    document wrapped in one unmasked TEXT frame — both encoded once
    at publish time and reused verbatim by every HTTP response and
    WebSocket send.
    """

    seq: int
    time_us: Ticks
    snapshot: Union[FleetSnapshot, LinkSnapshot]
    document: bytes
    ws_frame: bytes


class SnapshotHub:
    """Latest-value broadcast channel for monitor snapshots."""

    def __init__(self) -> None:
        self._latest: Optional[SnapshotPayload] = None
        self._seq = 0
        self._lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._turn: Optional[asyncio.Future[Optional[
            SnapshotPayload]]] = None
        self._closed = False
        #: How many times a snapshot was serialized — the fan-out
        #: invariant is that this equals the number of polls, never
        #: the number of subscribers.
        self.serializations = 0

    # -- loop binding (called from the asyncio side) ------------------

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the hub to the serving event loop."""
        self._loop = loop
        if self._turn is None:
            self._turn = loop.create_future()

    # -- publishing (called from the monitor thread) ------------------

    def publish(self, snapshot: Union[FleetSnapshot, LinkSnapshot]
                ) -> SnapshotPayload:
        """Serialize ``snapshot`` once and wake every subscriber."""
        with self._lock:
            self._seq += 1
            envelope = SnapshotEnvelope(seq=self._seq,
                                        time_us=snapshot.time_us,
                                        snapshot=snapshot)
            document = dump_document(envelope.to_json())
            self.serializations += 1
            payload = SnapshotPayload(
                seq=envelope.seq, time_us=envelope.time_us,
                snapshot=snapshot, document=document,
                ws_frame=encode_frame(document, opcode=OP_TEXT))
            self._latest = payload
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._wake, payload)
        return payload

    def close(self) -> None:
        """End every subscription (idempotent, thread-safe)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._wake, None)

    def _wake(self, payload: Optional[SnapshotPayload]) -> None:
        assert self._loop is not None
        turn, self._turn = self._turn, self._loop.create_future()
        if turn is not None and not turn.done():
            turn.set_result(payload)

    # -- subscribing (asyncio side) -----------------------------------

    @property
    def latest(self) -> Optional[SnapshotPayload]:
        return self._latest

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def closed(self) -> bool:
        return self._closed

    async def next_payload(self, after_seq: int
                           ) -> Optional[SnapshotPayload]:
        """The next payload newer than ``after_seq`` (conflating), or
        ``None`` once the hub closes with nothing newer to hand out."""
        while True:
            latest = self._latest
            if latest is not None and latest.seq > after_seq:
                return latest
            if self._closed:
                return None
            assert self._turn is not None, "hub is not bound to a loop"
            payload = await asyncio.shield(self._turn)
            if payload is None:
                return None

    async def subscribe(self, *, start_with_latest: bool = True
                        ) -> AsyncIterator[tuple[SnapshotPayload,
                                                 int]]:
        """Yield ``(payload, skipped)`` pairs until the hub closes.

        ``skipped`` counts the polls conflated away since the
        previous yield (0 for a consumer that keeps up).
        """
        last = 0 if start_with_latest else self._seq
        while True:
            payload = await self.next_payload(last)
            if payload is None:
                return
            skipped = max(0, payload.seq - last - 1) if last else 0
            last = payload.seq
            yield payload, skipped


class MonitorRunner(threading.Thread):
    """The single writer: drives a monitor target in a thread.

    Exactly one thread steps the pipeline/fleet (the same invariant
    ``run_monitor`` has at the terminal); every poll is delivered to
    ``on_snapshot`` — the serve stack passes a hook that records to
    the history store and publishes to the hub.  :meth:`stop` asks
    the loop to wind down; it emits one final flushed snapshot before
    the thread exits.
    """

    def __init__(self, target: MonitorTarget,
                 on_snapshot: Callable[[Snapshot], None],
                 interval_s: float = 2.0,
                 follow: bool = False,
                 detect_after_us: Optional[Ticks] = None,
                 max_polls: Optional[int] = None,
                 poll_sleep_s: float = 0.05):
        super().__init__(name="repro-serve-monitor", daemon=True)
        self._target = target
        self._on_snapshot = on_snapshot
        self._interval_s = interval_s
        self._follow = follow
        self._detect_after_us = detect_after_us
        self._max_polls = max_polls
        self._poll_sleep_s = poll_sleep_s
        # NB: not ``self._stop`` — threading.Thread owns that name
        # internally (is_alive() calls it after the thread exits).
        self._stop_requested = threading.Event()
        self.polls = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self.polls = run_monitor(
                self._target, out=None,
                follow=self._follow,
                interval_s=self._interval_s,
                detect_after_us=self._detect_after_us,
                max_snapshots=self._max_polls,
                poll_sleep_s=self._poll_sleep_s,
                on_snapshot=self._on_snapshot,
                should_stop=self._stop_requested.is_set)
        except BaseException as exc:  # surfaced via .error / raise_if_failed
            self.error = exc

    def stop(self) -> None:
        self._stop_requested.set()

    def raise_if_failed(self) -> None:
        if self.error is not None:
            raise RuntimeError(
                "serve monitor thread failed") from self.error
