"""repro — reproduction of "Uncharted Networks: A First Measurement
Study of the Bulk Power System" (IMC 2020).

Subpackages:

* :mod:`repro.iec104`   — IEC 60870-5-104 protocol: frames, ASDUs, the
  strict baseline parser and the paper's tolerant profile-inferring
  parser, connection state machine, timers.
* :mod:`repro.netstack` — from-scratch Ethernet/IPv4/TCP codecs, pcap
  file I/O, TCP reassembly, flow tracking.
* :mod:`repro.simnet`   — discrete-event simulator of the federated
  bulk-power SCADA network (the stand-in for the proprietary captures).
* :mod:`repro.grid`     — power-system physics: generators, load,
  frequency, AGC, and the Fig. 21 activation signature.
* :mod:`repro.analysis` — the paper's measurement pipeline: compliance,
  TCP flows, session clustering, Markov/N-gram profiling, outstation
  classification, physical DPI.
* :mod:`repro.datasets` — the paper's topology as data and
  deterministic Y1/Y2 synthetic capture generation.

Quickstart::

    from repro.datasets import generate_capture, CaptureConfig
    from repro.analysis import extract_apdus, FlowAnalysis

    capture = generate_capture(1, CaptureConfig(time_scale=0.02))
    events = extract_apdus(capture)
    flows = FlowAnalysis.from_packets("Y1", capture)
    print(flows.summary().rows())
"""

__version__ = "1.2.0"

__all__ = ["__version__"]
