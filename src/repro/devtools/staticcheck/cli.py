"""``repro lint`` — the CLI front end of the staticcheck linter.

Usage::

    repro lint src/ tests/                # lint explicit paths
    repro lint --self                     # lint the repo's own src/
    repro lint --self --format sarif -o lint.sarif
    repro lint --list-rules
    repro lint src --select determinism,struct-format
    repro lint --self --baseline .staticcheck-baseline.json
    repro lint --self --update-baseline   # re-record the ratchet
    repro lint --self --jobs 0            # phase 1: one worker/CPU

Exit status: 0 when no finding survives suppression and the baseline,
1 otherwise, and 2 for usage errors (unknown rule ids, unreadable
baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .cache import ResultCache
from .engine import lint_paths
from .registry import build_rules
from .reporters import FORMATTERS, format_text


def project_src_root() -> Path:
    """The repo's ``src/`` directory, located from this file.

    ``cli.py`` lives at ``src/repro/devtools/staticcheck/cli.py``, so
    three parents up is the ``src`` root whatever the checkout path.
    """
    return Path(__file__).resolve().parents[3]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach lint options (shared with the top-level ``repro`` CLI)."""
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: --self)")
    parser.add_argument("--self", action="store_true", dest="lint_self",
                        help="lint the project's own src/ tree and "
                             "fail on any finding")
    parser.add_argument("--format", choices=sorted(FORMATTERS),
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--select",
                        help="comma-separated rule ids to run "
                             "(default: all registered rules)")
    parser.add_argument("--output", "-o",
                        help="write the report to a file instead of "
                             "stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--no-cache", action="store_true",
                        dest="no_cache",
                        help="re-lint every file, ignoring the "
                             "mtime-keyed result cache")
    parser.add_argument("--jobs", "-j", type=int, default=0,
                        help="worker processes for phase-1 parsing "
                             "(0 = one per CPU, 1 = serial; "
                             "default: 0)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="grandfather the findings recorded in "
                             "PATH; only new findings fail "
                             f"(default name: {DEFAULT_BASELINE_NAME})")
    parser.add_argument("--update-baseline", action="store_true",
                        dest="update_baseline",
                        help="re-record every current finding into "
                             "the baseline file and exit 0 — the "
                             "ratchet is reset to the tree as-is")


def run_lint(args: argparse.Namespace, out=sys.stdout) -> int:
    select = None
    if args.select:
        select = [rule_id.strip()
                  for rule_id in args.select.split(",")
                  if rule_id.strip()]
    if args.list_rules:
        try:
            rules = build_rules(select)
        except KeyError as exc:
            print(f"unknown rule id(s): {exc.args[0]}",
                  file=sys.stderr)
            return 2
        for rule in sorted(rules, key=lambda r: r.rule_id):
            print(f"{rule.rule_id:24s} {rule.severity.label:8s} "
                  f"{rule.description}", file=out)
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        names = ", ".join(str(path) for path in missing)
        print(f"no such file or directory: {names}", file=sys.stderr)
        return 2
    root: Path | None = None
    if args.lint_self or not paths:
        src = project_src_root()
        paths.append(src)
        root = src.parent

    update_baseline = getattr(args, "update_baseline", False)
    baseline_arg = getattr(args, "baseline", None)
    baseline_path: Path | None = None
    if baseline_arg:
        baseline_path = Path(baseline_arg)
    elif update_baseline:
        baseline_path = (root or Path.cwd()) / DEFAULT_BASELINE_NAME
    baseline: Baseline | None = None
    if baseline_path is not None and not update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    cache = None if getattr(args, "no_cache", False) else ResultCache()
    try:
        result = lint_paths(paths, select=select, root=root,
                            cache=cache,
                            jobs=getattr(args, "jobs", None),
                            baseline=baseline)
    except KeyError as exc:
        print(f"unknown rule id(s): {exc.args[0]}", file=sys.stderr)
        return 2

    if update_baseline:
        assert baseline_path is not None
        recorded = Baseline.from_findings(result.findings)
        recorded.save(baseline_path)
        print(f"baseline: recorded {len(recorded)} finding(s) "
              f"to {baseline_path}", file=out)
        return 0

    report = FORMATTERS[args.format](result)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        if args.format != "text":
            print(format_text(result), file=out)
    else:
        print(report, file=out)
    return result.exit_code


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-staticcheck",
        description="AST-based protocol-conformance and determinism "
                    "linter for the reproduction")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv), out=out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
