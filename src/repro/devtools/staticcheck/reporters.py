"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The SARIF output is the minimal valid subset that GitHub code scanning
accepts (tool driver with rule metadata, one result per finding with a
physical location), so the CI workflow can upload lint findings as
annotations without any extra tooling.
"""

from __future__ import annotations

import json

from .engine import RunResult
from .findings import Finding, Severity
from .registry import build_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-staticcheck"
TOOL_VERSION = "1.0.0"


def format_text(result: RunResult) -> str:
    """One ``path:line:col: severity [rule] message`` line per finding
    plus a summary tail line."""
    lines = [finding.render() for finding in result.findings]
    counts = {severity: 0 for severity in Severity}
    for finding in result.findings:
        counts[finding.severity] += 1
    summary = (f"{len(result.findings)} finding(s) "
               f"({counts[Severity.ERROR]} error, "
               f"{counts[Severity.WARNING]} warning, "
               f"{counts[Severity.NOTE]} note) "
               f"in {result.files_checked} file(s)")
    if result.suppressed:
        summary += f"; {result.suppressed} suppressed"
    if result.baselined:
        summary += f"; {result.baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> dict:
    entry = {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "severity": finding.severity.label,
        "message": finding.message,
    }
    if finding.related:
        entry["related"] = [
            {"path": loc.path, "line": loc.line,
             "message": loc.message} for loc in finding.related]
    return entry


def format_json(result: RunResult) -> str:
    document = {
        "tool": {"name": TOOL_NAME, "version": TOOL_VERSION},
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "rules": result.rule_ids,
        "findings": [_finding_dict(finding)
                     for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _rule_metadata(rule_ids: list[str]) -> list[dict]:
    descriptions: dict[str, str] = {}
    try:
        for rule in build_rules():
            descriptions[rule.rule_id] = rule.description
    except Exception:  # registry import failure must not kill a report
        descriptions = {}
    return [{"id": rule_id,
             "shortDescription": {
                 "text": descriptions.get(rule_id, rule_id)}}
            for rule_id in sorted(set(rule_ids))]


def _sarif_result(finding: Finding) -> dict:
    entry: dict = {
        "ruleId": finding.rule_id,
        "level": finding.severity.sarif_level,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/")},
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col,
                },
            }
        }],
    }
    if finding.related:
        # Cross-file findings point at the other side of the edge
        # (the callee definition, the docs table, the mutation site).
        entry["relatedLocations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": loc.path.replace("\\", "/")},
                    "region": {"startLine": loc.line},
                },
                "message": {"text": loc.message},
            }
            for loc in finding.related
        ]
    return entry


def format_sarif(result: RunResult) -> str:
    reported_rules = sorted({finding.rule_id
                             for finding in result.findings}
                            | set(result.rule_ids))
    run = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "informationUri":
                    "https://example.invalid/repro-staticcheck",
                "rules": _rule_metadata(reported_rules),
            }
        },
        "results": [_sarif_result(finding)
                    for finding in result.findings],
    }
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(document, indent=2, sort_keys=True)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "sarif": format_sarif,
}
