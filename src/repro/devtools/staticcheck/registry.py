"""Rule base classes and the pluggable rule registry.

Rules come in three flavours:

* :class:`AstRule` — runs once per source file against its parsed AST
  (determinism, struct-format, hygiene rules);
* :class:`CrossFileRule` — runs against the phase-1
  :class:`~repro.devtools.staticcheck.project.ProjectModel`, either
  per module (cached against the module's dependency-aware deep
  digest) or once per model (shard-safety, schema-drift,
  deprecation-expiry, time-unit-flow);
* :class:`ProjectRule` — runs once per lint invocation against the
  project itself (the constants-consistency rule, which imports the
  dispatch tables and cross-checks them).

New rules register themselves with the :func:`register` decorator; the
engine instantiates everything in the registry unless the caller
narrows the selection with ``--select``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import ModuleSummary, ProjectModel


@dataclass
class FileContext:
    """Everything an :class:`AstRule` may need about one source file."""

    path: Path
    source: str
    tree: ast.Module
    #: Dotted module path, e.g. ``repro.simnet.clock`` (best effort —
    #: empty for files outside a package root).
    module: str = ""

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def line_at(self, lineno: int) -> str:
        lines = self.lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""

    def in_package(self, *fragments: str) -> bool:
        """True when the module path contains any dotted fragment."""
        parts = self.module.split(".")
        return any(fragment in parts for fragment in fragments)

    def finding(self, rule: "Rule", node: ast.AST, message: str,
                severity: Severity | None = None) -> Finding:
        return Finding(path=str(self.path),
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule_id=rule.rule_id,
                       message=message,
                       severity=severity or rule.severity)


class Rule:
    """Base class: subclasses set ``rule_id``/``description``.

    ``version`` is part of the result-cache key: bump it whenever a
    rule's semantics change in a way the staticcheck package digest
    cannot see (external inputs such as docs tables, pyproject
    metadata, or data files the rule reads).
    """

    rule_id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    version: int = 1


class AstRule(Rule):
    """A rule that inspects one parsed source file at a time."""

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


class CrossFileRule(Rule):
    """A rule over the phase-1 project model.

    Implement :meth:`check_module` for per-module analyses whose
    result depends only on the module plus its transitive imports —
    the engine caches those against the module's deep digest.
    Implement :meth:`check_model` for genuinely global analyses
    (always re-run).  A rule may implement both.
    """

    def check_module(self, model: "ProjectModel",
                     summary: "ModuleSummary") -> Iterator[Finding]:
        return iter(())

    def check_model(self, model: "ProjectModel") -> Iterator[Finding]:
        return iter(())

    def module_key_extra(self, model: "ProjectModel",
                         module: str) -> str:
        """Extra cache-key material for :meth:`check_module`.

        Override when a module's verdict depends on whole-graph
        properties its own closure cannot see (e.g. *reverse*
        reachability for shard-safety).
        """
        return ""


class ProjectRule(Rule):
    """A rule that runs once per lint invocation (semantic checks)."""

    def check_project(self, paths: Iterable[Path]) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


#: rule_id -> rule factory. Populated by :func:`register`.
_REGISTRY: dict[str, Callable[[], Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to the default rule set."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def build_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules (optionally a subset).

    Raises ``KeyError`` naming the unknown id when ``select`` mentions
    a rule that does not exist — a typo in ``--select`` should not
    silently lint nothing.
    """
    _load_builtin_rules()
    if select is None:
        wanted = registered_rule_ids()
    else:
        wanted = list(select)
        unknown = [rule_id for rule_id in wanted
                   if rule_id not in _REGISTRY]
        if unknown:
            raise KeyError(", ".join(sorted(unknown)))
    return [_REGISTRY[rule_id]() for rule_id in wanted]


def _load_builtin_rules() -> None:
    """Import the built-in rule modules so they self-register."""
    from . import rules  # noqa: F401  (import side effect)
