"""The lint engine: discovery, two analysis phases, suppression and
baseline filtering.

Phase 1 walks every file once: parses it, runs the per-file AST rules
and reduces it to a :class:`~.project.ModuleSummary`.  Files are
independent here, so the phase parallelises across worker processes
(``jobs=``) and caches per file on ``(mtime, size, rule-set
signature)``.

Phase 2 assembles the summaries into a
:class:`~.project.ProjectModel` (import graph, symbol tables,
dataclass inventories, call-edge approximation) and runs the
cross-file rules against it.  Per-module results are cached on the
module's *deep digest* — its summary plus everything it transitively
imports — so editing ``iec104/constants.py`` re-analyses every
importer even though their mtimes never moved.

The engine is deliberately dependency-free (stdlib ``ast`` only) so
``repro lint`` runs in the same minimal environment as the analyses
themselves — CI does not need ruff/mypy installed for the
project-specific invariants to be enforced.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline
from .cache import ResultCache, rules_signature
from .findings import Finding, Severity
from .project import ModuleSummary, ProjectModel, extract_summary
from .registry import (AstRule, CrossFileRule, FileContext,
                       ProjectRule, Rule, build_rules)
from .suppressions import SuppressionIndex

#: Directory names never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "build", "dist", ".eggs"}

#: Below this many files-to-parse, a worker pool costs more than it
#: saves; phase 1 stays serial.
_PARALLEL_THRESHOLD = 4


@dataclass
class RunResult:
    """Outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    rule_ids: list[str] = field(default_factory=list)
    #: Findings grandfathered by the baseline this run.
    baselined: int = 0
    #: Modules re-parsed (phase 1) or whose cross-file verdict was
    #: recomputed (phase 2) — everything *not* served from cache.
    reanalyzed: list[str] = field(default_factory=list)

    @property
    def worst_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)

    @property
    def exit_code(self) -> int:
        """Non-zero when any finding survived suppression/baseline."""
        return 1 if self.findings else 0


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Expand ``paths`` into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def module_path_for(path: Path) -> str:
    """Dotted module path for ``path``, anchored at a package root.

    Walks upward while ``__init__.py`` siblings exist, so
    ``src/repro/simnet/clock.py`` maps to ``repro.simnet.clock``
    regardless of the checkout location.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def _analyze_one(
        file_path: Path, ast_rules: Sequence[AstRule],
        need_summary: bool,
) -> tuple[list[Finding], int, bool, ModuleSummary | None]:
    """Phase 1 for one file: AST-rule findings plus its summary."""
    findings: list[Finding] = []
    suppressed = 0
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        findings.append(Finding(path=str(file_path), line=1, col=1,
                                rule_id="parse-error",
                                message=f"cannot read file: {exc}",
                                severity=Severity.ERROR))
        return findings, 0, False, None
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError as exc:
        findings.append(Finding(path=str(file_path),
                                line=exc.lineno or 1,
                                col=(exc.offset or 0) + 1,
                                rule_id="parse-error",
                                message=f"syntax error: {exc.msg}",
                                severity=Severity.ERROR))
        return findings, 0, True, None
    module = module_path_for(file_path)
    ctx = FileContext(path=file_path, source=source, tree=tree,
                      module=module)
    index = SuppressionIndex.scan(source)
    for rule in ast_rules:
        for finding in rule.check_file(ctx):
            if index.suppresses(finding):
                suppressed += 1
            else:
                findings.append(finding)
    summary = None
    if need_summary:
        summary = extract_summary(str(file_path), source, tree,
                                  module)
    return findings, suppressed, True, summary


# -- worker-pool plumbing (phase 1 parallelism) ----------------------
#
# Workers rebuild the rule objects from the registry by id (rule
# instances are not worth shipping); results are plain frozen
# dataclasses, cheap to pickle back.

_POOL_RULES: list[AstRule] = []
_POOL_NEED_SUMMARY = False


def _pool_init(rule_ids: list[str], need_summary: bool) -> None:
    global _POOL_RULES, _POOL_NEED_SUMMARY
    rules = build_rules(rule_ids)
    _POOL_RULES = [rule for rule in rules
                   if isinstance(rule, AstRule)]
    _POOL_NEED_SUMMARY = need_summary


def _pool_analyze(path_str: str) -> tuple[
        str, list[Finding], int, bool, ModuleSummary | None]:
    findings, suppressed, parsed, summary = _analyze_one(
        Path(path_str), _POOL_RULES, _POOL_NEED_SUMMARY)
    return path_str, findings, suppressed, parsed, summary


def _run_phase1_parallel(
        pending: list[Path], ast_rule_ids: list[str],
        need_summary: bool, workers: int,
) -> list[tuple[str, list[Finding], int, bool,
                ModuleSummary | None]] | None:
    """Parse ``pending`` in a process pool; None on pool failure."""
    from concurrent.futures import ProcessPoolExecutor
    chunk = max(1, len(pending) // (workers * 4))
    try:
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_pool_init,
                initargs=(ast_rule_ids, need_summary)) as pool:
            return list(pool.map(_pool_analyze,
                                 [str(p) for p in pending],
                                 chunksize=chunk))
    except (OSError, ValueError):
        # No usable worker pool (restricted sandbox, missing /dev/shm
        # ...) — phase 1 falls back to the serial path.
        return None


def _crossfile_module_key(
        signature: str, model: ProjectModel, module: str,
        crossfile_rules: Sequence[CrossFileRule]) -> str:
    """Cache key of one module's cross-file verdict."""
    digest = hashlib.sha256()
    digest.update(signature.encode() or b"nosig")
    digest.update(b"\0")
    digest.update(model.deep_digest(module).encode())
    for rule in crossfile_rules:
        digest.update(b"\0")
        digest.update(f"{rule.rule_id}:{rule.version}".encode())
        extra = rule.module_key_extra(model, module)
        if extra:
            digest.update(b":")
            digest.update(extra.encode())
    return digest.hexdigest()


def _filter_crossfile(findings: Iterable[Finding]
                      ) -> tuple[list[Finding], int]:
    """Apply in-source suppressions to cross-file findings.

    Cross-file findings are produced from summaries, after the
    per-file suppression pass — so their files' directives are
    re-read here (only files that actually have findings, a handful).
    """
    kept: list[Finding] = []
    suppressed = 0
    indexes: dict[str, SuppressionIndex] = {}
    for finding in findings:
        index = indexes.get(finding.path)
        if index is None:
            try:
                source = Path(finding.path).read_text(
                    encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                source = ""
            index = SuppressionIndex.scan(source)
            indexes[finding.path] = index
        if index.suppresses(finding):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def lint_paths(paths: Sequence[Path | str],
               rules: Sequence[Rule] | None = None,
               select: Sequence[str] | None = None,
               root: Path | None = None,
               cache: ResultCache | None = None,
               jobs: int | None = None,
               baseline: Baseline | None = None) -> RunResult:
    """Lint ``paths`` and return the surviving findings, sorted.

    ``rules`` overrides the registry (used by tests); ``select``
    narrows the registry to the named rule ids; ``root`` re-anchors
    finding paths relative to a directory; ``cache`` reuses per-file
    and per-module results (see :mod:`.cache`); ``jobs`` parses
    phase 1 in that many worker processes (0 = one per CPU, None/1 =
    serial); ``baseline`` grandfathers previously recorded findings —
    only findings *new* relative to it survive into the result.
    Cached findings carry engine-native paths — re-anchoring happens
    downstream of the cache, so hits and misses render identically.
    """
    active = list(rules) if rules is not None else build_rules(select)
    files = discover_files(Path(p) for p in paths)
    result = RunResult(rule_ids=[rule.rule_id for rule in active])
    ast_rules = [rule for rule in active if isinstance(rule, AstRule)]
    crossfile_rules = sorted(
        (rule for rule in active if isinstance(rule, CrossFileRule)),
        key=lambda rule: rule.rule_id)
    project_rules = [rule for rule in active
                     if isinstance(rule, ProjectRule)]
    need_summary = bool(crossfile_rules)
    if rules is not None:
        # Ad-hoc rule objects (tests) have no stable signature.
        cache = None
    signature = (rules_signature((rule.rule_id, rule.version)
                                 for rule in active)
                 if cache is not None else "")

    raw: list[Finding] = []
    suppressed = 0
    summaries: dict[str, ModuleSummary] = {}
    reanalyzed: set[str] = set()
    pending: list[Path] = []

    # Phase 1 — per-file: serve from cache, collect the rest.
    for file_path in files:
        cached = (cache.get(file_path, signature,
                            need_summary=need_summary)
                  if cache is not None else None)
        if cached is not None:
            result.files_checked += 1
            raw.extend(cached.findings)
            suppressed += cached.suppressed
            if cached.summary is not None:
                summaries.setdefault(cached.summary.module,
                                     cached.summary)
            continue
        pending.append(file_path)

    workers = (os.cpu_count() or 1) if jobs == 0 else (jobs or 1)
    outcomes = None
    if workers > 1 and rules is None \
            and len(pending) >= _PARALLEL_THRESHOLD:
        outcomes = _run_phase1_parallel(
            pending, [rule.rule_id for rule in ast_rules],
            need_summary, workers)
    if outcomes is None:
        outcomes = []
        for file_path in pending:
            findings, file_suppressed, parsed, summary = \
                _analyze_one(file_path, ast_rules, need_summary)
            outcomes.append((str(file_path), findings,
                             file_suppressed, parsed, summary))

    for path_str, findings, file_suppressed, parsed, summary \
            in outcomes:
        if parsed:
            result.files_checked += 1
            if cache is not None:
                cache.put(Path(path_str), signature, findings,
                          file_suppressed, summary)
        raw.extend(findings)
        suppressed += file_suppressed
        if summary is not None:
            summaries.setdefault(summary.module, summary)
            reanalyzed.add(summary.module)

    # Phase 2 — cross-file rules over the project model.
    if crossfile_rules:
        model = ProjectModel(summaries)
        crossfile_findings: list[Finding] = []
        for module in model.modules():
            key = _crossfile_module_key(signature, model, module,
                                        crossfile_rules)
            cached_findings = (cache.get_crossfile(module, key)
                               if cache is not None else None)
            if cached_findings is None:
                fresh: list[Finding] = []
                for rule in crossfile_rules:
                    fresh.extend(rule.check_module(
                        model, model.summaries[module]))
                if cache is not None:
                    cache.put_crossfile(module, key, fresh)
                reanalyzed.add(module)
                cached_findings = fresh
            crossfile_findings.extend(cached_findings)
        for rule in crossfile_rules:
            crossfile_findings.extend(rule.check_model(model))
        kept, crossfile_suppressed = _filter_crossfile(
            crossfile_findings)
        raw.extend(kept)
        suppressed += crossfile_suppressed

    for rule in project_rules:
        raw.extend(rule.check_project(files))
    if cache is not None:
        cache.save()

    if root is not None:
        raw = [finding.relative_to(root) for finding in raw]
    result.findings = sorted(raw)
    result.suppressed = suppressed
    result.reanalyzed = sorted(reanalyzed)
    if baseline is not None:
        result.findings, result.baselined = \
            baseline.apply(result.findings)
    return result
