"""The lint engine: file discovery, parsing, rule dispatch,
suppression filtering.

The engine is deliberately dependency-free (stdlib ``ast`` only) so
``repro lint`` runs in the same minimal environment as the analyses
themselves — CI does not need ruff/mypy installed for the
project-specific invariants to be enforced.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .cache import ResultCache, rules_signature
from .findings import Finding, Severity
from .registry import (AstRule, FileContext, ProjectRule, Rule,
                       build_rules)
from .suppressions import SuppressionIndex

#: Directory names never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "build", "dist", ".eggs"}


@dataclass
class RunResult:
    """Outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def worst_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)

    @property
    def exit_code(self) -> int:
        """Non-zero when any finding survived suppression."""
        return 1 if self.findings else 0


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Expand ``paths`` into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def module_path_for(path: Path) -> str:
    """Dotted module path for ``path``, anchored at a package root.

    Walks upward while ``__init__.py`` siblings exist, so
    ``src/repro/simnet/clock.py`` maps to ``repro.simnet.clock``
    regardless of the checkout location.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def _lint_one(file_path: Path, ast_rules: Sequence[AstRule]
              ) -> tuple[list[Finding], int, bool]:
    """AST-lint one file: (findings, suppressed count, parsed ok)."""
    findings: list[Finding] = []
    suppressed = 0
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        findings.append(Finding(path=str(file_path), line=1, col=1,
                                rule_id="parse-error",
                                message=f"cannot read file: {exc}",
                                severity=Severity.ERROR))
        return findings, 0, False
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError as exc:
        findings.append(Finding(path=str(file_path),
                                line=exc.lineno or 1,
                                col=(exc.offset or 0) + 1,
                                rule_id="parse-error",
                                message=f"syntax error: {exc.msg}",
                                severity=Severity.ERROR))
        return findings, 0, True
    ctx = FileContext(path=file_path, source=source, tree=tree,
                      module=module_path_for(file_path))
    index = SuppressionIndex.scan(source)
    for rule in ast_rules:
        for finding in rule.check_file(ctx):
            if index.suppresses(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed, True


def lint_paths(paths: Sequence[Path | str],
               rules: Sequence[Rule] | None = None,
               select: Sequence[str] | None = None,
               root: Path | None = None,
               cache: ResultCache | None = None) -> RunResult:
    """Lint ``paths`` and return the surviving findings, sorted.

    ``rules`` overrides the registry (used by tests); ``select``
    narrows the registry to the named rule ids; ``root`` re-anchors
    finding paths relative to a directory (defaults to the common
    current working directory behaviour of keeping paths as given);
    ``cache`` reuses per-file results for files whose stat signature
    and rule set are unchanged (see :mod:`.cache`). Cached findings
    carry engine-native paths — re-anchoring happens downstream of the
    cache, so hits and misses render identically.
    """
    active = list(rules) if rules is not None else build_rules(select)
    files = discover_files(Path(p) for p in paths)
    result = RunResult(rule_ids=[rule.rule_id for rule in active])
    ast_rules = [rule for rule in active if isinstance(rule, AstRule)]
    project_rules = [rule for rule in active
                     if isinstance(rule, ProjectRule)]
    if rules is not None:
        # Ad-hoc rule objects (tests) have no stable signature.
        cache = None
    signature = (rules_signature(rule.rule_id for rule in ast_rules)
                 if cache is not None else "")

    raw: list[Finding] = []
    suppressed = 0
    for file_path in files:
        cached = (cache.get(file_path, signature)
                  if cache is not None else None)
        if cached is not None:
            result.files_checked += 1
            raw.extend(cached.findings)
            suppressed += cached.suppressed
            continue
        findings, file_suppressed, parsed = _lint_one(file_path,
                                                      ast_rules)
        if parsed:
            result.files_checked += 1
            if cache is not None:
                cache.put(file_path, signature, findings,
                          file_suppressed)
        raw.extend(findings)
        suppressed += file_suppressed

    for rule in project_rules:
        raw.extend(rule.check_project(files))
    if cache is not None:
        cache.save()

    if root is not None:
        raw = [finding.relative_to(root) for finding in raw]
    result.findings = sorted(raw)
    result.suppressed = suppressed
    return result
