"""Persistent result cache for the two-phase lint engine.

``repro lint --self`` re-parses every source file on every run even
though almost none of them changed between invocations.  This cache
remembers two kinds of results:

* **Per-file** (phase 1): the AST-rule findings, suppression count
  and the phase-1 :class:`~.project.ModuleSummary` of each file,
  keyed on the file's ``(mtime_ns, size)`` stat signature *and* a
  rule-set signature.  The rule-set signature covers the selected
  ``(rule_id, version)`` pairs plus a digest of the staticcheck
  package's own sources — so adding a rule, bumping a rule's
  ``version``, or editing the engine invalidates every stale clean
  verdict instead of replaying it.
* **Per-module cross-file** (phase 2): the cross-file findings
  attributed to each module, keyed on the module's *deep digest* —
  a hash over the module's summary and everything it transitively
  imports.  That is the dependency-aware part: editing an imported
  module changes the importer's deep digest and forces its
  re-analysis, even though the importer's mtime never moved.

The store is one JSON document under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-uncharted``) — the same root as the capture cache of
:mod:`repro.perf.cache`, kept import-independent so the linter stays
stdlib-only.  Findings are cached with the paths the engine produced
them under (before any ``relative_to(root)`` re-anchoring), so cached
and fresh findings go through identical reporting.

``repro lint --no-cache`` bypasses reads and writes entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from .findings import Finding, RelatedLocation, Severity
from .project import ModuleSummary

#: Environment variable overriding the cache location (shared with the
#: capture cache).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_CACHE_FILE = "staticcheck-cache.json"

#: Bump when the on-disk layout changes shape.
_STORE_VERSION = 3

#: Memoized digest of the staticcheck package sources.
_PACKAGE_DIGEST: str | None = None


def cache_path() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    base = (Path(override) if override
            else Path.home() / ".cache" / "repro-uncharted")
    return base / _CACHE_FILE


def _package_digest() -> str:
    """SHA-256 over the linter's own sources (rules included)."""
    global _PACKAGE_DIGEST
    if _PACKAGE_DIGEST is None:
        package_root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(source.name.encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _PACKAGE_DIGEST = digest.hexdigest()
    return _PACKAGE_DIGEST


def rules_signature(
        rules: Iterable[str | tuple[str, int]]) -> str:
    """Cache signature of one engine configuration.

    Accepts bare rule ids (version 1 implied) or ``(rule_id,
    version)`` pairs — the pair form is what the engine feeds it, so
    bumping a rule's ``version`` attribute invalidates every cached
    verdict produced under the old semantics.
    """
    normalized = sorted(
        [item, 1] if isinstance(item, str) else [item[0], item[1]]
        for item in rules)
    document = {"rules": normalized, "code": _package_digest()}
    return hashlib.sha256(
        json.dumps(document, sort_keys=True).encode()).hexdigest()


def _encode_finding(finding: Finding) -> dict:
    entry = {"path": finding.path, "line": finding.line,
             "col": finding.col, "rule_id": finding.rule_id,
             "message": finding.message,
             "severity": finding.severity.name}
    if finding.related:
        entry["related"] = [
            {"path": loc.path, "line": loc.line,
             "message": loc.message} for loc in finding.related]
    return entry


def _decode_finding(raw: Mapping[str, Any]) -> Finding:
    related = tuple(
        RelatedLocation(path=loc["path"], line=loc["line"],
                        message=loc.get("message", ""))
        for loc in raw.get("related", ()))
    return Finding(path=raw["path"], line=raw["line"], col=raw["col"],
                   rule_id=raw["rule_id"], message=raw["message"],
                   severity=Severity[raw["severity"]],
                   related=related)


@dataclass
class CachedFile:
    """The remembered phase-1 outcome for one unchanged file."""

    findings: list[Finding]
    suppressed: int
    summary: ModuleSummary | None = None


class ResultCache:
    """Per-file and per-module findings store (one JSON document)."""

    def __init__(self, path: Path | None = None):
        self._path = path or cache_path()
        self._files: dict[str, dict] = {}
        self._crossfile: dict[str, dict] = {}
        self._dirty = False
        try:
            loaded = json.loads(self._path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(loaded, dict) \
                or loaded.get("store") != _STORE_VERSION:
            return  # pre-versioned layouts are simply discarded
        self._files = dict(loaded.get("files", {}))
        self._crossfile = dict(loaded.get("crossfile", {}))

    @staticmethod
    def _stat(path: Path) -> tuple[int, int] | None:
        try:
            stat = path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    # -- phase 1: per-file ----------------------------------------

    def get(self, path: Path, signature: str,
            need_summary: bool = False) -> CachedFile | None:
        """Cached outcome for ``path``, or None when stale/absent."""
        entry = self._files.get(str(path.resolve()))
        if entry is None or entry.get("signature") != signature:
            return None
        stat = self._stat(path)
        if stat is None or [stat[0], stat[1]] \
                != [entry.get("mtime_ns"), entry.get("size")]:
            return None
        raw_summary = entry.get("summary")
        if need_summary and raw_summary is None:
            return None
        try:
            findings = [_decode_finding(raw)
                        for raw in entry["findings"]]
            suppressed = int(entry["suppressed"])
            summary = (ModuleSummary.from_dict(raw_summary)
                       if raw_summary is not None else None)
        except (KeyError, TypeError, ValueError):
            return None
        return CachedFile(findings=findings, suppressed=suppressed,
                          summary=summary)

    def put(self, path: Path, signature: str,
            findings: Sequence[Finding], suppressed: int,
            summary: ModuleSummary | None = None) -> None:
        stat = self._stat(path)
        if stat is None:
            return
        entry: dict[str, Any] = {
            "signature": signature,
            "mtime_ns": stat[0], "size": stat[1],
            "suppressed": suppressed,
            "findings": [_encode_finding(f) for f in findings]}
        if summary is not None:
            entry["summary"] = summary.to_dict()
        self._files[str(path.resolve())] = entry
        self._dirty = True

    # -- phase 2: per-module cross-file ---------------------------

    def get_crossfile(self, module: str,
                      key: str) -> list[Finding] | None:
        """Cached cross-file findings for ``module`` under ``key``."""
        entry = self._crossfile.get(module)
        if entry is None or entry.get("key") != key:
            return None
        try:
            return [_decode_finding(raw) for raw in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    def put_crossfile(self, module: str, key: str,
                      findings: Sequence[Finding]) -> None:
        self._crossfile[module] = {
            "key": key,
            "findings": [_encode_finding(f) for f in findings]}
        self._dirty = True

    def save(self) -> None:
        """Persist (atomically) if anything changed this run."""
        if not self._dirty:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        document = {"store": _STORE_VERSION, "files": self._files,
                    "crossfile": self._crossfile}
        tmp = self._path.with_name(
            f"{self._path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(document, sort_keys=True))
        os.replace(tmp, self._path)
        self._dirty = False
