"""Mtime-keyed result cache for the lint engine.

``repro lint --self`` re-parses every source file on every run even
though almost none of them changed between invocations. This cache
remembers, per file, the findings (and suppression count) of the last
run, keyed on:

* the file's ``(mtime_ns, size)`` stat signature, and
* a *rule-set signature* — the selected rule ids plus a digest of the
  staticcheck package's own sources, so editing a rule (or the
  engine) invalidates every entry automatically.

The store is one JSON document under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-uncharted``) — the same root as the capture cache of
:mod:`repro.perf.cache`, kept import-independent so the linter stays
stdlib-only and does not drag the simulation stack in. Findings are
cached with the paths the engine produced them under (before any
``relative_to(root)`` re-anchoring), so cached and fresh findings go
through identical reporting.

``repro lint --no-cache`` bypasses reads and writes entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding, Severity

#: Environment variable overriding the cache location (shared with the
#: capture cache).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_CACHE_FILE = "staticcheck-cache.json"

#: Memoized digest of the staticcheck package sources.
_PACKAGE_DIGEST: str | None = None


def cache_path() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    base = (Path(override) if override
            else Path.home() / ".cache" / "repro-uncharted")
    return base / _CACHE_FILE


def _package_digest() -> str:
    """SHA-256 over the linter's own sources (rules included)."""
    global _PACKAGE_DIGEST
    if _PACKAGE_DIGEST is None:
        package_root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(source.name.encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _PACKAGE_DIGEST = digest.hexdigest()
    return _PACKAGE_DIGEST


def rules_signature(rule_ids: Iterable[str]) -> str:
    """Cache signature of one engine configuration."""
    document = {"rules": sorted(rule_ids), "code": _package_digest()}
    return hashlib.sha256(
        json.dumps(document, sort_keys=True).encode()).hexdigest()


def _encode_finding(finding: Finding) -> dict:
    return {"path": finding.path, "line": finding.line,
            "col": finding.col, "rule_id": finding.rule_id,
            "message": finding.message,
            "severity": finding.severity.name}


def _decode_finding(raw: dict) -> Finding:
    return Finding(path=raw["path"], line=raw["line"], col=raw["col"],
                   rule_id=raw["rule_id"], message=raw["message"],
                   severity=Severity[raw["severity"]])


@dataclass
class CachedFile:
    """The remembered outcome of linting one unchanged file."""

    findings: list[Finding]
    suppressed: int


class ResultCache:
    """Per-file findings store, persisted as one JSON document."""

    def __init__(self, path: Path | None = None):
        self._path = path or cache_path()
        self._entries: dict[str, dict] = {}
        self._dirty = False
        try:
            loaded = json.loads(self._path.read_text())
            if isinstance(loaded, dict):
                self._entries = loaded
        except (OSError, ValueError):
            pass

    @staticmethod
    def _stat(path: Path) -> tuple[int, int] | None:
        try:
            stat = path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def get(self, path: Path, signature: str) -> CachedFile | None:
        """Cached outcome for ``path``, or None when stale/absent."""
        entry = self._entries.get(str(path.resolve()))
        if entry is None or entry.get("signature") != signature:
            return None
        stat = self._stat(path)
        if stat is None or [stat[0], stat[1]] \
                != [entry.get("mtime_ns"), entry.get("size")]:
            return None
        try:
            findings = [_decode_finding(raw)
                        for raw in entry["findings"]]
            suppressed = int(entry["suppressed"])
        except (KeyError, TypeError, ValueError):
            return None
        return CachedFile(findings=findings, suppressed=suppressed)

    def put(self, path: Path, signature: str,
            findings: Sequence[Finding], suppressed: int) -> None:
        stat = self._stat(path)
        if stat is None:
            return
        self._entries[str(path.resolve())] = {
            "signature": signature,
            "mtime_ns": stat[0], "size": stat[1],
            "suppressed": suppressed,
            "findings": [_encode_finding(f) for f in findings]}
        self._dirty = True

    def save(self) -> None:
        """Persist (atomically) if anything changed this run."""
        if not self._dirty:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._path.with_name(
            f"{self._path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(self._entries, sort_keys=True))
        os.replace(tmp, self._path)
        self._dirty = False
