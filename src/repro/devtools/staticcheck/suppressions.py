"""In-source suppression comments.

A finding on line *N* is suppressed when line *N* carries::

    ...  # staticcheck: ignore[rule-id]
    ...  # staticcheck: ignore[rule-a, rule-b]
    ...  # staticcheck: ignore            (every rule on this line)
    ...  # staticcheck: ignore[rule-id] -- reason it is intentional

and a whole file opts out of one rule with a comment anywhere in its
first ten lines::

    # staticcheck: ignore-file[rule-id]

Suppressions are counted so reports can say how many findings were
waved through — silent suppression totals hide rot.  The optional
``-- reason`` tail documents *why* a finding is intentional; the
cross-file rules (shard-safety and friends) expect one on every
suppression so a sharding reviewer can audit the waivers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .findings import Finding

_LINE_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[(?P<ids>[^\]]*)\])?"
    r"(?:\s*--\s*(?P<reason>.+))?")
_FILE_RE = re.compile(
    r"#\s*staticcheck:\s*ignore-file\[(?P<ids>[^\]]*)\]")

#: How far into a file ``ignore-file`` directives are honoured.
_FILE_DIRECTIVE_WINDOW = 10


def _split_ids(raw: str | None) -> frozenset[str] | None:
    """``None`` means "all rules"; otherwise the listed rule ids."""
    if raw is None:
        return None
    return frozenset(part.strip() for part in raw.split(",")
                     if part.strip())


@dataclass
class SuppressionIndex:
    """Per-file index of suppression directives."""

    #: line number -> suppressed ids (``None`` = all rules).
    by_line: dict[int, frozenset[str] | None] = field(
        default_factory=dict)
    file_wide: frozenset[str] = field(default_factory=frozenset)
    #: line number -> the ``-- reason`` tail, when one was given.
    reasons: dict[int, str] = field(default_factory=dict)

    @classmethod
    def scan(cls, source: str) -> "SuppressionIndex":
        index = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            file_match = _FILE_RE.search(text)
            if file_match:
                if lineno <= _FILE_DIRECTIVE_WINDOW:
                    ids = _split_ids(file_match.group("ids"))
                    if ids:
                        index.file_wide = index.file_wide | ids
                continue  # "ignore-file" also matches the line regex
            match = _LINE_RE.search(text)
            if match:
                index.by_line[lineno] = _split_ids(match.group("ids"))
                reason = match.group("reason")
                if reason:
                    index.reasons[lineno] = reason.strip()
        return index

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule_id in self.file_wide:
            return True
        if finding.line not in self.by_line:
            return False
        ids = self.by_line[finding.line]
        return ids is None or finding.rule_id in ids
