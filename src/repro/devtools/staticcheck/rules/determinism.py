"""Determinism rule: no wall clocks or ambient randomness in the
simulation packages.

Every figure in the reproduction is regenerated from seeds; the paper's
captures are proprietary, so the synthetic datasets *are* the ground
truth.  A single ``time.time()`` or module-level ``random.random()``
inside ``simnet/``, ``grid/``, ``datasets/`` or ``scenarios/``
makes a capture
unreproducible without failing a single test — exactly the class of
bug a linter must catch.  Simulation code must use the injected
``random.Random`` instance and the simulation clock
(:mod:`repro.simnet.clock`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import AstRule, FileContext, register

#: Packages in which the rule is enforced (dotted-path components).
SCOPED_PACKAGES = ("simnet", "grid", "datasets", "scenarios")

#: ``time.<attr>()`` calls that read a wall/monotonic clock.
_WALL_CLOCKS = ("time", "time_ns", "monotonic", "monotonic_ns",
                "perf_counter", "perf_counter_ns", "localtime",
                "gmtime")

#: ``datetime.<attr>()`` / ``date.<attr>()`` ambient-clock reads.
_DATETIME_NOW = ("now", "utcnow", "today")

#: Names on the ``random`` module that are fine: class constructors
#: produce an *injectable* generator rather than drawing from the
#: shared ambient one.
_RANDOM_ALLOWED = ("Random", "SystemRandom")

#: ``numpy.random`` attributes that are fine for the same reason.
_NP_RANDOM_ALLOWED = ("default_rng", "Generator", "SeedSequence",
                      "RandomState")


def _dotted(expr: ast.expr) -> str:
    """Best-effort dotted name of an attribute chain (else '')."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class DeterminismRule(AstRule):
    """Forbid ambient clock/randomness sources in simulation code."""

    rule_id = "determinism"
    description = ("forbid time.time()/datetime.now()/module-level "
                   "random calls inside simnet/, grid/ and datasets/; "
                   "use the injected random.Random and the sim clock")
    severity = Severity.ERROR

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*SCOPED_PACKAGES):
            return
        yield from self._check_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted:
                continue
            yield from self._check_call(ctx, node, dotted)

    def _check_imports(self, ctx: FileContext) -> Iterator[Finding]:
        """``from random import random`` smuggles the ambient RNG in
        under a local name the call-site check cannot see."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module == "random":
                for alias in node.names:
                    if alias.name not in _RANDOM_ALLOWED:
                        yield ctx.finding(
                            self, node,
                            f"`from random import {alias.name}` pulls "
                            "a function bound to the shared ambient "
                            "RNG — inject a random.Random instance")
            if node.module in ("time", "datetime") \
                    and any(alias.name in _WALL_CLOCKS
                            + _DATETIME_NOW for alias in node.names):
                names = ", ".join(alias.name for alias in node.names)
                yield ctx.finding(
                    self, node,
                    f"`from {node.module} import {names}` imports an "
                    "ambient clock — simulation code must use the "
                    "sim clock")

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    dotted: str) -> Iterator[Finding]:
        head, _, tail = dotted.partition(".")
        if head == "time" and tail in _WALL_CLOCKS:
            yield ctx.finding(
                self, node,
                f"`{dotted}()` reads the wall clock — simulation "
                "code must use the sim clock (repro.simnet.clock)")
        elif dotted in ("datetime.now", "datetime.utcnow",
                        "datetime.today", "date.today",
                        "datetime.datetime.now",
                        "datetime.datetime.utcnow",
                        "datetime.date.today"):
            yield ctx.finding(
                self, node,
                f"`{dotted}()` reads the ambient clock — derive "
                "timestamps from the sim clock instead")
        elif head == "random" and tail \
                and tail not in _RANDOM_ALLOWED \
                and "." not in tail:
            yield ctx.finding(
                self, node,
                f"`{dotted}()` draws from the shared module-level "
                "RNG — use the injected random.Random instance")
        elif dotted.startswith(("numpy.random.", "np.random.")):
            attr = dotted.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_ALLOWED:
                yield ctx.finding(
                    self, node,
                    f"`{dotted}()` draws from numpy's global RNG — "
                    "use numpy.random.default_rng(seed)")
