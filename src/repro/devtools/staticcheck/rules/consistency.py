"""Constants-consistency rule: the dispatch tables must agree.

The reproduction's correctness hinges on three tables staying
cross-consistent with the :class:`~repro.iec104.constants.TypeID`
enumeration (paper Tables 5/7/8):

* ``ELEMENT_CODECS`` (TypeID -> element codec) in
  :mod:`repro.iec104.information_elements`;
* ``TYPE_ID_DESCRIPTIONS`` (TypeID -> Table 5 text) in
  :mod:`repro.iec104.constants`;
* ``TYPE_ID_SYMBOLS`` (observed TypeID -> Table 8 physical symbols),
  also in :mod:`repro.iec104.constants`.

A TypeID without a codec entry decodes as "unknown"; a codec entry for
a non-existent TypeID is dead weight hiding a typo; a Table 8 symbol
row for a typeID the paper never observed (or a missing row for one it
did) silently skews the physical-measurement DPI.  This rule imports
the real modules and flags orphans in *both* directions.

The module paths are constructor parameters so the test suite can aim
the rule at deliberately broken fixture tables.
"""

from __future__ import annotations

import ast
import enum
import importlib
import inspect
from pathlib import Path
from typing import Iterable, Iterator

from ..findings import Finding, Severity
from ..registry import ProjectRule, register

#: The symbol vocabulary of paper Table 8 (plus the "-" placeholder
#: the paper uses for typeIDs with no assignable physical meaning).
KNOWN_SYMBOLS = frozenset(
    {"I", "P", "Q", "U", "Freq", "Status", "AGC-SP", "Inter(global)",
     "-"})


def _table_location(module, name: str) -> tuple[str, int]:
    """``(path, line)`` of the assignment to ``name`` in ``module``."""
    path = getattr(module, "__file__", None) or module.__name__
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return str(path), 1
    try:
        tree = ast.parse(source)
    except SyntaxError:  # pragma: no cover - module already imported
        return str(path), 1
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.target:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return str(path), node.lineno
    return str(path), 1


@register
class ConstantsConsistencyRule(ProjectRule):
    """Cross-check TypeID against the codec and symbol tables."""

    rule_id = "constants-consistency"
    description = ("every TypeID must have a codec dispatch entry and "
                   "a Table 5 description; Table 8 symbol rows must "
                   "match the observed-typeID list in both directions")
    severity = Severity.ERROR

    def __init__(self,
                 constants_module: str = "repro.iec104.constants",
                 codecs_module: str =
                 "repro.iec104.information_elements") -> None:
        self.constants_module = constants_module
        self.codecs_module = codecs_module

    def check_project(self, paths: Iterable[Path]) -> Iterator[Finding]:
        try:
            constants = importlib.import_module(self.constants_module)
            codecs = importlib.import_module(self.codecs_module)
        except Exception as exc:
            yield Finding(path=self.constants_module, line=1, col=1,
                          rule_id=self.rule_id,
                          message=f"cannot import protocol tables: "
                                  f"{exc}",
                          severity=self.severity)
            return
        type_id = getattr(constants, "TypeID", None)
        if type_id is None or not issubclass(type_id, enum.Enum):
            yield self._table_finding(
                constants, "TypeID",
                "constants module defines no TypeID enumeration")
            return
        members = set(type_id)
        yield from self._check_codecs(codecs, type_id, members)
        yield from self._check_descriptions(constants, members)
        yield from self._check_symbols(constants, type_id, members)

    # -- helpers ----------------------------------------------------

    def _table_finding(self, module, table: str,
                       message: str) -> Finding:
        path, line = _table_location(module, table)
        return Finding(path=path, line=line, col=1,
                       rule_id=self.rule_id, message=message,
                       severity=self.severity)

    def _check_codecs(self, codecs, type_id,
                      members: set) -> Iterator[Finding]:
        table = getattr(codecs, "ELEMENT_CODECS", None)
        if not isinstance(table, dict):
            yield self._table_finding(
                codecs, "ELEMENT_CODECS",
                "codec module defines no ELEMENT_CODECS dispatch "
                "table")
            return
        for member in sorted(members, key=lambda m: m.value):
            if member not in table:
                yield self._table_finding(
                    codecs, "ELEMENT_CODECS",
                    f"TypeID.{member.name} (={member.value}) has no "
                    "ELEMENT_CODECS dispatch entry")
        for key in table:
            if not isinstance(key, type_id):
                yield self._table_finding(
                    codecs, "ELEMENT_CODECS",
                    f"ELEMENT_CODECS key {key!r} is not a TypeID "
                    "member (orphan dispatch entry)")
        for key, codec in table.items():
            if not callable(getattr(codec, "decode", None)) \
                    or not callable(getattr(codec, "encode", None)):
                name = key.name if isinstance(key, type_id) \
                    else repr(key)
                yield self._table_finding(
                    codecs, "ELEMENT_CODECS",
                    f"codec for {name} lacks encode/decode "
                    "callables")

    def _check_descriptions(self, constants,
                            members: set) -> Iterator[Finding]:
        table = getattr(constants, "TYPE_ID_DESCRIPTIONS", None)
        if not isinstance(table, dict):
            yield self._table_finding(
                constants, "TYPE_ID_DESCRIPTIONS",
                "constants module defines no TYPE_ID_DESCRIPTIONS "
                "table")
            return
        for member in sorted(members, key=lambda m: m.value):
            if member not in table:
                yield self._table_finding(
                    constants, "TYPE_ID_DESCRIPTIONS",
                    f"TypeID.{member.name} has no Table 5 "
                    "description")
        for key in table:
            if key not in members:
                yield self._table_finding(
                    constants, "TYPE_ID_DESCRIPTIONS",
                    f"TYPE_ID_DESCRIPTIONS key {key!r} is not a "
                    "TypeID member")

    def _check_symbols(self, constants, type_id,
                       members: set) -> Iterator[Finding]:
        symbols = getattr(constants, "TYPE_ID_SYMBOLS", None)
        observed = getattr(constants, "OBSERVED_TYPE_IDS", None)
        if not isinstance(symbols, dict):
            yield self._table_finding(
                constants, "TYPE_ID_SYMBOLS",
                "constants module defines no TYPE_ID_SYMBOLS "
                "(Table 8) mapping")
            return
        if observed is None:
            yield self._table_finding(
                constants, "OBSERVED_TYPE_IDS",
                "constants module defines no OBSERVED_TYPE_IDS list")
            return
        observed_list = list(observed)
        if len(set(observed_list)) != len(observed_list):
            yield self._table_finding(
                constants, "OBSERVED_TYPE_IDS",
                "OBSERVED_TYPE_IDS contains duplicates")
        for member in dict.fromkeys(observed_list):
            if member not in members:
                yield self._table_finding(
                    constants, "OBSERVED_TYPE_IDS",
                    f"OBSERVED_TYPE_IDS entry {member!r} is not a "
                    "TypeID member")
            elif member not in symbols:
                yield self._table_finding(
                    constants, "TYPE_ID_SYMBOLS",
                    f"observed TypeID.{member.name} has no Table 8 "
                    "physical-symbol row")
        for key, row in symbols.items():
            if key not in set(observed_list):
                name = key.name if isinstance(key, type_id) \
                    else repr(key)
                yield self._table_finding(
                    constants, "TYPE_ID_SYMBOLS",
                    f"TYPE_ID_SYMBOLS row for {name} has no "
                    "OBSERVED_TYPE_IDS entry (orphan symbol row)")
            if not row:
                name = key.name if isinstance(key, type_id) \
                    else repr(key)
                yield self._table_finding(
                    constants, "TYPE_ID_SYMBOLS",
                    f"TYPE_ID_SYMBOLS row for {name} is empty — "
                    "use ('-',) for typeIDs without a symbol")
            for symbol in row:
                if symbol not in KNOWN_SYMBOLS:
                    name = key.name if isinstance(key, type_id) \
                        else repr(key)
                    yield self._table_finding(
                        constants, "TYPE_ID_SYMBOLS",
                        f"unknown physical symbol {symbol!r} for "
                        f"{name} (vocabulary: "
                        f"{', '.join(sorted(KNOWN_SYMBOLS))})")
