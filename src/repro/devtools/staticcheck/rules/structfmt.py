"""Struct-format audit: byte-exact wire formats, statically checked.

The paper's tolerant parser exists because real devices disagree about
field widths (2-octet IOA, 1-octet COT).  Our own encoders must
therefore be byte-exact; this rule audits every ``struct`` call with a
literal format string:

* the format must parse (``struct.error`` at lint time, not runtime);
* wire formats must declare an explicit byte order (``<``, ``>``,
  ``!`` or ``=``) — native alignment (``@`` or none) makes the frame
  layout platform-dependent;
* ``struct.pack`` argument counts must match the format's value count;
* tuple-unpack targets of ``struct.unpack``/``unpack_from`` must match
  the format's value count;
* a format annotated ``# staticcheck: width=N`` must compute to
  exactly N octets (used to pin documented field widths such as the
  4-octet short float or the 7-octet CP56Time2a).
"""

from __future__ import annotations

import ast
import re
import struct
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import AstRule, FileContext, register

_FMT_FUNCS = ("pack", "pack_into", "unpack", "unpack_from",
              "iter_unpack", "calcsize", "Struct")

#: struct functions whose first argument is the format string.
_FMT_ARG_INDEX = {name: 0 for name in _FMT_FUNCS}

_WIDTH_RE = re.compile(r"#\s*staticcheck:\s*width=(\d+)")

_FIELD_RE = re.compile(r"(\d*)([xcbB?hHiIlLqQnNefdspP])")


def _value_count(fmt: str) -> int:
    """Number of Python values a format consumes/produces."""
    body = fmt.lstrip("@=<>!")
    count = 0
    for repeat, code in _FIELD_RE.findall(body):
        if code == "x":
            continue
        if code in ("s", "p"):
            count += 1
        else:
            count += int(repeat) if repeat else 1
    return count


def _literal_fmt(node: ast.Call) -> str | None:
    if not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value,
                                                      (str, bytes)):
        value = first.value
        return value.decode("ascii") if isinstance(value, bytes) \
            else value
    return None


def _struct_call(node: ast.Call) -> str | None:
    """Return the struct function name for ``struct.<fn>(...)``."""
    func = node.func
    if isinstance(func, ast.Attribute) \
            and isinstance(func.value, ast.Name) \
            and func.value.id == "struct" \
            and func.attr in _FMT_FUNCS:
        return func.attr
    return None


@register
class StructFormatRule(AstRule):
    """Audit literal struct format strings for wire-format safety."""

    rule_id = "struct-format"
    description = ("validate struct format strings: must parse, must "
                   "declare explicit byte order, pack/unpack arity "
                   "must match, and `# staticcheck: width=N` "
                   "annotations must hold")
    severity = Severity.ERROR

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_unpack_assign(ctx, node)

    def _check_call(self, ctx: FileContext,
                    node: ast.Call) -> Iterator[Finding]:
        fn = _struct_call(node)
        if fn is None:
            return
        fmt = _literal_fmt(node)
        if fmt is None:
            return  # dynamic format — out of static reach
        try:
            size = struct.calcsize(fmt)
        except struct.error as exc:
            yield ctx.finding(
                self, node,
                f"invalid struct format {fmt!r}: {exc}")
            return
        if not fmt or fmt[0] not in "<>!=":
            yield ctx.finding(
                self, node,
                f"struct format {fmt!r} uses native byte "
                "order/alignment — wire formats must start with "
                "'<', '>', '!' or '='")
        if fn == "pack" and not any(isinstance(arg, ast.Starred)
                                    for arg in node.args):
            supplied = len(node.args) - 1
            expected = _value_count(fmt)
            if supplied != expected:
                yield ctx.finding(
                    self, node,
                    f"struct.pack({fmt!r}, ...) takes {expected} "
                    f"value(s) but {supplied} supplied")
        yield from self._check_width_annotation(ctx, node, fmt, size)

    def _check_width_annotation(self, ctx: FileContext, node: ast.Call,
                                fmt: str, size: int
                                ) -> Iterator[Finding]:
        match = _WIDTH_RE.search(ctx.line_at(node.lineno))
        if match is None:
            return
        annotated = int(match.group(1))
        if annotated != size:
            yield ctx.finding(
                self, node,
                f"annotated width={annotated} octets but format "
                f"{fmt!r} computes to {size}")

    def _check_unpack_assign(self, ctx: FileContext,
                             node: ast.Assign) -> Iterator[Finding]:
        """``a, b = struct.unpack(fmt, ...)`` arity check."""
        if not isinstance(node.value, ast.Call):
            return
        fn = _struct_call(node.value)
        if fn not in ("unpack", "unpack_from"):
            return
        fmt = _literal_fmt(node.value)
        if fmt is None:
            return
        try:
            expected = _value_count(fmt)
        except struct.error:  # pragma: no cover - caught in _check_call
            return
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)) \
                    and not any(isinstance(elt, ast.Starred)
                                for elt in target.elts):
                if len(target.elts) != expected:
                    yield ctx.finding(
                        self, node,
                        f"unpacking {fmt!r} yields {expected} "
                        f"value(s) into {len(target.elts)} target(s)")
