"""General code-hygiene rules: exception handling, mutable defaults,
float equality on timestamps.

These are the failure modes that silently invalidate measurement runs:
a swallowed decode error hides a malformed frame instead of counting
it, a shared mutable default leaks state between outstations, and an
``==`` on a float timestamp works until the first scenario whose clock
steps by a non-representable increment.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import AstRule, FileContext, register


@register
class BareExceptRule(AstRule):
    """``except:`` hides typos, MemoryError and KeyboardInterrupt alike."""

    rule_id = "bare-except"
    description = ("ban bare `except:` clauses; catch the narrowest "
                   "exception type that the handler can actually handle")
    severity = Severity.ERROR

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare `except:` — name the exception type "
                    "(use `except Exception` only with handling, "
                    "never to discard)")


def _is_broad(expr: ast.expr | None) -> bool:
    """True for ``Exception``/``BaseException`` (bare or dotted)."""
    if expr is None:
        return True
    if isinstance(expr, ast.Name):
        return expr.id in ("Exception", "BaseException")
    if isinstance(expr, ast.Attribute):
        return expr.attr in ("Exception", "BaseException")
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(item) for item in expr.elts)
    return False


def _swallows(body: list[ast.stmt]) -> bool:
    """True when a handler body does nothing but discard the error."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant) and stmt.value.value is ...:
            continue
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


@register
class SilentSwallowRule(AstRule):
    """Broad handlers whose body is only ``pass``/``...``/``continue``."""

    rule_id = "silent-swallow"
    description = ("ban broad exception handlers that silently discard "
                   "the error (`except Exception: pass` and kin)")
    severity = Severity.ERROR

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node.type) and _swallows(node.body):
                yield ctx.finding(
                    self, node,
                    "broad exception handler silently swallows the "
                    "error — handle it, count it, or re-raise")


_MUTABLE_CALLS = ("list", "dict", "set", "bytearray",
                  "defaultdict", "deque", "Counter", "OrderedDict")


def _is_mutable_literal(expr: ast.expr) -> str | None:
    """Describe the mutable default, or ``None`` when it is safe."""
    if isinstance(expr, ast.List):
        return "[]"
    if isinstance(expr, ast.Dict):
        return "{}"
    if isinstance(expr, (ast.Set, ast.SetComp, ast.ListComp,
                         ast.DictComp)):
        return "a set/comprehension"
    if isinstance(expr, ast.Call):
        func = expr.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else "")
        if name in _MUTABLE_CALLS:
            return f"{name}()"
    return None


@register
class MutableDefaultRule(AstRule):
    """Mutable default arguments are shared across calls."""

    rule_id = "mutable-default"
    description = ("ban mutable default argument values ([], {}, "
                   "set(), ...); default to None or use "
                   "dataclasses.field(default_factory=...)")
    severity = Severity.ERROR

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) \
                + list(node.args.kw_defaults)
            for default in defaults:
                if default is None:
                    continue
                what = _is_mutable_literal(default)
                if what is not None:
                    yield ctx.finding(
                        self, default,
                        f"mutable default {what} in `{node.name}()` is "
                        "shared across every call — use None (or a "
                        "default_factory)")


#: Identifier (or terminal attribute) shapes that smell like a float
#: timestamp.  Deliberately conservative: `time`, `timestamp`,
#: `*_time`, `time_*`, `*_ts`, `ts`, `now`, `deadline`, `t0..t9`.
_TIME_NAME_RE = re.compile(
    r"(?:^|_)(?:time(?:stamp)?s?|ts|now|deadline)(?:_|$)|^t\d$")

#: Names that are integer-microsecond ticks by convention — the
#: canonical timebase (``time_us``, ``now_us``, ``start_us``,
#: ``*_ticks``). Integer equality is exact, so these are exempt.
_TICK_NAME_RE = re.compile(r"(?:_us|_ticks)$|^ticks?$")


def _terminal_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_timey(expr: ast.expr) -> bool:
    name = _terminal_name(expr)
    if not name:
        return False
    if _TICK_NAME_RE.search(name):
        return False
    return bool(_TIME_NAME_RE.search(name))


def _is_exempt_operand(expr: ast.expr) -> bool:
    """Comparisons against None/strings/containers are not float eq."""
    if isinstance(expr, ast.Constant):
        return expr.value is None or isinstance(expr.value, str)
    return isinstance(expr, (ast.List, ast.Tuple, ast.Dict, ast.Set))


@register
class FloatTimestampEqRule(AstRule):
    """``==``/``!=`` between timestamp-shaped float expressions."""

    rule_id = "float-timestamp-eq"
    description = ("ban ==/!= on float timestamps; compare with a "
                   "tolerance or use integer tick counts "
                   "(`*_us`/`*_ticks` names are exempt: the canonical "
                   "timebase is integer microseconds)")
    severity = Severity.ERROR

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands,
                                       operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_exempt_operand(left) or _is_exempt_operand(right):
                    continue
                if _is_timey(left) or _is_timey(right):
                    yield ctx.finding(
                        self, node,
                        "float timestamp compared with ==/!= — use a "
                        "tolerance (abs(a - b) < eps) or integer ticks")
