"""Deprecation-expiry: shims must name, and honor, a removal release.

Every ``warnings.warn(..., DeprecationWarning)`` site must carry a
``# staticcheck: remove-in=X.Y`` annotation on the call or the line
above it.  The rule then compares each declared removal release
against the project version in ``pyproject.toml``:

* an **unannotated** site has no expiry and would live forever —
  flagged until a removal release is declared;
* an **expired** site (``remove_in`` <= current version) means the
  release that was supposed to delete the shim has shipped with the
  shim still in place — flagged, with the surviving call sites of
  the deprecated API attached as related locations so the cleanup
  is a guided edit, not an archaeology dig.

This is inherently a whole-program judgement: the expiry depends on
``pyproject.toml`` and the call-site inventory spans every module, so
the rule runs model-scoped (uncached) in phase 2.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator

from ...findings import Finding, RelatedLocation, Severity
from ...project import ProjectModel
from ...registry import CrossFileRule, register

_VERSION_RE = re.compile(
    r'^version\s*=\s*"(?P<version>\d+(?:\.\d+)*)"', re.MULTILINE)


def _project_version(start: Path) -> str | None:
    """``version = "X.Y.Z"`` from the nearest pyproject.toml."""
    for directory in (start, *start.parents):
        candidate = directory / "pyproject.toml"
        try:
            text = candidate.read_text(encoding="utf-8")
        except OSError:
            continue
        match = _VERSION_RE.search(text)
        if match:
            return match.group("version")
    return None


def _release_tuple(version: str) -> tuple[int, ...]:
    return tuple(int(part) for part in version.split("."))


@register
class DeprecationExpiryRule(CrossFileRule):
    """Unannotated or past-due DeprecationWarning sites."""

    rule_id = "deprecation-expiry"
    description = ("every DeprecationWarning site must declare "
                   "`# staticcheck: remove-in=X.Y`; sites whose "
                   "release has shipped are flagged with the "
                   "surviving call sites of the deprecated API")
    severity = Severity.ERROR
    version = 1

    def __init__(self, current_version: str | None = None):
        #: None -> read from the nearest pyproject.toml at run time.
        self.current_version = current_version

    def check_model(self, model: ProjectModel) -> Iterator[Finding]:
        current = self.current_version
        if current is None:
            anchor = next(
                (Path(model.summaries[name].path).parent
                 for name in model.modules()), Path.cwd())
            current = _project_version(anchor.resolve()) or "0"
        current_release = _release_tuple(current)
        for name in model.modules():
            summary = model.summaries[name]
            for site in summary.deprecations:
                owner = site.owner
                if site.remove_in is None:
                    yield Finding(
                        path=summary.path, line=site.lineno,
                        col=site.col, rule_id=self.rule_id,
                        message=(f"DeprecationWarning in `{owner}` "
                                 "declares no removal release — "
                                 "annotate the warn() call with "
                                 "`# staticcheck: remove-in=X.Y`"),
                        severity=self.severity)
                    continue
                if _release_tuple(site.remove_in) > current_release:
                    continue
                related = tuple(
                    RelatedLocation(path=path, line=line,
                                    message=f"`{owner}` still "
                                            "called here")
                    for path, line, _col
                    in model.call_sites(owner)
                    if not (path == summary.path
                            and line == site.lineno))
                yield Finding(
                    path=summary.path, line=site.lineno,
                    col=site.col, rule_id=self.rule_id,
                    message=(f"deprecated API `{owner}` was due for "
                             f"removal in {site.remove_in} and the "
                             f"current release is {current} — "
                             "delete the shim and migrate the "
                             "remaining call sites"),
                    severity=self.severity, related=related)
