"""Schema-drift: dataclass fields vs ``to_json`` vs the docs table.

The streaming snapshot schema exists in three places that must agree:

1. the snapshot dataclass field inventories in
   ``repro/stream/snapshots.py``,
2. the key sets their ``to_json()`` methods emit (the wire form
   consumed by ``repro monitor`` and any external scraper), and
3. the schema table in ``docs/streaming.md`` (the marker line
   ``<!-- staticcheck: schema-table -->`` introduces it).

A field added to the dataclass but never serialized, a key emitted
but never documented, or a documented key that no longer exists are
all silent contract breaks for downstream consumers.  This rule
cross-references all three inventories and reports every disagreement
with a related location pointing at the other side of the drift.

Serializer methods the extractor could not fully resolve (return
value not a plain dict literal with constant string keys) are marked
``complete=False`` in the model and skipped — no reasoning from
partial key sets.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator, Mapping

from ...findings import Finding, RelatedLocation, Severity
from ...project import ClassInfo, JsonMethod, ProjectModel
from ...registry import CrossFileRule, register

#: Marker introducing the machine-checked table in the docs.
SCHEMA_TABLE_MARKER = "<!-- staticcheck: schema-table -->"

#: Dataclass name -> docs-table column certifying its keys.
_DEFAULT_COLUMNS: Mapping[str, str] = {
    "LinkSnapshot": "Link",
    "FleetSnapshot": "Fleet",
    "SnapshotEnvelope": "Serve",
    "GroundTruth": "Truth",
    "ProtocolSpec": "Protocol",
}

#: Packages whose snapshot dataclasses the default scope covers: the
#: stream snapshot contract, the served envelope wrapping it, the
#: scenario ground-truth sidecar scored against it, and the protocol
#: spec registry whose metadata rides in all three.
_DEFAULT_PACKAGES = ("repro.stream", "repro.serve",
                     "repro.scenarios", "repro.protocols")

#: Cell values that mean "this key is present in this schema".
_PRESENT_CELLS = frozenset({"✓", "x", "yes", "✔"})

_KEY_CELL_RE = re.compile(r"`(?P<key>[^`]+)`")


def _default_docs_path() -> Path:
    # rules/crossfile/ -> rules -> staticcheck -> devtools -> repro
    # -> src -> repo root.
    return Path(__file__).resolve().parents[6] / "docs" \
        / "streaming.md"


def parse_schema_table(text: str) -> dict[str, dict[str, int]] | None:
    """Column name -> {documented key -> 1-based doc line}.

    Returns ``None`` when the marker or the table is missing.  The
    table starts on the first ``|``-row after the marker; the header
    row names the columns, the first cell of each body row holds the
    backtick-quoted key.
    """
    lines = text.splitlines()
    try:
        start = next(index for index, line in enumerate(lines)
                     if SCHEMA_TABLE_MARKER in line)
    except StopIteration:
        return None
    header: list[str] = []
    table: dict[str, dict[str, int]] = {}
    for index in range(start + 1, len(lines)):
        line = lines[index].strip()
        if not line.startswith("|"):
            if header:
                break  # table ended
            if line:
                return None  # marker not followed by a table
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if not header:
            header = cells
            table = {name: {} for name in header[1:]}
            continue
        if set(line) <= {"|", "-", " ", ":"}:
            continue  # separator row
        match = _KEY_CELL_RE.search(cells[0]) if cells else None
        if match is None:
            continue
        key = match.group("key")
        for column, cell in zip(header[1:], cells[1:]):
            if cell.lower() in _PRESENT_CELLS:
                table[column][key] = index + 1
    return table if header else None


def _complete_json(cls: ClassInfo) -> JsonMethod | None:
    for method in cls.json_keys:
        if method.complete:
            return method
    return None


@register
class SchemaDriftRule(CrossFileRule):
    """Three-way snapshot schema consistency (fields/wire/docs)."""

    rule_id = "schema-drift"
    description = ("snapshot dataclass fields, to_json() keys and "
                   "the docs/streaming.md schema table must agree — "
                   "each drift is a silent contract break for "
                   "monitor consumers")
    severity = Severity.ERROR
    version = 4

    def __init__(self,
                 package: str | tuple[str, ...] = _DEFAULT_PACKAGES,
                 docs_path: Path | None = None,
                 columns: Mapping[str, str] | None = None):
        # ``package`` accepts one package name or a tuple of them —
        # the default scope spans the snapshot contract *and* the
        # serve envelope that wraps it on the wire.
        self.packages = ((package,) if isinstance(package, str)
                         else tuple(package))
        self.docs_path = docs_path or _default_docs_path()
        self.columns = dict(columns if columns is not None
                            else _DEFAULT_COLUMNS)

    def _in_scope(self, name: str) -> bool:
        return any(name == package or name.startswith(package + ".")
                   for package in self.packages)

    def check_model(self, model: ProjectModel) -> Iterator[Finding]:
        in_scope = [
            model.summaries[name] for name in model.modules()
            if self._in_scope(name)]
        tracked: dict[str, tuple[str, ClassInfo]] = {}
        for summary in in_scope:
            for cls in summary.classes:
                yield from self._fields_vs_wire(summary.path, cls)
                if cls.name in self.columns:
                    tracked.setdefault(cls.name, (summary.path, cls))
        if tracked:
            yield from self._wire_vs_docs(tracked)

    def _fields_vs_wire(self, path: str,
                        cls: ClassInfo) -> Iterator[Finding]:
        method = _complete_json(cls)
        if method is None or not cls.is_dataclass:
            return
        emitted = set(method.keys)
        for field_info in cls.fields:
            if field_info.name.startswith("_"):
                continue
            if field_info.name not in emitted:
                yield Finding(
                    path=path, line=field_info.lineno, col=1,
                    rule_id=self.rule_id,
                    message=(f"field `{cls.name}."
                             f"{field_info.name}` is not emitted by "
                             f"{method.method}() — the dataclass "
                             "and its wire form have drifted"),
                    severity=self.severity,
                    related=(RelatedLocation(
                        path=path, line=method.lineno,
                        message=f"{method.method}() defined here"),))

    def _wire_vs_docs(self, tracked: Mapping[str, tuple[str,
                                                        ClassInfo]]
                      ) -> Iterator[Finding]:
        docs = str(self.docs_path)
        try:
            text = self.docs_path.read_text(encoding="utf-8")
        except OSError:
            text = None
        table = parse_schema_table(text) if text is not None else None
        if table is None:
            path, cls = next(iter(tracked.values()))
            yield Finding(
                path=docs, line=1, col=1, rule_id=self.rule_id,
                message=(f"schema table marker "
                         f"`{SCHEMA_TABLE_MARKER}` not found — "
                         f"cannot certify the wire schema of "
                         f"{', '.join(sorted(tracked))}"),
                severity=self.severity,
                related=(RelatedLocation(
                    path=path, line=cls.lineno,
                    message=f"{cls.name} defined here"),))
            return
        for name in sorted(tracked):
            path, cls = tracked[name]
            column = self.columns[name]
            method = _complete_json(cls)
            if method is None:
                continue  # partial serializer: skip, don't guess
            documented = table.get(column, {})
            for key in sorted(set(method.keys) - set(documented)):
                yield Finding(
                    path=path, line=method.lineno, col=1,
                    rule_id=self.rule_id,
                    message=(f"key `{key}` emitted by {name}."
                             f"{method.method}() is missing from "
                             f"the `{column}` column of the schema "
                             "table — document it"),
                    severity=self.severity,
                    related=(RelatedLocation(
                        path=docs, line=1,
                        message="schema table in docs"),))
            for key, line in sorted(documented.items()):
                if key in method.keys:
                    continue
                yield Finding(
                    path=docs, line=line, col=1,
                    rule_id=self.rule_id,
                    message=(f"documented key `{key}` is not "
                             f"emitted by {name}.{method.method}() "
                             "— stale docs or a dropped wire key"),
                    severity=self.severity,
                    related=(RelatedLocation(
                        path=path, line=method.lineno,
                        message=f"{name}.{method.method}() "
                                "defined here"),))
