"""Shard-safety: certify what the multiprocess fleet split needs.

The ROADMAP's next scaling step shards :class:`FleetSupervisor`
across worker processes — N links per worker, snapshots merged in the
parent.  Two properties make that split safe, and both are *global*
properties no per-file rule can see:

* **No shared mutable module state** anywhere `repro.stream`
  transitively imports.  A module-level registry mutated at runtime
  diverges silently between workers: each process mutates its own
  copy and the merged fleet view stops being the sum of its links.
  Import-time population (decorator registries filled as modules
  load) is fine — every worker replays it identically — so only
  *in-function* mutations of module-level containers are flagged.
* **Pickle-safe, immutable snapshots.**  The snapshot dataclasses are
  the wire format between workers and the parent; they must be
  ``@dataclass(frozen=True, slots=True)`` and must not carry fields
  whose annotations name unpicklable machinery (locks, sockets, open
  files, live iterators).
* **Picklable worker factories** (version 2).  The sharded fleet of
  :mod:`repro.stream.shard` ships its pipeline factory into worker
  processes, so a lambda or locally-defined function passed as the
  ``factory`` of a shard entrypoint (``ShardedFleetSupervisor``,
  ``WorkerConfig``, ``run_shard_worker``) can never arrive — pickle
  has no importable name for it.  Those call sites are flagged
  *project-wide*, not just inside the stream closure: the worker
  entrypoints are process roots, and any caller anywhere (the CLI, a
  script, a test) hits the boundary.

A module with no findings under this rule is *shard-safe*: it can be
imported and executed in a worker process without cross-process state
divergence.  See docs/static-analysis.md for the certification
workflow.
"""

from __future__ import annotations

import re
from typing import Iterator

from ...findings import Finding, RelatedLocation, Severity
from ...project import (ClassInfo, FunctionInfo, ModuleSummary,
                        ProjectModel, callable_params)
from ...registry import CrossFileRule, register

#: Entrypoint name -> parameter names that cross a process boundary.
_SHARD_ENTRYPOINTS = {
    "ShardedFleetSupervisor": ("factory",),
    "WorkerConfig": ("factory",),
    "run_shard_worker": ("config",),
}

#: Annotation tokens that name machinery pickle cannot move between
#: processes (or that aliases live state a worker must not share).
_UNPICKLABLE_RE = re.compile(
    r"\b(?:Lock|RLock|Condition|Semaphore|Event|Thread|Timer|"
    r"socket|Socket|TextIO|BinaryIO|IO|Iterator|Generator|"
    r"Coroutine|weakref)\b")

#: Class-name suffixes that mark the inter-process wire format.
_SNAPSHOT_SUFFIXES = ("Snapshot",)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _snapshot_closure(summary: ModuleSummary,
                      suffixes: tuple[str, ...]) -> list[ClassInfo]:
    """Snapshot-suffixed dataclasses plus every dataclass their field
    annotations reference (transitively, within the module)."""
    by_name = {cls.name: cls for cls in summary.classes
               if cls.is_dataclass}
    wanted = [cls for name, cls in by_name.items()
              if name.endswith(suffixes)]
    seen = {cls.name for cls in wanted}
    queue = list(wanted)
    while queue:
        cls = queue.pop()
        for field_info in cls.fields:
            for token in _IDENTIFIER_RE.findall(
                    field_info.annotation):
                member = by_name.get(token)
                if member is not None and member.name not in seen:
                    seen.add(member.name)
                    wanted.append(member)
                    queue.append(member)
    return sorted(wanted, key=lambda cls: cls.lineno)


@register
class ShardSafetyRule(CrossFileRule):
    """Mutable module state and unsafe snapshots in the stream closure."""

    rule_id = "shard-safety"
    description = ("forbid runtime-mutated module-level state and "
                   "non-frozen/non-slots/unpicklable snapshot "
                   "dataclasses in everything repro.stream "
                   "transitively imports — the multiprocess fleet "
                   "contract")
    severity = Severity.ERROR
    version = 2

    def __init__(self, root: str = "repro.stream",
                 suffixes: tuple[str, ...] = _SNAPSHOT_SUFFIXES,
                 shard_module: str | None = None):
        self.root = root
        self.suffixes = suffixes
        #: The module whose entrypoints take worker factories; by
        #: default the shard module inside ``root``'s package.
        self.shard_module = shard_module if shard_module is not None \
            else f"{root}.shard"

    def module_key_extra(self, model: ProjectModel,
                         module: str) -> str:
        # Reachability is a property of the whole import graph, not
        # of the module's own closure — fold it into the cache key so
        # re-wiring imports re-judges the module.
        reachable = module in model.reachable_from(self.root)
        return f"root={self.root};reachable={int(reachable)}"

    def check_module(self, model: ProjectModel,
                     summary: ModuleSummary) -> Iterator[Finding]:
        # Factory picklability is checked project-wide: the shard
        # entrypoints are process roots and any caller hits the
        # boundary, whether or not repro.stream imports it.
        yield from self._check_closure_factories(model, summary)
        if summary.module not in model.reachable_from(self.root):
            return
        yield from self._check_mutable_state(summary)
        yield from self._check_snapshots(summary)

    def _check_closure_factories(self, model: ProjectModel,
                                 summary: ModuleSummary
                                 ) -> Iterator[Finding]:
        for arg in summary.closure_args:
            resolved = _resolve_entrypoint(model, summary.module,
                                           arg.callee,
                                           self.shard_module)
            if resolved is None:
                continue
            entrypoint, info = resolved
            boundary = _SHARD_ENTRYPOINTS[entrypoint]
            param = _landing_param(info, arg.position, arg.keyword)
            if param not in boundary:
                continue
            yield Finding(
                path=summary.path, line=arg.lineno, col=arg.col,
                rule_id=self.rule_id,
                message=(f"`{entrypoint}` ships `{param}` into a "
                         f"worker process, but this call passes "
                         f"{arg.kind} — pickle has no importable "
                         "name for it, so it cannot cross the "
                         "process boundary; use a module-level "
                         "callable or a frozen dataclass factory "
                         "(e.g. MonitorPipelineFactory)"),
                severity=self.severity)

    def _check_mutable_state(self, summary: ModuleSummary
                             ) -> Iterator[Finding]:
        for state in summary.mutable_globals:
            if not state.mutations:
                continue  # import-time constant: replayed per worker
            related = tuple(
                RelatedLocation(path=summary.path,
                                line=site.lineno,
                                message=site.how)
                for site in state.mutations[:3])
            first = state.mutations[0]
            yield Finding(
                path=summary.path, line=state.lineno, col=state.col,
                rule_id=self.rule_id,
                message=(f"module-level {state.kind} `{state.name}` "
                         f"is mutated at runtime ({first.how}, "
                         f"line {first.lineno}) — shared mutable "
                         "module state diverges across fleet shard "
                         "workers; hold it on an instance or pass "
                         "it explicitly"),
                severity=self.severity, related=related)

    def _check_snapshots(self, summary: ModuleSummary
                         ) -> Iterator[Finding]:
        for cls in _snapshot_closure(summary, self.suffixes):
            missing = [flag for flag, present in
                       (("frozen=True", cls.frozen),
                        ("slots=True", cls.slots)) if not present]
            if missing:
                yield Finding(
                    path=summary.path, line=cls.lineno, col=1,
                    rule_id=self.rule_id,
                    message=(f"snapshot dataclass `{cls.name}` must "
                             "be declared @dataclass("
                             "frozen=True, slots=True) — it is the "
                             "worker-to-parent wire format (missing: "
                             f"{', '.join(missing)})"),
                    severity=self.severity)
            for field_info in cls.fields:
                match = _UNPICKLABLE_RE.search(field_info.annotation)
                if match:
                    yield Finding(
                        path=summary.path, line=field_info.lineno,
                        col=1, rule_id=self.rule_id,
                        message=(f"snapshot field `{cls.name}."
                                 f"{field_info.name}` is annotated "
                                 f"`{field_info.annotation}` — "
                                 f"`{match.group(0)}` cannot cross "
                                 "a process boundary; snapshots "
                                 "must be pickle-safe"),
                        severity=self.severity)


def _resolve_entrypoint(model: ProjectModel, module: str,
                        callee: str, shard_module: str) -> \
        tuple[str, FunctionInfo | ClassInfo] | None:
    """Resolve ``callee`` onto a shard entrypoint, or ``None``.

    Goes through :meth:`ProjectModel.resolve_callable` (functions and
    dataclass constructors), with a fallback for plain classes whose
    parameter list lives on ``__init__`` — ``ShardedFleetSupervisor``
    is one of those.  Returns ``(entrypoint_name, info)``.
    """
    resolved = model.resolve_callable(module, callee)
    if resolved is None:
        resolved = _resolve_plain_constructor(model, module, callee)
    if resolved is None:
        return None
    defining_module, info = resolved
    if defining_module != shard_module:
        return None
    if isinstance(info, FunctionInfo):
        name = info.qualname.partition(".")[0]
    else:
        name = info.name
    if name not in _SHARD_ENTRYPOINTS:
        return None
    return name, info


def _resolve_plain_constructor(model: ProjectModel, module: str,
                               callee: str) -> \
        tuple[str, FunctionInfo] | None:
    """Resolve ``Class(...)`` where ``Class`` is not a dataclass:
    the constructor signature is the class's ``__init__`` method."""
    summary = model.summaries.get(module)
    if summary is None:
        return None
    bindings = summary.binding_map()
    head, _, rest = callee.partition(".")
    target_module: str | None = None
    symbol: str | None = None
    if head in bindings:
        bound_module, bound_symbol = bindings[head]
        if bound_symbol is not None and not rest:
            target_module, symbol = bound_module, bound_symbol
        elif bound_symbol is None and rest and "." not in rest:
            target_module, symbol = bound_module, rest
    elif not rest:
        target_module, symbol = module, head
    if target_module is None or symbol is None:
        return None
    target = model.summaries.get(target_module)
    if target is None:
        return None
    if target.class_named(symbol) is None:
        return None
    init = target.function(f"{symbol}.__init__")
    if init is None:
        return None
    return target_module, init


def _landing_param(info: FunctionInfo | ClassInfo,
                   position: int | None,
                   keyword: str | None) -> str | None:
    """The parameter name a call argument lands in."""
    if keyword is not None:
        return keyword
    positional, _kwonly = callable_params(info)
    if position is not None and position < len(positional):
        return positional[position]
    return None
