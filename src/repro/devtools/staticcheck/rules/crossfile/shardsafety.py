"""Shard-safety: certify what the multiprocess fleet split needs.

The ROADMAP's next scaling step shards :class:`FleetSupervisor`
across worker processes — N links per worker, snapshots merged in the
parent.  Two properties make that split safe, and both are *global*
properties no per-file rule can see:

* **No shared mutable module state** anywhere `repro.stream`
  transitively imports.  A module-level registry mutated at runtime
  diverges silently between workers: each process mutates its own
  copy and the merged fleet view stops being the sum of its links.
  Import-time population (decorator registries filled as modules
  load) is fine — every worker replays it identically — so only
  *in-function* mutations of module-level containers are flagged.
* **Pickle-safe, immutable snapshots.**  The snapshot dataclasses are
  the wire format between workers and the parent; they must be
  ``@dataclass(frozen=True, slots=True)`` and must not carry fields
  whose annotations name unpicklable machinery (locks, sockets, open
  files, live iterators).

A module with no findings under this rule is *shard-safe*: it can be
imported and executed in a worker process without cross-process state
divergence.  See docs/static-analysis.md for the certification
workflow.
"""

from __future__ import annotations

import re
from typing import Iterator

from ...findings import Finding, RelatedLocation, Severity
from ...project import ClassInfo, ModuleSummary, ProjectModel
from ...registry import CrossFileRule, register

#: Annotation tokens that name machinery pickle cannot move between
#: processes (or that aliases live state a worker must not share).
_UNPICKLABLE_RE = re.compile(
    r"\b(?:Lock|RLock|Condition|Semaphore|Event|Thread|Timer|"
    r"socket|Socket|TextIO|BinaryIO|IO|Iterator|Generator|"
    r"Coroutine|weakref)\b")

#: Class-name suffixes that mark the inter-process wire format.
_SNAPSHOT_SUFFIXES = ("Snapshot",)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _snapshot_closure(summary: ModuleSummary,
                      suffixes: tuple[str, ...]) -> list[ClassInfo]:
    """Snapshot-suffixed dataclasses plus every dataclass their field
    annotations reference (transitively, within the module)."""
    by_name = {cls.name: cls for cls in summary.classes
               if cls.is_dataclass}
    wanted = [cls for name, cls in by_name.items()
              if name.endswith(suffixes)]
    seen = {cls.name for cls in wanted}
    queue = list(wanted)
    while queue:
        cls = queue.pop()
        for field_info in cls.fields:
            for token in _IDENTIFIER_RE.findall(
                    field_info.annotation):
                member = by_name.get(token)
                if member is not None and member.name not in seen:
                    seen.add(member.name)
                    wanted.append(member)
                    queue.append(member)
    return sorted(wanted, key=lambda cls: cls.lineno)


@register
class ShardSafetyRule(CrossFileRule):
    """Mutable module state and unsafe snapshots in the stream closure."""

    rule_id = "shard-safety"
    description = ("forbid runtime-mutated module-level state and "
                   "non-frozen/non-slots/unpicklable snapshot "
                   "dataclasses in everything repro.stream "
                   "transitively imports — the multiprocess fleet "
                   "contract")
    severity = Severity.ERROR
    version = 1

    def __init__(self, root: str = "repro.stream",
                 suffixes: tuple[str, ...] = _SNAPSHOT_SUFFIXES):
        self.root = root
        self.suffixes = suffixes

    def module_key_extra(self, model: ProjectModel,
                         module: str) -> str:
        # Reachability is a property of the whole import graph, not
        # of the module's own closure — fold it into the cache key so
        # re-wiring imports re-judges the module.
        reachable = module in model.reachable_from(self.root)
        return f"root={self.root};reachable={int(reachable)}"

    def check_module(self, model: ProjectModel,
                     summary: ModuleSummary) -> Iterator[Finding]:
        if summary.module not in model.reachable_from(self.root):
            return
        yield from self._check_mutable_state(summary)
        yield from self._check_snapshots(summary)

    def _check_mutable_state(self, summary: ModuleSummary
                             ) -> Iterator[Finding]:
        for state in summary.mutable_globals:
            if not state.mutations:
                continue  # import-time constant: replayed per worker
            related = tuple(
                RelatedLocation(path=summary.path,
                                line=site.lineno,
                                message=site.how)
                for site in state.mutations[:3])
            first = state.mutations[0]
            yield Finding(
                path=summary.path, line=state.lineno, col=state.col,
                rule_id=self.rule_id,
                message=(f"module-level {state.kind} `{state.name}` "
                         f"is mutated at runtime ({first.how}, "
                         f"line {first.lineno}) — shared mutable "
                         "module state diverges across fleet shard "
                         "workers; hold it on an instance or pass "
                         "it explicitly"),
                severity=self.severity, related=related)

    def _check_snapshots(self, summary: ModuleSummary
                         ) -> Iterator[Finding]:
        for cls in _snapshot_closure(summary, self.suffixes):
            missing = [flag for flag, present in
                       (("frozen=True", cls.frozen),
                        ("slots=True", cls.slots)) if not present]
            if missing:
                yield Finding(
                    path=summary.path, line=cls.lineno, col=1,
                    rule_id=self.rule_id,
                    message=(f"snapshot dataclass `{cls.name}` must "
                             "be declared @dataclass("
                             "frozen=True, slots=True) — it is the "
                             "worker-to-parent wire format (missing: "
                             f"{', '.join(missing)})"),
                    severity=self.severity)
            for field_info in cls.fields:
                match = _UNPICKLABLE_RE.search(field_info.annotation)
                if match:
                    yield Finding(
                        path=summary.path, line=field_info.lineno,
                        col=1, rule_id=self.rule_id,
                        message=(f"snapshot field `{cls.name}."
                                 f"{field_info.name}` is annotated "
                                 f"`{field_info.annotation}` — "
                                 f"`{match.group(0)}` cannot cross "
                                 "a process boundary; snapshots "
                                 "must be pickle-safe"),
                        severity=self.severity)
